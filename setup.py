"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package for PEP-517 editable
installs; on offline machines without it, ``python setup.py develop``
provides the same editable install through setuptools alone.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
