"""Exec scaling: wall-clock of the multicore engine vs the serial path.

Two measurements, one payload:

* **sweep scaling** — the headline: a ≥8-config CNN sweep (the Fig. 10
  scheme families x 2 seeds) run serially and through
  :class:`~repro.exec.ParallelSweeper` on the ``process`` backend at
  ``jobs`` in {2, 4}.  Whole independent runs parallelise embarrassingly,
  so on a ≥4-core host ``jobs=4`` must clear ``EXEC_MIN_SWEEP_SPEEDUP``
  (default 1.5x; the CI ``exec-smoke`` job gates on it via
  ``check_exec_regression.py``).
* **trainer scaling** — steps/sec of one ``W=8`` CNN trainer with the
  per-worker forward/backward fanned across the pool, reported for the
  record (per-step IPC makes this the harder win; the sweep ratio is
  the gate).

Parity is asserted unconditionally on every host: the parallel sweep's
summaries must equal the serial loop's bit for bit — a broken pool can
never hide behind a fast one.  The speedup assert arms only where the
hardware can physically deliver it (``cpu_count() >= 4``); single-core
hosts record the ratio and skip, keeping the committed baseline honest
about the machine it was measured on.

Emits ``results/BENCH_exec_scaling_run.json``; the *committed* baseline
lives at ``results/BENCH_exec_scaling.json`` and is never written by a
bench run (updating it is a deliberate ``cp`` after a representative
run).
"""

import os
import time

import pytest

from repro.api.config import RunConfig
from repro.api.facade import run
from repro.api.registry import build_cluster, build_scheme, build_workload
from repro.exec.backend import ProcessBackend, cpu_count
from repro.exec.sweeper import ParallelSweeper
from repro.perf.hotpath import measure_steps_per_sec, worker_batches
from repro.train.trainer import DistributedTrainer
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table

#: Pool widths measured against the serial loop.
JOBS = (2, 4)
#: Fig. 10 scheme families x 2 seeds -> the >= 8-config sweep.
SWEEP_SCHEMES = ("dense", "topk", "gtopk", "mstopk")
SWEEP_SEEDS = (0, 1)
WORLD = 8
TRAINER_STEPS = 8


def _sweep_configs() -> list[RunConfig]:
    return [
        RunConfig.from_dict(
            {
                "name": f"scale-{scheme}-{seed}",
                "seed": seed,
                "cluster": {"instance": "tencent", "num_nodes": WORLD // 2,
                            "gpus_per_node": 2},
                "comm": {"scheme": scheme, "density": 0.05},
                "train": {"model": "cnn", "epochs": 4, "num_samples": 1024,
                          "local_batch": 8},
            }
        )
        for scheme in SWEEP_SCHEMES
        for seed in SWEEP_SEEDS
    ]


def _measure_sweep() -> dict:
    configs = _sweep_configs()
    start = time.perf_counter()
    serial_reports = [run(config) for config in configs]
    serial_seconds = time.perf_counter() - start

    result = {
        "configs": len(configs),
        "serial_seconds": serial_seconds,
        "parallel_seconds": {},
        "speedups": {},
        "parity_ok": True,
    }
    serial_payloads = [report.bench_payload() for report in serial_reports]
    for jobs in JOBS:
        sweeper = ParallelSweeper("process", jobs=jobs)
        start = time.perf_counter()
        reports = sweeper.run_configs(configs)
        seconds = time.perf_counter() - start
        result["parallel_seconds"][jobs] = seconds
        result["speedups"][jobs] = serial_seconds / seconds if seconds else 0.0
        if [r.bench_payload() for r in reports] != serial_payloads:
            result["parity_ok"] = False
    return result


def _measure_trainer() -> dict:
    workload = build_workload("cnn", num_samples=1024, rng=new_rng(7))
    network = build_cluster("tencent", WORLD // 2, gpus_per_node=2)
    batches = worker_batches(workload.x, workload.y, WORLD, 16)

    def steps_per_sec(exec_backend, label):
        trainer = DistributedTrainer(
            workload.model,
            build_scheme("mstopk", network, density=0.05),
            seed=7,
            exec_backend=exec_backend,
        )
        try:
            return measure_steps_per_sec(
                trainer, batches, steps=TRAINER_STEPS, warmup=2, label=label
            ).steps_per_sec
        finally:
            trainer.close()

    result = {"serial": steps_per_sec(None, "serial"), "process": {}}
    for jobs in JOBS:
        with ProcessBackend(jobs=jobs) as pool:
            result["process"][jobs] = steps_per_sec(pool, f"process-{jobs}")
    return result


@pytest.fixture(scope="module")
def scaling(save_result):
    sweep = _measure_sweep()
    trainer = _measure_trainer()
    cores = cpu_count()

    columns = ["mode", "jobs", "sweep s", "sweep speedup", "trainer steps/s"]
    rows = [
        [
            "serial",
            1,
            round(sweep["serial_seconds"], 3),
            1.0,
            round(trainer["serial"], 2),
        ]
    ]
    for jobs in JOBS:
        rows.append(
            [
                "process",
                jobs,
                round(sweep["parallel_seconds"][jobs], 3),
                round(sweep["speedups"][jobs], 3),
                round(trainer["process"][jobs], 2),
            ]
        )
    text = format_table(
        columns,
        rows,
        title=(
            f"Exec scaling: {sweep['configs']}-config CNN sweep + W={WORLD} "
            f"trainer, {cores} usable core(s)"
        ),
    )
    save_result(
        "exec_scaling_run",
        text,
        columns=columns,
        rows=rows,
        meta={
            "cpu_count": cores,
            "sweep_configs": sweep["configs"],
            "serial_sweep_seconds": round(sweep["serial_seconds"], 3),
            "parity_ok": sweep["parity_ok"],
            # Headline ratios the CI exec gate tracks across commits.
            **{
                f"sweep_speedup_jobs{jobs}": round(sweep["speedups"][jobs], 3)
                for jobs in JOBS
            },
            **{
                f"trainer_steps_per_sec_jobs{jobs}": round(
                    trainer["process"][jobs], 2
                )
                for jobs in JOBS
            },
            "trainer_steps_per_sec_serial": round(trainer["serial"], 2),
        },
    )
    return {"sweep": sweep, "trainer": trainer, "cores": cores}


#: Acceptance floor for the jobs=4 sweep ratio on >= 4-core hosts.  CI
#: runners deliver this comfortably (whole runs parallelise without
#: synchronisation); contended hosts can lower it via the env knob.
MIN_SWEEP_SPEEDUP = float(os.environ.get("EXEC_MIN_SWEEP_SPEEDUP", "1.5"))
#: Cores needed before the speedup assert arms.
GATE_CORES = 4


def test_bench_sweep_parity(benchmark, scaling):
    """Pool width never changes results — asserted on every host."""

    def check():
        assert scaling["sweep"]["parity_ok"], "parallel sweep diverged from serial"
        return True

    assert benchmark(check)


def test_bench_sweep_speedup(benchmark, scaling):
    """jobs=4 clears the wall-clock floor wherever 4 cores exist."""

    def check():
        speedup = scaling["sweep"]["speedups"][4]
        if scaling["cores"] < GATE_CORES:
            print(
                f"note: {scaling['cores']} usable core(s) < {GATE_CORES}; "
                f"recording jobs=4 sweep speedup {speedup:.2f}x without asserting"
            )
            return True
        assert speedup >= MIN_SWEEP_SPEEDUP, (
            f"jobs=4 sweep speedup {speedup:.2f}x < {MIN_SWEEP_SPEEDUP}x "
            f"on a {scaling['cores']}-core host"
        )
        return True

    assert benchmark(check)


def test_bench_trainer_backend_runs(benchmark, scaling):
    """The per-step engine produces sane throughput at every width."""

    def check():
        assert scaling["trainer"]["serial"] > 0
        for jobs in JOBS:
            assert scaling["trainer"]["process"][jobs] > 0
        return True

    assert benchmark(check)
