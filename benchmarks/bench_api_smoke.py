"""API facade smoke: config file → run() → schema-valid payload.

Loads the shipped ``examples/configs/smoke.json`` (the same file the CI
CLI smoke step executes), runs it through the facade, and checks that
the resulting :meth:`RunReport.bench_payload` passes the repo's
``BENCH_*.json`` schema gate and that the run is deterministic in its
seed.
"""

import importlib.util
import pathlib

from repro.api import RunConfig, apply_overrides, run

REPO = pathlib.Path(__file__).resolve().parent.parent
SMOKE_CONFIG = REPO / "examples" / "configs" / "smoke.json"


def _load_validator():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", pathlib.Path(__file__).resolve().parent / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.validate_bench_payload


def test_bench_api_smoke_payload(benchmark, save_result):
    config = RunConfig.from_file(SMOKE_CONFIG)
    report = benchmark(lambda: run(config))

    payload = report.bench_payload("api_smoke")
    validate = _load_validator()
    validate(payload)  # raises on schema violations

    save_result(
        "api_smoke",
        payload["text"],
        columns=payload["columns"],
        rows=payload["rows"],
        meta=payload["meta"],
    )
    assert report.mode == "train"
    assert report.summary["iterations"] > 0


def test_bench_api_smoke_deterministic(benchmark):
    config = RunConfig.from_file(SMOKE_CONFIG)

    def twice():
        a = run(config)
        b = run(config)
        return a, b

    a, b = benchmark.pedantic(twice, rounds=1, iterations=1)
    assert a.summary == b.summary


def test_bench_api_smoke_override(benchmark):
    """--set equivalent: density override changes the run, same schema."""
    config = apply_overrides(
        RunConfig.from_file(SMOKE_CONFIG), ["comm.density=0.5", "name=smoke-dense"]
    )
    report = benchmark.pedantic(lambda: run(config), rounds=1, iterations=1)
    assert report.name == "smoke-dense"
    _load_validator()(report.bench_payload())
