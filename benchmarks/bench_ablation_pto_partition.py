"""Ablation: PTO layer-assignment strategy (contiguous vs size-balanced).

The paper splits layers contiguously ("the first GPU calculates 1 to 2
layers' learning rates, ..."); a size-balanced split reduces the slowest
worker's byte load when layer sizes are skewed (ResNet-50's fc layer is
2M parameters vs 128-parameter batch-norm tensors).
"""

import numpy as np

from repro.cluster.cloud_presets import make_cluster
from repro.models.profiles import resnet50_profile
from repro.pto.lars_pto import lars_learning_rates_pto
from repro.utils.partition import partition_layers, partition_layers_balanced
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table


def worst_load(assignment, sizes):
    return max(sum(sizes[i] for i in worker) for worker in assignment if worker)


def test_bench_ablation_pto_partition(benchmark, save_result):
    profile = resnet50_profile()
    sizes = list(profile.layer_sizes)

    def compare():
        rows = []
        for p in (8, 32, 128):
            contiguous = worst_load(partition_layers(sizes, p), sizes)
            balanced = worst_load(partition_layers_balanced(sizes, p), sizes)
            rows.append((p, contiguous, balanced, contiguous / balanced))
        return rows

    rows = benchmark(compare)
    save_result(
        "ablation_pto_partition",
        format_table(
            ["Workers", "contiguous worst (params)", "balanced worst", "imbalance"],
            [[p, c, b, round(r, 2)] for p, c, b, r in rows],
            title="Ablation: PTO layer assignment, ResNet-50 (161 tensors)",
        ),
    )
    # Balanced is never worse; at 128 workers the fc layer dominates both.
    for _, contiguous, balanced, _ in rows:
        assert balanced <= contiguous


def test_bench_ablation_pto_functional_equivalence(benchmark):
    """Both assignments produce identical LARS rates."""
    rng = new_rng(0)
    net = make_cluster(2, "tencent", gpus_per_node=4)
    weights = [rng.normal(size=s) for s in (64, 2048, 16, 512, 8, 1024)]
    grads = [rng.normal(size=w.size) for w in weights]

    def both():
        a = lars_learning_rates_pto(net, weights, grads, eta=0.1).result
        b = lars_learning_rates_pto(net, weights, grads, eta=0.1, balanced=True).result
        return a, b

    a, b = benchmark(both)
    np.testing.assert_allclose(a, b)
