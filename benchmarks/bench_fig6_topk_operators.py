"""Fig. 6: top-k operator comparison — real wall-clock benchmarks.

These are the only benches measuring *actual* kernel time (the
operators are real NumPy code); the saved artefact adds the V100
projections used for the paper-shape comparison.
"""

import numpy as np
import pytest

from repro.compression.dgc import DGCTopK
from repro.compression.exact_topk import naive_topk_sort, topk_argpartition
from repro.compression.mstopk import mstopk_select
from repro.experiments import fig6_topk_ops
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table

D = 2_000_000
K = 2_000  # k = 0.001 d, the paper's ratio


@pytest.fixture(scope="module")
def vector():
    return new_rng(0).normal(size=D)


def test_bench_fig6_nn_topk_sort(benchmark, vector):
    """The naive full-sort selection (the 'nn.topk' analogue)."""
    sv = benchmark(naive_topk_sort, vector, K)
    assert sv.nnz == K


def test_bench_fig6_dgc_double_sampling(benchmark, vector):
    """DGC double-sampling selection."""
    dgc = DGCTopK(sample_fraction=0.01)
    rng = new_rng(1)
    sv = benchmark(lambda: dgc.select(vector, K, rng=rng))
    assert sv.nnz == K


def test_bench_fig6_mstopk(benchmark, vector):
    """MSTopK (Algorithm 1), 30 samplings."""
    rng = new_rng(2)
    sv = benchmark(lambda: mstopk_select(vector, K, n_samplings=30, rng=rng))
    assert sv.nnz == K


def test_bench_fig6_argpartition_reference(benchmark, vector):
    """Efficient exact CPU selection, for context."""
    sv = benchmark(topk_argpartition, vector, K)
    assert sv.nnz == K


def test_bench_fig6_harness_table(benchmark, save_result):
    """Full sweep (measured CPU + projected V100) saved to results/."""
    rows = benchmark.pedantic(
        fig6_topk_ops.run,
        kwargs={"sizes": (256_000, 1_000_000, 4_000_000), "repeats": 2, "warmup": 1},
        rounds=1,
        iterations=1,
    )
    table = [
        [
            r.operator,
            f"{r.d / 1e6:g}M",
            "-" if r.cpu_seconds is None else round(r.cpu_seconds, 4),
            round(r.gpu_projected, 5),
        ]
        for r in rows
    ]
    save_result(
        "fig6_topk_operators",
        format_table(
            ["Operator", "Elements", "CPU measured (s)", "V100 projected (s)"],
            table,
            title="Fig. 6: top-k operator time, k = 0.001 d, 30 samplings",
        ),
    )
