"""Multi-tenant scheduler: contention, preemption, and policy comparison.

Runs the canonical mixed queue (comm-light MSTopK ResNet, comm-heavy
dense VGG, late-arriving high-priority Transformer, single-node top-k
sweep) under every built-in placement policy on one shared 4x8 virtual
cluster.  The assertions pin the tentpole behaviours: co-located jobs
run slower than solo (NIC splitting through the iteration model),
spreading relieves the comm-heavy tenant, and the high-priority arrival
preempts via elastic membership scale events.
"""

from repro.experiments.multi_tenant import DEFAULT_POLICIES, run
from repro.sched.scheduler import PAYLOAD_COLUMNS, payload_for_reports


def sweep():
    return run(policies=DEFAULT_POLICIES)


def test_bench_sched(benchmark, save_result):
    reports = benchmark(sweep)

    payload = payload_for_reports(list(reports.values()), bench="sched_multi_tenant")
    save_result(
        "sched_multi_tenant",
        payload["text"],
        columns=PAYLOAD_COLUMNS,
        rows=payload["rows"],
        meta=payload["meta"],
    )

    by_job = {
        policy: {o.job: o for o in report.jobs} for policy, report in reports.items()
    }
    # Everything completes under every policy.
    for policy, jobs in by_job.items():
        for outcome in jobs.values():
            assert outcome.status == "done", (policy, outcome.job)
            assert outcome.cost_usd > 0

    # Contention: bin-packing co-locates the dense VGG with a neighbour,
    # so it runs measurably slower than solo; spreading relieves it.
    vgg_packed = by_job["bin-pack"]["vgg-batch"]
    vgg_spread = by_job["spread"]["vgg-batch"]
    assert vgg_packed.contention_slowdown > 1.02
    assert vgg_spread.contention_slowdown < vgg_packed.contention_slowdown

    # Placement alone moves the cluster: spreading this queue beats
    # packing on makespan and total dollars.
    assert reports["spread"].makespan_s < reports["bin-pack"].makespan_s
    assert reports["spread"].total_cost_usd <= reports["bin-pack"].total_cost_usd

    # Priority preemption: the late on-demand Transformer (priority 2)
    # shrinks a lower-priority tenant through its membership view, and
    # still makes its deadline.
    for policy, report in reports.items():
        xfmr = by_job[policy]["xfmr-deadline"]
        assert xfmr.deadline_met is True, policy
        shrunk = [o for o in report.jobs if o.shrinks > 0]
        assert shrunk, f"{policy}: nobody was preempted for the transformer"
        for outcome in shrunk:
            assert outcome.priority < xfmr.priority
            assert outcome.membership_epochs >= outcome.shrinks
