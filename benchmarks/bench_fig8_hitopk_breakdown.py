"""Fig. 8: HiTopKComm per-step breakdown vs density."""

from repro.experiments import fig8_hitopk_breakdown
from repro.utils.tables import format_table


def test_bench_fig8_breakdown(benchmark, save_result):
    points = benchmark(fig8_hitopk_breakdown.run)
    assert len(points) == 8  # 2 models x 4 densities

    sections = []
    for model_name, d in fig8_hitopk_breakdown.MODELS:
        rows = [
            [p.density]
            + [round(p.breakdown.get(s) * 1000, 3) for s in fig8_hitopk_breakdown.STEPS]
            + [round(p.breakdown.total * 1000, 3)]
            for p in points
            if p.model == model_name
        ]
        sections.append(
            format_table(
                ["Density", "ReduceScatter", "MSTopK", "Inter-AG", "Intra-AG", "Total"],
                rows,
                title=f"Fig. 8 ({model_name}, {d / 1e6:g}M params, times in ms)",
            )
        )
    save_result("fig8_hitopk_breakdown", "\n\n".join(sections))

    # Inter-node All-Gather dominates at training densities.
    for p in points:
        if p.density >= 0.01:
            assert p.breakdown.get("inter_allgather") == max(
                p.breakdown.steps.values()
            )


def test_bench_fig8_single_time_model(benchmark, testbed_model=None):
    from repro.cluster.cloud_presets import paper_testbed
    from repro.comm.hitopkcomm import HiTopKComm

    scheme = HiTopKComm(paper_testbed(), density=0.01)
    breakdown = benchmark(scheme.time_model, 25_000_000)
    assert breakdown.total > 0
