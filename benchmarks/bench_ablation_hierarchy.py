"""Ablation: hierarchy vs operator — which of the paper's two ideas pays?

Separates HiTopKComm's two ingredients on the cost model:

* flat All-Gather + MSTopK operator (operator only);
* hierarchical aggregation + exact top-k selection cost (hierarchy only);
* both (the paper's scheme).

The hierarchy is the larger win at cluster scale; the operator removes
the selection bottleneck that would otherwise dominate TopK-SGD (Fig. 1).
"""

from repro.cluster.cloud_presets import paper_testbed
from repro.cluster.gpu import exact_topk_gpu_time, mstopk_gpu_time
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.utils.tables import format_table

D = 25_000_000
RHO = 0.001


def sweep():
    net = paper_testbed()
    flat = NaiveAllGather(net, density=RHO).time_model(D).total
    hier = HiTopKComm(net, density=RHO).time_model(D)
    hier_comm = hier.total - hier.get("mstopk")

    exact_sel = exact_topk_gpu_time(D)
    ms_sel = mstopk_gpu_time(int(D / net.gpus_per_node))

    return [
        ("flat AG + exact top-k (TopK-SGD)", flat + exact_sel),
        ("flat AG + MSTopK (operator only)", flat + mstopk_gpu_time(D)),
        ("hierarchy + exact top-k (hierarchy only)",
         hier_comm + exact_topk_gpu_time(int(D / net.gpus_per_node))),
        ("hierarchy + MSTopK (paper)", hier_comm + ms_sel),
    ]


def test_bench_ablation_hierarchy(benchmark, save_result):
    rows = benchmark(sweep)
    save_result(
        "ablation_hierarchy_vs_operator",
        format_table(
            ["Configuration", "time (s)"],
            [[name, round(t, 5)] for name, t in rows],
            title=f"Ablation: hierarchy vs operator, d = {D / 1e6:g}M, rho = {RHO}",
        ),
    )
    by = dict(rows)
    paper = by["hierarchy + MSTopK (paper)"]
    # Both ingredients individually improve on the TopK-SGD baseline,
    # and the combination beats either alone.
    assert paper < by["flat AG + MSTopK (operator only)"]
    assert paper < by["hierarchy + exact top-k (hierarchy only)"]
    assert paper < by["flat AG + exact top-k (TopK-SGD)"] / 3
