"""CI gate on trace-replay determinism and throughput.

Compares a freshly produced ``BENCH_trace_replay_run.json`` against the
committed ``results/BENCH_trace_replay.json`` baseline and enforces the
trace-scale acceptance bar:

* **determinism** (hard, every host) — ``meta.determinism_ok`` must be
  true: replaying the same seeded trace twice produced bit-identical
  distribution rows.  The fast path is pure simulation, so this never
  depends on the machine;
* **wall-clock ceiling** (hard, every host) — the 10k-job day must
  finish within ``--max-seconds`` (default 60 s, the repo's "replay a
  day on a laptop" bar; a dev container clears it with ~3x headroom);
* **throughput floor** (hard, every host) — the 10k-job replay must
  sustain ``--min-jobs-per-sec`` (default 100).  The floor is set well
  below any real host so it gates algorithmic bit-rot (an accidental
  O(queue) scan resurfacing), not runner speed;
* **baseline drift** (advisory) — jobs/sec is an absolute number, so a
  drop against the committed baseline only prints a note; host speed
  differences would otherwise flake the gate.

Usage (as the CI ``trace-smoke`` job does)::

    python -m pytest benchmarks/bench_trace_replay.py -q --benchmark-disable
    python benchmarks/check_trace_regression.py \
        --baseline results/BENCH_trace_replay.json \
        --current results/BENCH_trace_replay_run.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

THROUGHPUT_KEY = "jobs_per_sec_10k"
SECONDS_KEY = "seconds_10k"


def load_meta(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    meta = payload.get("meta", {})
    for key in ("cpu_count", "determinism_ok", THROUGHPUT_KEY, SECONDS_KEY):
        if key not in meta:
            raise SystemExit(f"{path}: bench payload meta lacks {key!r}")
    return meta


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_trace_replay.json")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly measured BENCH_trace_replay_run.json")
    parser.add_argument("--max-seconds", type=float, default=60.0,
                        help="wall-clock ceiling for the 10k-job replay")
    parser.add_argument("--min-jobs-per-sec", type=float, default=100.0,
                        help="absolute 10k-scale throughput floor")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="fractional jobs/sec drop vs baseline that "
                             "triggers the advisory note")
    args = parser.parse_args(argv)

    base = load_meta(args.baseline)
    cur = load_meta(args.current)
    seconds = float(cur[SECONDS_KEY])
    rate = float(cur[THROUGHPUT_KEY])
    failures = []

    if not cur["determinism_ok"]:
        failures.append("determinism_ok is false: repeat replay diverged")
    else:
        print("ok: repeat replay bit-identical")

    status = "ok" if seconds <= args.max_seconds else "FAIL"
    print(
        f"{status}: 10k-job day replayed in {seconds:.1f}s "
        f"(ceiling {args.max_seconds:.0f}s, {cur['cpu_count']} cores)"
    )
    if status == "FAIL":
        failures.append(SECONDS_KEY)

    status = "ok" if rate >= args.min_jobs_per_sec else "FAIL"
    print(
        f"{status}: {rate:.0f} jobs/s at 10k scale "
        f"(floor {args.min_jobs_per_sec:.0f})"
    )
    if status == "FAIL":
        failures.append(THROUGHPUT_KEY)

    base_rate = float(base[THROUGHPUT_KEY])
    floor = base_rate * (1.0 - args.threshold)
    if rate < floor:
        print(
            f"note: jobs/s fell to {rate:.0f} from baseline {base_rate:.0f} "
            f"(measured on {base['cpu_count']} cores) — advisory only, "
            f"absolute throughput does not transfer between hosts"
        )
    else:
        print(f"ok: within {args.threshold:.0%} of baseline {base_rate:.0f} jobs/s")

    if failures:
        print(f"FAIL: trace replay gate: {failures}")
        return 1
    print("ok: trace replay within the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
