"""Benchmark-suite fixtures.

Every bench regenerates one paper table/figure: it saves the rendered
table under ``results/`` (so the artefacts survive the run) and times a
representative kernel with pytest-benchmark.

Machine-readable results: every ``save_result`` call also emits a
schema-checked ``results/BENCH_<name>.json`` so benchmark outputs can be
tracked as trajectories across commits.  Benches that pass structured
``columns``/``rows`` get first-class tabular JSON; the rest get the text
artefact wrapped in the same envelope.  :func:`validate_bench_payload`
is the single source of truth for the schema.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.utils.seeding import new_rng

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Bump when the BENCH_*.json envelope changes shape.
BENCH_SCHEMA_VERSION = 1

#: Keys every BENCH_*.json must carry.
REQUIRED_KEYS = ("bench", "schema_version", "structured")


def validate_bench_payload(payload: dict) -> dict:
    """Check a BENCH_*.json payload against the output schema.

    Schema (version 1):

    * ``bench`` — artefact name (non-empty string);
    * ``schema_version`` — :data:`BENCH_SCHEMA_VERSION`;
    * ``structured`` — bool; when true, ``columns`` (list of str) and
      ``rows`` (list of rows, each matching ``columns`` in length and
      containing only JSON scalars) are required;
    * ``text`` — the rendered text artefact (always present);
    * ``meta`` — optional dict of free-form scalars.

    Returns the payload unchanged; raises ``ValueError`` on violations.
    """
    for key in REQUIRED_KEYS:
        if key not in payload:
            raise ValueError(f"bench payload missing required key {key!r}")
    if not isinstance(payload["bench"], str) or not payload["bench"]:
        raise ValueError("bench payload 'bench' must be a non-empty string")
    if payload["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench payload schema_version {payload['schema_version']!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(payload.get("text"), str):
        raise ValueError("bench payload 'text' must be a string")
    meta = payload.get("meta", {})
    if not isinstance(meta, dict):
        raise ValueError("bench payload 'meta' must be a dict")
    if payload["structured"]:
        columns = payload.get("columns")
        rows = payload.get("rows")
        if not isinstance(columns, list) or not columns or not all(
            isinstance(c, str) for c in columns
        ):
            raise ValueError("structured payload needs a non-empty str 'columns' list")
        if not isinstance(rows, list):
            raise ValueError("structured payload needs a 'rows' list")
        for i, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(columns):
                raise ValueError(
                    f"row {i} has {len(row) if isinstance(row, list) else 'no'} "
                    f"cells, expected {len(columns)}"
                )
            for cell in row:
                if not isinstance(cell, (str, int, float, bool, type(None))):
                    raise ValueError(
                        f"row {i} contains non-scalar cell {cell!r} "
                        f"({type(cell).__name__})"
                    )
    return payload


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """``save_result(name, text, *, columns=, rows=, meta=)``.

    Writes the text artefact under ``results/<name>.txt`` and a
    schema-checked JSON twin under ``results/BENCH_<name>.json``.  Pass
    ``columns``/``rows`` to make the JSON structured (preferred); the
    row cells must be JSON scalars.
    """

    def _save(
        name: str,
        text: str,
        *,
        columns: list[str] | None = None,
        rows: list[list] | None = None,
        meta: dict | None = None,
    ) -> pathlib.Path:
        if (columns is None) != (rows is None):
            raise ValueError("pass columns and rows together (or neither)")
        normalized = text if text.endswith("\n") else text + "\n"
        payload: dict = {
            "bench": name,
            "schema_version": BENCH_SCHEMA_VERSION,
            "structured": columns is not None,
            "text": normalized,
        }
        if columns is not None:
            payload["columns"] = list(columns)
            payload["rows"] = [list(row) for row in rows]
        if meta:
            payload["meta"] = dict(meta)
        # Validate before touching disk so a schema violation never
        # leaves a text artefact without its JSON twin.
        validate_bench_payload(payload)
        path = results_dir / f"{name}.txt"
        path.write_text(normalized)
        (results_dir / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return path

    return _save


@pytest.fixture
def rng():
    return new_rng(2024)
