"""Benchmark-suite fixtures.

Every bench regenerates one paper table/figure: it saves the rendered
table under ``results/`` (so the artefacts survive the run) and times a
representative kernel with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.utils.seeding import new_rng

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """``save_result(name, text)`` writes one artefact under results/."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return _save


@pytest.fixture
def rng():
    return new_rng(2024)
