"""Extension bench: gTop-k vs NaiveAG vs HiTopKComm.

gTop-k (Shi et al. 2019c) is the related-work alternative the paper
cites for sparse aggregation; this bench places it between the flat
All-Gather baseline and the paper's hierarchical scheme on both cost
and functional behaviour.
"""

import numpy as np

from repro.cluster.cloud_presets import make_cluster, paper_testbed
from repro.comm.gtopk import GlobalTopK
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table

RHO = 0.001
SIZES = (10_000_000, 50_000_000, 100_000_000)


def cost_sweep():
    net = paper_testbed()
    rows = []
    for d in SIZES:
        rows.append(
            (
                d,
                NaiveAllGather(net, density=RHO).time_model(d).total,
                GlobalTopK(net, density=RHO).time_model(d).total,
                HiTopKComm(net, density=RHO).time_model(d).total,
            )
        )
    return rows


def test_bench_gtopk_cost(benchmark, save_result):
    rows = benchmark(cost_sweep)
    table_rows = [
        [f"{d / 1e6:g}M"] + [round(float(t), 4) for t in ts] for d, *ts in rows
    ]
    save_result(
        "extension_gtopk_cost",
        format_table(
            ["Elements", "NaiveAG", "gTopK", "HiTopKComm"],
            table_rows,
            title=f"Extension: sparse aggregation cost, rho = {RHO}, 16x8 testbed",
        ),
        columns=["elements", "naiveag_seconds", "gtopk_seconds", "hitopkcomm_seconds"],
        rows=table_rows,
        meta={"density": RHO, "cluster": "16x8 tencent"},
    )
    for _, naive, gtopk, hitopk in rows:
        # gTop-k beats the flat All-Gather (log P rounds of k vs P·k
        # volume); the hierarchical scheme wins overall at this scale.
        assert gtopk < naive


def test_bench_gtopk_functional(benchmark):
    net = make_cluster(2, "tencent", gpus_per_node=4)
    rng = new_rng(0)
    grads = [rng.normal(size=20_000) for _ in range(8)]
    scheme = GlobalTopK(net, density=0.01, error_feedback=False)
    result = benchmark(lambda: scheme.aggregate(grads, rng=rng))
    assert np.count_nonzero(result.outputs[0]) <= result.extras["k"]
