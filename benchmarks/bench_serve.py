"""Serve daemon: kill-anywhere recovery drill + payload determinism.

Runs the committed day-of-ops script (``examples/serve/day_ops.jsonl``
— submissions, ticks, an explicit snapshot, a drain — against the
``serve_smoke`` config's fault plan and health-migrate brain) through
the :class:`repro.serve.drill.RecoveryDrill` matrix: one uninterrupted
reference run pinning the final BENCH payload bytes, then a crash at
each seeded injection point — mid-tick, mid-snapshot-write,
mid-journal-append — with restart, at-least-once resend, and a
byte-compare of the recovered payload.

The gates this bench feeds (hard in CI via
``check_serve_regression.py``):

* **kill-anywhere** — every injection point recovers to a
  byte-identical payload with zero acknowledged submissions lost;
* **recovery determinism** — a second, independent reference run
  produces the same payload bytes, and the payload digest is pinned
  against the committed ``results/BENCH_serve.json``;
* **recovery latency** — worst-case restart cost (journal repair +
  snapshot load + replay) stays under a wall-clock ceiling.

Emits ``results/BENCH_serve_run.json``; the *committed* baseline lives
at ``results/BENCH_serve.json`` and is never written by a bench run
(updating it is a deliberate ``cp`` after a representative run).
"""

import pathlib
import shutil
import tempfile

import pytest

from repro.api.config import ServeConfig
from repro.serve.drill import DEFAULT_POINTS, RecoveryDrill, ops_from_script

REPO = pathlib.Path(__file__).resolve().parent.parent
CONFIG_PATH = REPO / "examples" / "configs" / "serve_smoke.json"
OPS_PATH = REPO / "examples" / "serve" / "day_ops.jsonl"

#: Worst-case acceptable restart cost for the day-of-ops state, seconds.
#: Measured ~5 ms on a dev core; the ceiling is 100x that to stay hard
#: on the slowest CI runner while still catching a replay-from-genesis
#: regression (a lost snapshot path multiplies replay length).
MAX_RECOVERY_S = 2.0

COLUMNS = (
    "point",
    "acked_before_crash",
    "resent",
    "deduplicated",
    "replayed",
    "lost_acked",
    "payload_match",
    "torn_bytes_dropped",
    "snapshot_slot",
    "recovery_s",
)


def _ops():
    return ops_from_script(OPS_PATH.read_text().splitlines())


@pytest.fixture(scope="module")
def serve_drill(save_result):
    config = ServeConfig.from_file(CONFIG_PATH)
    work = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        drill = RecoveryDrill(config, _ops(), work_dir=work)
        result = drill.run()
        # Independent second reference run: same bytes or the daemon is
        # not deterministic in its inputs.
        again = RecoveryDrill(config, _ops(), work_dir=f"{work}-again")
        again.run_reference()
        deterministic = again.reference_bytes == drill.reference_bytes
        shutil.rmtree(f"{work}-again", ignore_errors=True)
    finally:
        shutil.rmtree(work, ignore_errors=True)

    rows = [
        [
            p["point"],
            p["acked_before_crash"],
            p["resent"],
            p["deduplicated"],
            p["replayed"],
            p["lost_acked"],
            p["payload_match"],
            p["torn_bytes_dropped"],
            p["snapshot_slot"],
            round(p["recovery_s"], 6),
        ]
        for p in result["points"]
    ]
    widths = [max(len(c), 14) for c in COLUMNS]
    lines = ["  ".join(c.ljust(w) for c, w in zip(COLUMNS, widths))]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    save_result(
        "serve_run",
        "\n".join(lines),
        columns=list(COLUMNS),
        rows=rows,
        meta={
            "config": CONFIG_PATH.name,
            "seed": config.seed,
            "ops": result["ops"],
            "points": list(DEFAULT_POINTS),
            "all_match": result["all_match"],
            "lost_acked_total": result["lost_acked_total"],
            "max_recovery_s": round(result["max_recovery_s"], 6),
            "reference_digest": result["reference_digest"],
            "deterministic": deterministic,
        },
    )
    return {"result": result, "rows": rows, "deterministic": deterministic}


def test_bench_serve_kill_anywhere(benchmark, serve_drill):
    """Every injection point recovers byte-identically, losing nothing."""

    def check():
        result = serve_drill["result"]
        assert result["all_match"], result
        assert result["lost_acked_total"] == 0, result
        for point in result["points"]:
            assert point["payload_match"], point
            assert point["lost_acked"] == 0, point
        return True

    assert benchmark(check)


def test_bench_serve_covers_every_kill_kind(benchmark, serve_drill):
    """Mid-tick, mid-snapshot, and mid-append each fire at least once."""

    def check():
        points = [p["point"] for p in serve_drill["result"]["points"]]
        assert points == list(DEFAULT_POINTS)
        kinds = {point.split(":")[0] for point in points}
        assert kinds == {"tick", "snapshot", "append"}
        # The append kill must actually tear the journal tail, and the
        # tick kill must force a journaled-but-unapplied replay.
        by_kind = {p["point"].split(":")[0]: p for p in serve_drill["result"]["points"]}
        assert by_kind["append"]["torn_bytes_dropped"] > 0
        assert by_kind["tick"]["replayed"] >= 1
        return True

    assert benchmark(check)


def test_bench_serve_determinism(benchmark, serve_drill):
    """Two independent uninterrupted runs produce identical payload bytes."""

    def check():
        assert serve_drill["deterministic"], (
            "two reference serve runs of the same op stream diverged"
        )
        assert serve_drill["result"]["reference_digest"]
        return True

    assert benchmark(check)


def test_bench_serve_recovery_bounded(benchmark, serve_drill):
    """Worst-case restart cost stays under the wall-clock ceiling."""

    def check():
        worst = serve_drill["result"]["max_recovery_s"]
        assert worst <= MAX_RECOVERY_S, (
            f"worst-case recovery took {worst:.3f}s "
            f"(ceiling {MAX_RECOVERY_S}s) — snapshot loading or journal "
            "replay regressed"
        )
        return True

    assert benchmark(check)
