"""Elastic churn: goodput, lost work, and $-cost under spot revocations.

Sweeps revocation rates x comm schemes with the elastic trainer (same
churn schedule per rate for every scheme, stragglers composed in).  The
assertion mirrors the tentpole claim: HiTopKComm retains its throughput
advantage over dense all-reduce at >= 1 revocation per 100 iterations,
and every scheme reports goodput / lost work / dollar cost.
"""

from repro.experiments.elastic_churn import run
from repro.utils.tables import format_table

SCHEMES = ("dense", "gtopk", "mstopk")
#: Per-node per-iteration rates; on the 3-node bench cluster 0.01
#: averages ~3 revocations per 100 iterations (>= 1 guaranteed below).
RATES = (0.0, 0.01)
ITERATIONS = 80


def sweep():
    return run(
        schemes=SCHEMES,
        rates=RATES,
        iterations=ITERATIONS,
        num_samples=256,
        checkpoint_every=15,
        seed=11,
    )


def test_bench_elastic_churn(benchmark, save_result):
    results = benchmark(sweep)

    columns = [
        "scheme",
        "rate",
        "goodput_it_per_s",
        "raw_it_per_s",
        "lost_work_fraction",
        "revocations",
        "joins",
        "usd_per_kilo_iter",
        "savings_vs_on_demand",
        "final_loss",
    ]
    rows = []
    for (scheme, rate), (report, cost) in sorted(results.items()):
        rows.append(
            [
                report.scheme,
                float(rate),
                round(report.goodput, 4),
                round(report.raw_throughput, 4),
                round(report.lost_fraction, 4),
                int(report.revocations),
                int(report.joins),
                round(cost.cost_per_kilo_iteration, 4),
                round(cost.savings_fraction, 4),
                round(report.final_loss, 4),
            ]
        )
    save_result(
        "elastic_churn",
        format_table(
            columns,
            rows,
            title=(
                "Elastic churn: goodput/lost-work/$ by scheme "
                "(3x2 spot cluster, d=25M comm model)"
            ),
        ),
        columns=columns,
        rows=rows,
        meta={"iterations": ITERATIONS, "cluster": "3x2 tencent"},
    )

    by_key = {(scheme, rate): rep for (scheme, rate), (rep, _) in results.items()}
    churn_rate = RATES[1]
    dense = by_key[("dense", churn_rate)]
    hitopk = by_key[("mstopk", churn_rate)]
    # The sweep must actually exercise churn: >= 1 revocation per 100
    # iterations on the churny setting.
    assert dense.revocations >= max(1, dense.wall_iterations // 100)
    assert hitopk.revocations >= 1
    # Tentpole claim: the hierarchical sparse scheme retains its
    # throughput advantage over dense all-reduce under churn.
    assert hitopk.goodput > dense.goodput
    # And the advantage also shows up in dollars per useful iteration.
    costs = {k: c for k, (_, c) in results.items()}
    assert (
        costs[("mstopk", churn_rate)].cost_per_kilo_iteration
        < costs[("dense", churn_rate)].cost_per_kilo_iteration
    )
    # Every scheme reports the accounting triple.
    for (scheme, rate), (report, cost) in results.items():
        assert report.goodput > 0
        assert 0 <= report.lost_fraction < 1
        assert cost.spot_cost > 0
