"""Collect ``results/BENCH_*.json`` payloads into one trajectory file.

Every benchmark emits a schema-checked ``BENCH_<name>.json`` (see
``benchmarks/conftest.py``).  This tool folds the current crop into
``results/TRAJECTORY.json`` — a per-bench series keyed by commit — so
benchmark metrics can be tracked across the repository's history:

* per bench and commit, the structured ``columns``/``rows`` table is
  stored verbatim (these tables are small), plus a flat ``metrics``
  dict (column -> mean over numeric cells) for quick dashboards;
* re-running on the same commit overwrites that commit's entry
  (idempotent), a new commit appends to the ordered ``commits`` list;
* unstructured payloads contribute only their metadata.

Usage::

    python benchmarks/trajectory.py [--results-dir results]
        [--out results/TRAJECTORY.json] [--commit SHA]
        [--exclude GLOB ...] [--include-runs]

``BENCH_*_run.json`` payloads are skipped by default: they are the
fresh-measurement twins the perf gates compare against committed
baselines (same bench name, same schema), so folding both in would let
whichever was written last clobber the series entry.  Pass
``--include-runs`` to fold them in deliberately.

CI runs this after the smoke benchmarks and uploads the result as an
artifact, excluding committed baseline payloads (``--exclude``) so a
stale checked-in measurement is never stamped onto the current commit;
committing the file is optional (the series merges).
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import subprocess
import sys

#: Bump when the trajectory envelope changes shape.
TRAJECTORY_SCHEMA_VERSION = 1

#: Fresh-measurement payloads skipped unless ``--include-runs``.
RUN_PAYLOAD_GLOB = "BENCH_*_run.json"


def current_commit(repo_root: pathlib.Path) -> str:
    """The current git commit (short), or ``"unknown"`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def numeric_means(columns: list, rows: list) -> dict:
    """Mean of every column's numeric cells (bool excluded)."""
    metrics: dict[str, float] = {}
    for i, column in enumerate(columns):
        values = [
            row[i]
            for row in rows
            if i < len(row)
            and isinstance(row[i], (int, float))
            and not isinstance(row[i], bool)
        ]
        if values:
            metrics[str(column)] = sum(values) / len(values)
    return metrics


def bench_entry(payload: dict) -> dict:
    """The per-commit trajectory record of one BENCH payload."""
    entry: dict = {"structured": bool(payload.get("structured"))}
    if payload.get("structured"):
        columns = payload.get("columns", [])
        rows = payload.get("rows", [])
        entry["columns"] = columns
        entry["rows"] = rows
        entry["metrics"] = numeric_means(columns, rows)
    if payload.get("meta"):
        entry["meta"] = payload["meta"]
    return entry


def collect(
    results_dir: pathlib.Path,
    out_path: pathlib.Path,
    commit: str,
    *,
    exclude: tuple[str, ...] = (),
    include_runs: bool = False,
) -> dict:
    """Merge the current BENCH payloads into the trajectory at ``out_path``.

    ``exclude`` holds filename globs (e.g. ``BENCH_perf_hotpath.json``)
    for payloads that must not be stamped onto ``commit`` — typically
    committed baselines measured at an older commit.  ``*_run``
    fresh-measurement payloads are excluded unless ``include_runs``.
    """
    patterns = tuple(exclude)
    if not include_runs:
        patterns += (RUN_PAYLOAD_GLOB,)
    paths = [
        path
        for path in sorted(results_dir.glob("BENCH_*.json"))
        if not any(fnmatch.fnmatch(path.name, pattern) for pattern in patterns)
    ]
    if not paths:
        raise SystemExit(f"error: no BENCH_*.json files under {results_dir}")

    if out_path.exists():
        trajectory = json.loads(out_path.read_text())
        if trajectory.get("schema_version") != TRAJECTORY_SCHEMA_VERSION:
            raise SystemExit(
                f"error: {out_path} has schema_version "
                f"{trajectory.get('schema_version')!r}, expected "
                f"{TRAJECTORY_SCHEMA_VERSION} (delete it to restart the series)"
            )
    else:
        trajectory = {
            "schema_version": TRAJECTORY_SCHEMA_VERSION,
            "commits": [],
            "benches": {},
        }

    if commit not in trajectory["commits"]:
        trajectory["commits"].append(commit)

    collected = 0
    for path in paths:
        payload = json.loads(path.read_text())
        name = payload.get("bench")
        if not name or payload.get("schema_version") != 1:
            print(f"skipping {path.name}: not a schema-1 BENCH payload")
            continue
        series = trajectory["benches"].setdefault(name, {})
        series[commit] = bench_entry(payload)
        collected += 1

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(
        f"collected {collected} bench payload(s) at commit {commit} -> {out_path} "
        f"({len(trajectory['benches'])} bench series, "
        f"{len(trajectory['commits'])} commit(s))"
    )
    return trajectory


def main(argv: list[str] | None = None) -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=str(repo_root / "results"),
        help="directory holding BENCH_*.json payloads (default: results/)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="trajectory file to merge into (default: <results-dir>/TRAJECTORY.json)",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="commit id to key this crop under (default: git rev-parse --short HEAD)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="GLOB",
        help="filename glob(s) to skip, e.g. committed baselines measured "
        "at an older commit (repeatable)",
    )
    parser.add_argument(
        "--include-runs",
        action="store_true",
        help="also fold BENCH_*_run.json fresh-measurement payloads in "
        "(skipped by default: they shadow their committed baselines)",
    )
    args = parser.parse_args(argv)
    results_dir = pathlib.Path(args.results_dir)
    out_path = (
        pathlib.Path(args.out) if args.out else results_dir / "TRAJECTORY.json"
    )
    commit = args.commit or current_commit(repo_root)
    collect(
        results_dir,
        out_path,
        commit,
        exclude=tuple(args.exclude),
        include_runs=args.include_runs,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
