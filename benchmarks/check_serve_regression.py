"""CI gate on serve-daemon crash-safety: the kill-anywhere contract.

Compares a freshly produced ``BENCH_serve_run.json`` against the
committed ``results/BENCH_serve.json`` baseline and enforces the serve
subsystem's acceptance bar:

* **kill-anywhere** (hard, every host) — every injection point in the
  drill matrix recovered to a byte-identical payload
  (``payload_match``) with zero acknowledged submissions lost
  (``lost_acked_total == 0``).  This is the durability contract itself;
* **recovery determinism** (hard, every host) — ``meta.deterministic``
  must be true (two independent uninterrupted runs produced the same
  payload bytes) and ``meta.reference_digest`` must equal the committed
  baseline's.  A digest drift means the daemon now schedules the same
  day differently, which must be a deliberate baseline update, never an
  accident;
* **recovery latency** (hard, generous) — the worst-case restart cost
  (journal repair + snapshot load + replay) must stay under
  ``--max-recovery-s``.  Wall-clock, so the default ceiling is set far
  above any healthy run; it exists to catch a lost-snapshot path that
  silently degrades every restart to replay-from-genesis;
* **recovery-time drift** (advisory) — a worst-case recovery slower
  than the committed baseline by more than ``--threshold``x only prints
  a note (absolute restart cost is host-specific).

Usage (as the CI ``serve-smoke`` job does)::

    python -m pytest benchmarks/bench_serve.py -q --benchmark-disable
    python benchmarks/check_serve_regression.py \
        --baseline results/BENCH_serve.json \
        --current results/BENCH_serve_run.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

META_KEYS = (
    "deterministic",
    "reference_digest",
    "all_match",
    "lost_acked_total",
    "max_recovery_s",
)


def load_payload(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    meta = payload.get("meta", {})
    for key in META_KEYS:
        if key not in meta:
            raise SystemExit(f"{path}: bench payload meta lacks {key!r}")
    for key in ("columns", "rows"):
        if key not in payload:
            raise SystemExit(f"{path}: bench payload lacks {key!r}")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_serve.json")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly measured BENCH_serve_run.json")
    parser.add_argument("--max-recovery-s", type=float, default=5.0,
                        help="hard ceiling on worst-case recovery wall time")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="recovery-time slowdown vs the committed "
                             "baseline that triggers the advisory note")
    args = parser.parse_args(argv)

    base = load_payload(args.baseline)
    cur = load_payload(args.current)
    failures = []

    columns = cur["columns"]
    idx = {column: i for i, column in enumerate(columns)}
    bad_points = [
        row[idx["point"]]
        for row in cur["rows"]
        if not row[idx["payload_match"]] or row[idx["lost_acked"]]
    ]
    if bad_points or not cur["meta"]["all_match"] or cur["meta"]["lost_acked_total"]:
        failures.append(f"kill-anywhere contract broken at: {bad_points}")
        print(
            "FAIL: recovery lost acknowledged work or changed payload "
            f"bytes at {bad_points} (lost_acked_total="
            f"{cur['meta']['lost_acked_total']})"
        )
    else:
        print(
            f"ok: {len(cur['rows'])} injection point(s) recovered "
            "byte-identically with zero acknowledged submissions lost"
        )

    if not cur["meta"]["deterministic"]:
        failures.append("deterministic is false: two reference runs diverged")
        print("FAIL: two uninterrupted serve runs produced different payloads")
    else:
        print("ok: independent uninterrupted runs are bit-identical")

    base_digest = base["meta"]["reference_digest"]
    cur_digest = cur["meta"]["reference_digest"]
    if cur_digest != base_digest:
        failures.append(
            f"reference payload digest drifted: {cur_digest} != committed "
            f"{base_digest}"
        )
        print(
            f"FAIL: reference payload digest {cur_digest} != committed "
            f"{base_digest} — the daemon schedules the committed day "
            "differently (baseline update must be deliberate)"
        )
    else:
        print(f"ok: reference payload digest pinned ({cur_digest})")

    worst = cur["meta"]["max_recovery_s"]
    if worst > args.max_recovery_s:
        failures.append(
            f"worst-case recovery {worst:.3f}s over the "
            f"{args.max_recovery_s}s ceiling"
        )
        print(
            f"FAIL: worst-case recovery {worst:.3f}s exceeds the "
            f"{args.max_recovery_s}s ceiling — restart likely degraded to "
            "replay-from-genesis"
        )
    else:
        print(
            f"ok: worst-case recovery {worst * 1000:.1f} ms "
            f"(ceiling {args.max_recovery_s}s)"
        )

    base_worst = base["meta"]["max_recovery_s"]
    if base_worst > 0 and worst > base_worst * args.threshold:
        print(
            f"note: worst-case recovery {worst * 1000:.1f} ms is "
            f">{args.threshold:.0f}x the committed baseline "
            f"({base_worst * 1000:.1f} ms) — host noise or a real slowdown "
            "(advisory only)"
        )

    if failures:
        print(f"FAIL: {len(failures)} serve gate(s) failed")
        return 1
    print("ok: serve crash-safety gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
