"""Validate a ``BENCH_*.json`` payload against the output schema.

Thin CLI over ``benchmarks/conftest.py::validate_bench_payload`` (the
single source of truth) so CI jobs share one checked-in validator
instead of duplicating inline heredocs::

    python benchmarks/validate_payload.py results/BENCH_perf_hotpath_run.json
"""

from __future__ import annotations

import json
import pathlib
import sys

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
# conftest imports repro; make the src layout importable without an
# installed package or PYTHONPATH.
sys.path.insert(0, str(_HERE.parent / "src"))
from conftest import validate_bench_payload  # noqa: E402


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: validate_payload.py <BENCH_*.json> [...]", file=sys.stderr)
        return 2
    for arg in argv:
        path = pathlib.Path(arg)
        payload = validate_bench_payload(json.loads(path.read_text()))
        detail = payload.get("meta", payload.get("columns"))
        print(f"ok: {path} ({payload['bench']}) {detail}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
