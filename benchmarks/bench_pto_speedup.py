"""§5.4: PTO speedup on LARS — cost model + functional benches."""

import numpy as np

from repro.cluster.cloud_presets import make_cluster
from repro.experiments import pto_speedup
from repro.optim.lars import lars_coefficients
from repro.pto.lars_pto import lars_learning_rates_pto
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table


def test_bench_pto_cost_model(benchmark, save_result):
    rows = benchmark(pto_speedup.run)
    table = []
    for r in rows:
        paper_serial, paper_pto = pto_speedup.PAPER_PTO[r.model]
        table.append(
            [r.model, round(r.serial_ms, 1), paper_serial, round(r.pto_ms, 1),
             paper_pto, f"{r.speedup:.2f}x"]
        )
    save_result(
        "pto_speedup",
        format_table(
            ["Model", "Serial (ms)", "paper", "PTO (ms)", "paper", "Speedup"],
            table,
            title="PTO speedup on LARS computation, 128 GPUs (paper §5.4)",
        ),
    )
    assert all(r.speedup > 1.3 for r in rows)


def _make_layers(n_layers=161, size=2048):
    rng = new_rng(0)
    weights = [rng.normal(size=size) for _ in range(n_layers)]
    grads = [rng.normal(size=size) for _ in range(n_layers)]
    return weights, grads


def test_bench_pto_functional_serial_lars(benchmark):
    """Serial LARS over a 161-layer inventory (the Eq. 11 loop)."""
    weights, grads = _make_layers()
    rates = benchmark(lars_coefficients, weights, grads, eta=0.1)
    assert rates.size == 161


def test_bench_pto_functional_parallel_lars(benchmark):
    """PTO-LARS over the same inventory on a virtual 2x4 cluster."""
    weights, grads = _make_layers()
    net = make_cluster(2, "tencent", gpus_per_node=4)
    result = benchmark(
        lambda: lars_learning_rates_pto(net, weights, grads, eta=0.1)
    )
    serial = lars_coefficients(weights, grads, eta=0.1)
    np.testing.assert_allclose(result.result, serial)
