"""Table 5: DAWNBench time-to-93% record run + schedule ablations."""

from repro.experiments import table5_dawnbench
from repro.perf.dawnbench import DAWNBENCH_LEADERBOARD, PAPER_RECORD_SECONDS
from repro.utils.tables import format_table


def test_bench_table5(benchmark, save_result):
    outcome = benchmark(table5_dawnbench.run)

    rows = [
        [e.team, e.date, e.interconnect, round(e.seconds)]
        for e in DAWNBENCH_LEADERBOARD
    ]
    rows.append(
        ["Ours (simulated)", "Aug 2020", "25GbE", round(outcome.record.total_seconds)]
    )
    rows.append(["Ours (paper)", "Aug 2020", "25GbE", round(PAPER_RECORD_SECONDS)])
    extra = (
        f"\nrecord: {outcome.record.total_seconds:.1f}s "
        f"(top-5 {100 * outcome.record.final_top5:.2f}%)"
        f"\nablation all-2DTAR:  {outcome.all_dense.total_seconds:.1f}s"
        f"\nablation all-MSTopK: {outcome.all_sparse.total_seconds:.1f}s "
        f"(top-5 {100 * outcome.all_sparse.final_top5:.2f}% — misses target)"
    )
    save_result(
        "table5_dawnbench",
        format_table(
            ["Team", "Date", "Interconnect", "Time (s)"],
            rows,
            title="Table 5: time to 93% top-5 with 128 V100 GPUs",
        )
        + extra,
    )

    assert outcome.record.reached_target
    assert outcome.record.total_seconds < 160
    assert not outcome.all_sparse.reached_target
