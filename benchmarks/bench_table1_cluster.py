"""Table 1: cloud instance presets + cluster construction cost."""

from repro.cluster.cloud_presets import make_cluster, paper_testbed
from repro.experiments import table1_instances
from repro.utils.tables import format_table


def test_bench_table1_build_testbed(benchmark, save_result):
    """Build the 16x8 paper testbed (topology + links)."""
    net = benchmark(paper_testbed)
    assert net.world_size == 128
    save_result(
        "table1_instances",
        format_table(
            ["Cloud", "Instance", "Memory (GiB)", "Storage", "Network (Gbps)"],
            table1_instances.run(),
            title="Table 1: 8 V100 GPUs computing instances on clouds",
        ),
    )


def test_bench_table1_cluster_factory(benchmark):
    """make_cluster by preset name."""
    net = benchmark(make_cluster, 8, "aliyun")
    assert net.num_nodes == 8
