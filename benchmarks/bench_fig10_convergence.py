"""Fig. 10: convergence curves of Dense / TopK / MSTopK SGD."""

import pytest

from repro.train.convergence import ConvergenceRunner
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def curves(save_result):
    """One moderate run, reused by the assertions and the artefact."""
    runner = ConvergenceRunner(
        num_nodes=4, gpus_per_node=2, epochs=12, num_samples=1024, seed=7
    )
    results = {w: runner.run(w) for w in ("mlp", "cnn")}
    sections = []
    for workload, result in results.items():
        algorithms = list(result.reports)
        epochs = len(result.reports[algorithms[0]].val_metrics)
        rows = [
            [e] + [round(result.reports[a].val_metrics[e], 4) for a in algorithms]
            for e in range(epochs)
        ]
        sections.append(
            format_table(
                ["Epoch"] + algorithms,
                rows,
                title=f"Fig. 10 ({workload}): validation accuracy per epoch",
            )
        )
    save_result("fig10_convergence", "\n\n".join(sections))
    return results


def test_bench_fig10_single_epoch(benchmark, curves):
    """Wall-clock of one distributed MLP epoch under MSTopK-SGD."""
    runner = ConvergenceRunner(
        num_nodes=2, gpus_per_node=2, epochs=1, num_samples=512, seed=3
    )
    result = benchmark(lambda: runner.run("mlp", algorithms=("mstopk",), epochs=1))
    assert result.reports["mstopk"].iterations > 0


def test_bench_fig10_claims(benchmark, curves):
    """The paper's convergence claims hold in the saved curves."""

    def check():
        for workload, result in curves.items():
            dense = result.final("dense")
            assert result.final("topk") <= dense + 0.05, workload
            assert result.final("mstopk") <= dense + 0.05, workload
        return True

    assert benchmark(check)
