"""Fig. 10: convergence curves of Dense / TopK / MSTopK SGD.

Driven through the ``repro.api`` facade: one declarative RunConfig per
(workload, algorithm) cell, identical seeds — bit-identical to the old
hand-wired ConvergenceRunner path.
"""

import pytest

from repro.api import CONVERGENCE_ALGORITHMS, RunConfig, run
from repro.utils.tables import format_table


def _config(workload: str, algorithm: str, *, epochs: int, num_samples: int, seed: int):
    return RunConfig.from_dict({
        "name": f"fig10-{workload}-{algorithm}",
        "seed": seed,
        "cluster": {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 2},
        "comm": {"scheme": algorithm, "density": 0.05},
        "train": {"model": workload, "epochs": epochs, "num_samples": num_samples,
                  "local_batch": 16, "lr": 0.05},
    })


@pytest.fixture(scope="module")
def curves(save_result):
    """One moderate run per cell, reused by the assertions and the artefact."""
    results = {
        workload: {
            algorithm: run(
                _config(workload, algorithm, epochs=12, num_samples=1024, seed=7)
            )
            for algorithm in CONVERGENCE_ALGORITHMS
        }
        for workload in ("mlp", "cnn")
    }
    sections = []
    for workload, reports in results.items():
        algorithms = list(reports)
        epochs = len(reports[algorithms[0]].training.val_metrics)
        rows = [
            [e] + [round(reports[a].training.val_metrics[e], 4) for a in algorithms]
            for e in range(epochs)
        ]
        sections.append(
            format_table(
                ["Epoch"] + algorithms,
                rows,
                title=f"Fig. 10 ({workload}): validation accuracy per epoch",
            )
        )
    save_result("fig10_convergence", "\n\n".join(sections))
    return results


def test_bench_fig10_single_epoch(benchmark, curves):
    """Wall-clock of one distributed MLP epoch under MSTopK-SGD."""
    config = _config("mlp", "mstopk", epochs=1, num_samples=512, seed=3)
    config = RunConfig.from_dict({**config.to_dict(), "cluster": {
        "instance": "tencent", "num_nodes": 2, "gpus_per_node": 2}})
    report = benchmark(lambda: run(config))
    assert report.training.iterations > 0


def test_bench_fig10_claims(benchmark, curves):
    """The paper's convergence claims hold in the saved curves."""

    def check():
        for workload, reports in curves.items():
            dense = reports["dense"].summary["final_metric"]
            assert reports["topk"].summary["final_metric"] <= dense + 0.05, workload
            assert reports["mstopk"].summary["final_metric"] <= dense + 0.05, workload
        return True

    assert benchmark(check)
