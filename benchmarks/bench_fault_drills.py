"""Fault drills: recovery scorecard + replay determinism gates.

Runs the seeded seven-fault storm (:data:`repro.faults.drill.STORM_EVENTS`
— NIC flap, fail-slow disk, persistent straggler, gray link, unwarned
node crash, checkpoint corruption, AZ-wide spot reclaim) against
**every registered aggregation scheme**, paired with a fault-free
baseline per scheme, and scores detection-to-recovery latency, goodput
under the storm vs baseline, lost work, and $/kilo-iteration.  The
payload also embeds the gray-failure *policy drill*
(``meta.policy_drill``): the committed gray storm replayed once per
placement policy, where the ``fault-aware`` policy must beat every
fault-blind built-in on goodput under the storm.

Determinism is the headline gate: the whole drill matrix is produced
twice — serially and through a 2-worker process pool — and the two
BENCH payloads (rows, digests, full fault logs, policy drill) must
match bit for bit.  Every timestamp in the fault log is *virtual*
seconds, so this holds on any host at any ``--jobs`` width.

Emits ``results/BENCH_fault_drills_run.json``; the *committed* baseline
lives at ``results/BENCH_fault_drills.json`` and is never written by a
bench run (updating it is a deliberate ``cp`` after a representative
run).  The CI ``faults-smoke`` job gates fresh runs against it via
``check_faults_regression.py``.
"""

import json

import pytest

from repro.api.registry import SCHEMES
from repro.exec.sweeper import ParallelSweeper
from repro.faults.drill import POLICY_DRILL_POLICIES, STORM_EVENTS, drills_payload

SEED = 7
POOL_JOBS = 2

#: Goodput-under-storm floor: the storm costs rollback-replay work,
#: degraded-NIC and gray-link iterations, and budget-blown checkpoint
#: retries, but a scheme that keeps less than this fraction of its
#: fault-free goodput has broken recovery, not slow recovery (the whole
#: matrix sits near 0.063 under the seven-fault storm today).
MIN_GOODPUT_RATIO = 0.05


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def drills(save_result):
    serial = drills_payload(seed=SEED)
    pooled = drills_payload(
        seed=SEED, sweeper=ParallelSweeper("process", jobs=POOL_JOBS)
    )
    deterministic = _canonical(serial) == _canonical(pooled)

    rows = serial["rows"]
    columns = serial["columns"]
    save_result(
        "fault_drills_run",
        serial["text"],
        columns=columns,
        rows=rows,
        meta={
            **serial["meta"],
            "deterministic": deterministic,
            "pool_jobs": POOL_JOBS,
            "min_goodput_ratio": MIN_GOODPUT_RATIO,
        },
    )
    index = {column: i for i, column in enumerate(columns)}
    return {
        "rows": rows,
        "index": index,
        "deterministic": deterministic,
        "schemes": serial["meta"]["schemes"],
        "policy_drill": serial["meta"]["policy_drill"],
    }


def test_bench_drills_determinism(benchmark, drills):
    """Serial and process-pool drill matrices match bit for bit."""

    def check():
        assert drills["deterministic"], (
            "fault-drill payload diverged between the serial loop and a "
            f"{POOL_JOBS}-worker process pool"
        )
        return True

    assert benchmark(check)


def test_bench_drills_cover_every_scheme(benchmark, drills):
    """One storm + baseline pair per registered scheme, none skipped."""

    def check():
        assert drills["schemes"] == SCHEMES.available()
        assert len(drills["rows"]) == len(SCHEMES.available())
        return True

    assert benchmark(check)


def test_bench_drills_recover(benchmark, drills):
    """Every scheme detects and recovers from the full composed storm."""

    def check():
        idx = drills["index"]
        for row in drills["rows"]:
            scheme = row[idx["scheme"]]
            assert row[idx["injected"]] == len(STORM_EVENTS), (scheme, row)
            assert row[idx["recovered"]] == row[idx["injected"]], (scheme, row)
            assert row[idx["absorbed"]] == 0, (scheme, row)
            assert row[idx["corrupt_checkpoints"]] >= 1, (
                f"{scheme}: the corrupted checkpoint was never detected"
            )
        return True

    assert benchmark(check)


def test_bench_policy_drill_fault_aware_wins(benchmark, drills):
    """Reading the health ledger must pay: fault-aware beats fault-blind."""

    def check():
        drill = drills["policy_drill"]
        idx = {column: i for i, column in enumerate(drill["columns"])}
        by_policy = {row[idx["policy"]]: row for row in drill["rows"]}
        assert set(by_policy) == set(POLICY_DRILL_POLICIES)
        aware = by_policy["fault-aware"]
        for blind in ("bin-pack", "spread", "network-aware"):
            assert (
                aware[idx["storm_goodput"]] > by_policy[blind][idx["storm_goodput"]]
            ), (
                f"fault-aware goodput under the gray storm "
                f"({aware[idx['storm_goodput']]}) does not beat {blind} "
                f"({by_policy[blind][idx['storm_goodput']]})"
            )
        # The storm's flap train must actually trip the ledger, on every
        # policy (the health timeline is policy-independent).
        for policy, row in by_policy.items():
            assert row[idx["quarantines"]] >= 1, (policy, row)
        assert set(drill["digests"]) == set(POLICY_DRILL_POLICIES)
        return True

    assert benchmark(check)


def test_bench_drills_goodput_floor(benchmark, drills):
    """Goodput under the storm clears the recovery-is-working floor."""

    def check():
        idx = drills["index"]
        for row in drills["rows"]:
            ratio = row[idx["goodput_ratio"]]
            assert ratio is not None and ratio >= MIN_GOODPUT_RATIO, (
                f"{row[idx['scheme']]}: goodput ratio {ratio} under the "
                f"storm fell below the {MIN_GOODPUT_RATIO} floor"
            )
        return True

    assert benchmark(check)
