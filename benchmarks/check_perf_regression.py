"""Soft perf-regression gate for the hot-path benchmark.

Compares a freshly produced ``BENCH_perf_hotpath_run.json`` against the
committed ``results/BENCH_perf_hotpath.json`` baseline.

The **hard gate** is the vectorized-vs-legacy speedup ratio, per scheme
(``meta.speedup_<scheme>``, plus the headline ``meta.speedup_vs_legacy``):
both paths are measured on the *same* machine in the same run, so the
ratio cancels raw host speed, and a drop beyond the threshold in any
scheme means that aggregation path itself regressed relative to the
reference implementation.  Absolute steps/sec is reported as an
**advisory** comparison only — CI runners and dev workstations differ
in raw throughput, so a cross-machine absolute gate would flake on
hardware variance rather than catch real regressions.

The default threshold (30%) suits same-class hosts; the CI job passes a
wider ``--threshold`` because contended shared-core runners compress
the ratio itself (memory-bound GEMM path vs compute-bound einsum
reference — see the README "Performance" note), matching the relaxed
``PERF_HOTPATH_MIN_SPEEDUP`` it sets for the bench's acceptance assert.

Usage (as the CI ``perf-smoke`` job does)::

    python -m pytest benchmarks/bench_perf_hotpath.py -q --benchmark-disable
    python benchmarks/check_perf_regression.py \
        --baseline results/BENCH_perf_hotpath.json \
        --current results/BENCH_perf_hotpath_run.json --threshold 0.5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_meta(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    meta = payload.get("meta", {})
    if "speedup_vs_legacy" not in meta or "steps_per_sec" not in meta:
        raise SystemExit(f"{path}: bench payload meta lacks speedup/steps_per_sec")
    return meta


def speedup_keys(meta: dict) -> list[str]:
    keys = ["speedup_vs_legacy"]
    keys += sorted(k for k in meta if k.startswith("speedup_") and k != "speedup_vs_legacy")
    return keys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_perf_hotpath.json")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly measured BENCH_perf_hotpath_run.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum allowed fractional speedup regression")
    args = parser.parse_args(argv)

    base = load_meta(args.baseline)
    cur = load_meta(args.current)
    if cur["steps_per_sec"] < base["steps_per_sec"] * (1.0 - args.threshold):
        # Advisory only: absolute throughput depends on the machine.
        print(
            f"note: absolute steps/sec {cur['steps_per_sec']:.2f} is below the "
            f"committed baseline {base['steps_per_sec']:.2f} (expected across "
            "differing hosts; the ratio gates below decide)."
        )

    failures = []
    for key in speedup_keys(base):
        if key not in cur:
            failures.append(f"{key}: missing from current payload")
            continue
        floor = float(base[key]) * (1.0 - args.threshold)
        status = "ok" if float(cur[key]) >= floor else "FAIL"
        print(
            f"{status}: {key} baseline {float(base[key]):.2f}x -> "
            f"current {float(cur[key]):.2f}x (floor {floor:.2f}x)"
        )
        if status == "FAIL":
            failures.append(key)
    if failures:
        print(f"FAIL: hot-path speedup regressed beyond the soft threshold: {failures}")
        return 1
    print("ok: hot-path speedups within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
