"""Fig. 7: aggregation time of NaiveAG / TreeAR / 2DTAR / HiTopKComm."""

import numpy as np
import pytest

from repro.cluster.cloud_presets import make_cluster
from repro.experiments import fig7_aggregation
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table


def test_bench_fig7_cost_sweep(benchmark, save_result):
    """The analytic Fig. 7 sweep on the 16x8 testbed."""
    points = benchmark(fig7_aggregation.run)
    by_size = {}
    for p in points:
        by_size.setdefault(p.d, {})[p.scheme] = p.seconds
    scheme_names = ["NaiveAG", "TreeAR", "2DTAR", "HiTopKComm"]
    rows = [
        [f"{d / 1e6:g}M"] + [round(by_size[d][s], 4) for s in scheme_names]
        for d in sorted(by_size)
    ]
    save_result(
        "fig7_aggregation",
        format_table(
            ["Elements"] + scheme_names,
            rows,
            title="Fig. 7: aggregation time (s), 16x8 V100, 25GbE, FP16, rho=0.01",
        ),
    )
    # Ordering at the largest size.
    largest = by_size[max(by_size)]
    assert (
        largest["HiTopKComm"] < largest["2DTAR"] < largest["TreeAR"] < largest["NaiveAG"]
    )


@pytest.fixture(scope="module")
def functional_setup():
    net = make_cluster(2, "tencent", gpus_per_node=4)
    rng = new_rng(0)
    grads = [rng.normal(size=20_000) for _ in range(8)]
    return net, grads, rng


def test_bench_fig7_functional_hitopk(benchmark, functional_setup):
    """Functional HiTopKComm aggregation (data actually moves)."""
    from repro.comm.hitopkcomm import HiTopKComm

    net, grads, rng = functional_setup
    scheme = HiTopKComm(net, density=0.01, error_feedback=False)
    result = benchmark(lambda: scheme.aggregate(grads, rng=rng))
    assert len(result.outputs) == 8


def test_bench_fig7_functional_2dtar(benchmark, functional_setup):
    """Functional 2D-torus all-reduce."""
    from repro.comm.dense import Torus2DAllReduce

    net, grads, _ = functional_setup
    scheme = Torus2DAllReduce(net)
    result = benchmark(lambda: scheme.aggregate(grads))
    np.testing.assert_allclose(result.outputs[0], np.sum(grads, axis=0))


def test_bench_fig7_functional_naiveag(benchmark, functional_setup):
    """Functional sparse all-gather aggregation."""
    from repro.comm.naive_allgather import NaiveAllGather

    net, grads, rng = functional_setup
    scheme = NaiveAllGather(net, density=0.01, error_feedback=False)
    result = benchmark(lambda: scheme.aggregate(grads, rng=rng))
    assert len(result.outputs) == 8
