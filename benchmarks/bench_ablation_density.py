"""Ablation: density ρ sweep for HiTopKComm.

The paper fixes ρ = 0.001 for training and 0.01 for the microbenchmarks;
this sweep shows the cost/benefit curve those choices sit on: inter-node
time is linear in ρ, and the dense 2DTAR cost is the ceiling the sparse
scheme crosses as ρ → 1.
"""

from repro.cluster.cloud_presets import paper_testbed
from repro.comm.dense import Torus2DAllReduce
from repro.comm.hitopkcomm import HiTopKComm
from repro.utils.tables import format_table

DENSITIES = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1)
D = 25_000_000  # ResNet-50


def sweep():
    net = paper_testbed()
    dense = Torus2DAllReduce(net, wire_bytes=2).time_model(D).total
    rows = []
    for rho in DENSITIES:
        scheme = HiTopKComm(net, density=rho, value_bytes=2, dense_wire_bytes=2)
        t = scheme.time_model(D).total
        rows.append((rho, t, dense / t))
    return rows, dense


def test_bench_ablation_density(benchmark, save_result):
    rows, dense = benchmark(sweep)
    save_result(
        "ablation_density",
        format_table(
            ["Density", "HiTopKComm (s)", "speedup vs 2DTAR"],
            [[r, round(t, 5), round(s, 2)] for r, t, s in rows],
            title=f"Ablation: density sweep, d = {D / 1e6:g}M, 2DTAR = {dense:.4f}s",
        ),
    )
    # Monotone in density; the paper's training density is far below the
    # crossover.
    times = [t for _, t, _ in rows]
    assert times == sorted(times)
    assert rows[1][2] > 2.0  # rho = 0.001 beats dense comfortably
