"""CI gate on fault-drill determinism and recovery quality.

Compares a freshly produced ``BENCH_fault_drills_run.json`` against the
committed ``results/BENCH_fault_drills.json`` baseline and enforces the
fault-subsystem acceptance bar:

* **determinism** (hard, every host) — ``meta.deterministic`` must be
  true: the serial loop and a process pool produced bit-identical drill
  payloads.  Fault-log timestamps are virtual seconds, so this never
  depends on the machine;
* **digest pin** (hard, every host) — the per-scheme fault-log digests
  must equal the committed baseline's.  A digest drift means the replay
  changed semantically (injection order, recovery path, or accounting),
  which must be a deliberate baseline update, never an accident;
* **recovery** (hard, every host) — every scheme in the matrix must
  detect and recover from every injected fault (``recovered ==
  injected``, nothing absorbed, the corrupted checkpoint caught);
* **goodput floor** (hard, every host) — goodput under the storm must
  keep at least ``--min-goodput-ratio`` (default 0.05) of the no-fault
  baseline.  Pure simulation, so the ratio is host-independent;
* **goodput drift** (advisory) — a per-scheme ratio drop against the
  committed baseline beyond ``--threshold`` only prints a note;
* **policy drill** (hard, every host) — ``meta.policy_drill`` must show
  the ``fault-aware`` policy strictly beating every fault-blind
  built-in on goodput under the committed gray storm, with the flap
  train quarantining its repeat offender, and the per-policy fault-log
  digests (which cover the ``gray-net`` windows and the health
  timeline) must equal the committed baseline's.

Usage (as the CI ``faults-smoke`` job does)::

    python -m pytest benchmarks/bench_fault_drills.py -q --benchmark-disable
    python benchmarks/check_faults_regression.py \
        --baseline results/BENCH_fault_drills.json \
        --current results/BENCH_fault_drills_run.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_payload(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    meta = payload.get("meta", {})
    for key in ("deterministic", "schemes", "digests", "policy_drill"):
        if key not in meta:
            raise SystemExit(f"{path}: bench payload meta lacks {key!r}")
    for key in ("columns", "rows"):
        if key not in payload:
            raise SystemExit(f"{path}: bench payload lacks {key!r}")
    return payload


def _cell(payload: dict, row: list, column: str):
    return row[payload["columns"].index(column)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_fault_drills.json")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly measured BENCH_fault_drills_run.json")
    parser.add_argument("--min-goodput-ratio", type=float, default=0.05,
                        help="storm/baseline goodput floor per scheme")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional goodput-ratio drop vs the committed "
                             "baseline that triggers the advisory note")
    args = parser.parse_args(argv)

    base = load_payload(args.baseline)
    cur = load_payload(args.current)
    failures = []

    if not cur["meta"]["deterministic"]:
        failures.append("deterministic is false: serial vs pool diverged")
        print("FAIL: serial and process-pool drill payloads diverged")
    else:
        print("ok: serial and process-pool drill payloads bit-identical")

    base_digests = base["meta"]["digests"]
    cur_digests = cur["meta"]["digests"]
    drifted = sorted(
        scheme
        for scheme in base_digests
        if cur_digests.get(scheme) != base_digests[scheme]
    )
    missing = sorted(set(base_digests) - set(cur_digests))
    if missing:
        failures.append(f"schemes missing from the drill matrix: {missing}")
        print(f"FAIL: schemes missing from the drill matrix: {missing}")
    if drifted:
        failures.append(f"fault-log digests drifted: {drifted}")
        print(
            f"FAIL: fault-log digests drifted for {drifted} — replay "
            "semantics changed; update the committed baseline deliberately "
            "if intended"
        )
    if not missing and not drifted:
        print(f"ok: {len(base_digests)} per-scheme log digests match baseline")

    bad_recovery = []
    bad_goodput = []
    for row in cur["rows"]:
        scheme = _cell(cur, row, "scheme")
        injected = _cell(cur, row, "injected")
        recovered = _cell(cur, row, "recovered")
        absorbed = _cell(cur, row, "absorbed")
        corrupt = _cell(cur, row, "corrupt_checkpoints")
        if injected < 1 or recovered != injected or absorbed or corrupt < 1:
            bad_recovery.append(scheme)
        ratio = _cell(cur, row, "goodput_ratio")
        if ratio is None or ratio < args.min_goodput_ratio:
            bad_goodput.append((scheme, ratio))
    if bad_recovery:
        failures.append(f"incomplete recovery: {bad_recovery}")
        print(f"FAIL: incomplete recovery for {bad_recovery}")
    else:
        print(
            f"ok: all {len(cur['rows'])} schemes recovered from every "
            "injected fault (corrupted checkpoint included)"
        )
    if bad_goodput:
        failures.append(f"goodput under storm below floor: {bad_goodput}")
        print(
            f"FAIL: goodput ratio below the {args.min_goodput_ratio} "
            f"floor: {bad_goodput}"
        )
    else:
        print(f"ok: every scheme kept >= {args.min_goodput_ratio} goodput under the storm")

    def _drill_cell(drill: dict, row: list, column: str):
        return row[drill["columns"].index(column)]

    cur_drill = cur["meta"]["policy_drill"]
    base_drill = base["meta"]["policy_drill"]
    by_policy = {
        _drill_cell(cur_drill, row, "policy"): row for row in cur_drill["rows"]
    }
    blind = [p for p in by_policy if p != "fault-aware"]
    if "fault-aware" not in by_policy or not blind:
        failures.append("policy drill lacks fault-aware vs fault-blind rows")
        print("FAIL: policy drill lacks fault-aware vs fault-blind rows")
    else:
        aware_goodput = _drill_cell(cur_drill, by_policy["fault-aware"],
                                    "storm_goodput")
        beaten = [
            p for p in blind
            if aware_goodput > _drill_cell(cur_drill, by_policy[p], "storm_goodput")
        ]
        if len(beaten) != len(blind):
            losers = sorted(set(blind) - set(beaten))
            failures.append(
                f"fault-aware does not beat {losers} on goodput under the storm"
            )
            print(
                f"FAIL: fault-aware goodput {aware_goodput} does not beat "
                f"{losers} under the gray storm"
            )
        else:
            print(
                f"ok: fault-aware goodput {aware_goodput} beats all "
                f"{len(blind)} fault-blind policies under the gray storm"
            )
        no_quarantine = [
            p for p, row in sorted(by_policy.items())
            if _drill_cell(cur_drill, row, "quarantines") < 1
        ]
        if no_quarantine:
            failures.append(f"flap train never quarantined: {no_quarantine}")
            print(f"FAIL: flap train never quarantined for {no_quarantine}")
        else:
            print("ok: the gray storm's flap train tripped the health ledger")

    drill_drifted = sorted(
        policy
        for policy in base_drill["digests"]
        if cur_drill["digests"].get(policy) != base_drill["digests"][policy]
    )
    if drill_drifted:
        failures.append(f"policy-drill digests drifted: {drill_drifted}")
        print(
            f"FAIL: policy-drill fault-log digests drifted for "
            f"{drill_drifted} — the gray-storm replay (gray-net windows, "
            "health timeline) changed semantically; update the committed "
            "baseline deliberately if intended"
        )
    else:
        print(
            f"ok: {len(base_drill['digests'])} per-policy gray-storm "
            "digests match baseline"
        )

    base_ratio = {
        _cell(base, row, "scheme"): _cell(base, row, "goodput_ratio")
        for row in base["rows"]
    }
    for row in cur["rows"]:
        scheme = _cell(cur, row, "scheme")
        ratio = _cell(cur, row, "goodput_ratio")
        baseline_ratio = base_ratio.get(scheme)
        if baseline_ratio and ratio is not None:
            floor = baseline_ratio * (1.0 - args.threshold)
            if ratio < floor:
                print(
                    f"note: {scheme} goodput ratio fell to {ratio:.3f} from "
                    f"baseline {baseline_ratio:.3f} — advisory only"
                )

    if failures:
        print(f"FAIL: fault drill gate: {failures}")
        return 1
    print("ok: fault drills within the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
