"""Hot-path engine: steps/sec of the vectorized training path vs the
pre-vectorization reference, on the Fig. 10 CNN workload.

The vectorized engine ((W, d) fusion buffer, matrix-native collectives,
batched MSTopK/exact-top-k compression, BLAS feature-major conv kernels)
is A/B-measured against the faithful pre-vectorization path
(``legacy_hotpath`` trainer + ``legacy_conv_kernels``), alternating
single steps so machine drift cancels; each scheme reports the best of
three alternating rounds (shared-host CPU states can inflate both paths
by a constant amount, which deflates the ratio — best-of-rounds recovers
the capability ratio).

Emits ``results/BENCH_perf_hotpath_run.json`` with per-scheme
steps/sec, speedup, and per-phase timings.  The *committed* baseline
lives at ``results/BENCH_perf_hotpath.json`` (same schema) and is never
written by a bench run — the CI ``perf-smoke`` job compares the fresh
``_run`` payload against it via ``check_perf_regression.py``; updating
the baseline is a deliberate ``cp`` after a representative run.
"""

import os

import pytest

from repro.api.registry import build_cluster, build_scheme, build_workload
from repro.perf.hotpath import compare_hotpaths, worker_batches
from repro.train.trainer import DistributedTrainer
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table

#: Fig. 10 CNN configuration (tencent 4x2, rho=0.05, local batch 16).
SCHEMES = ("dense", "topk", "gtopk", "mstopk")
WORLD = 8
LOCAL_BATCH = 16
DENSITY = 0.05
ROUNDS = 3
STEPS = 16


def _measure_scheme(workload, network, batches, scheme_name):
    """Best (by vectorized steps/sec) of ``ROUNDS`` alternating rounds."""

    def make(legacy_hotpath):
        scheme = build_scheme(scheme_name, network, density=DENSITY)
        return DistributedTrainer(
            workload.model, scheme, seed=7, legacy_hotpath=legacy_hotpath
        )

    best = None
    for _ in range(ROUNDS):
        comparison = compare_hotpaths(make, batches, steps=STEPS, warmup=2)
        if best is None or (
            comparison.vectorized.steps_per_sec > best.vectorized.steps_per_sec
        ):
            best = comparison
    return best


@pytest.fixture(scope="module")
def comparisons(save_result):
    workload = build_workload("cnn", num_samples=1024, rng=new_rng(7))
    network = build_cluster("tencent", WORLD // 2, gpus_per_node=2)
    batches = worker_batches(workload.x, workload.y, WORLD, LOCAL_BATCH)
    results = {
        name: _measure_scheme(workload, network, batches, name) for name in SCHEMES
    }

    columns = [
        "scheme",
        "legacy ms/step",
        "vectorized ms/step",
        "legacy steps/s",
        "vectorized steps/s",
        "speedup",
    ]
    rows = []
    for name, c in results.items():
        rows.append(
            [
                name,
                round(c.legacy.seconds_per_step * 1e3, 3),
                round(c.vectorized.seconds_per_step * 1e3, 3),
                round(c.legacy.steps_per_sec, 2),
                round(c.vectorized.steps_per_sec, 2),
                round(c.speedup, 2),
            ]
        )
    phase_lines = []
    for name, c in results.items():
        shares = ", ".join(
            f"{phase}={seconds * 1e3:.2f}ms"
            for phase, seconds in c.vectorized.phase_seconds.items()
        )
        phase_lines.append(f"{name}: {shares}")
    headline = results["mstopk"]
    text = (
        format_table(
            columns,
            rows,
            title="Hot-path engine: Fig. 10 CNN workload, vectorized vs legacy",
        )
        + "\n\nVectorized per-phase (per step):\n"
        + "\n".join(phase_lines)
    )
    save_result(
        "perf_hotpath_run",
        text,
        columns=columns,
        rows=rows,
        meta={
            "workload": "cnn",
            "world_size": WORLD,
            "local_batch": LOCAL_BATCH,
            "density": DENSITY,
            "steps": STEPS,
            "rounds": ROUNDS,
            # Headline numbers the CI perf gate tracks across commits.
            "steps_per_sec": round(headline.vectorized.steps_per_sec, 2),
            "legacy_steps_per_sec": round(headline.legacy.steps_per_sec, 2),
            "speedup_vs_legacy": round(headline.speedup, 3),
            # Per-scheme ratios so the gate catches a regression in any
            # aggregation path, not just the headline scheme.
            **{
                f"speedup_{name}": round(c.speedup, 3)
                for name, c in results.items()
            },
        },
    )
    return results


#: Default acceptance floor: the vectorized engine doubles steps/sec on
#: the paper's scheme.  Contended shared-core hosts (CI runners)
#: compress the ratio, so the CI perf-smoke job lowers this via
#: PERF_HOTPATH_MIN_SPEEDUP and delegates the regression decision to
#: check_perf_regression.py's baseline-relative soft gate.
MIN_SPEEDUP = float(os.environ.get("PERF_HOTPATH_MIN_SPEEDUP", "2.0"))


def test_bench_hotpath_speedup(benchmark, comparisons):
    """The vectorized engine is >= 2x the pre-vectorization steps/sec on
    the paper's scheme (HiTopKComm/MSTopK), and faster everywhere."""

    def check():
        assert comparisons["mstopk"].speedup >= MIN_SPEEDUP, comparisons["mstopk"].speedup
        for name, c in comparisons.items():
            assert c.speedup > 1.0, (name, c.speedup)
        return True

    assert benchmark(check)


def test_bench_hotpath_phases(benchmark, comparisons):
    """Per-phase instrumentation is recorded and accounts for the step."""

    def check():
        for c in comparisons.values():
            phases = c.vectorized.phase_seconds
            assert {"forward_backward", "fuse", "aggregate", "apply"} <= set(phases)
            # Mean phase totals stay in the ballpark of the median step
            # (loose bound: instrumentation must not invent time).
            assert sum(phases.values()) <= c.vectorized.seconds_per_step * 2.0
        return True

    assert benchmark(check)
