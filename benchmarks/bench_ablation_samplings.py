"""Ablation: MSTopK sampling count N vs selection quality and cost.

The paper picks N = 30 without an ablation; this bench fills that gap:
recall against exact top-k saturates around N ≈ 20-30 while the
projected GPU cost grows linearly, justifying the paper's setting.
"""

import numpy as np

from repro.cluster.gpu import mstopk_gpu_time
from repro.compression.exact_topk import topk_argpartition
from repro.compression.mstopk import mstopk_select
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table

SAMPLINGS = (5, 10, 15, 20, 30, 40, 60)
D = 200_000
K = 200


def sweep():
    rng = new_rng(0)
    x = rng.normal(size=D)
    exact = set(topk_argpartition(x, K).indices.tolist())
    rows = []
    for n in SAMPLINGS:
        sv = mstopk_select(x, K, n_samplings=n, rng=new_rng(1))
        recall = len(set(sv.indices.tolist()) & exact) / K
        rows.append((n, recall, mstopk_gpu_time(D, n_samplings=n)))
    return rows


def test_bench_ablation_samplings(benchmark, save_result):
    rows = benchmark(sweep)
    save_result(
        "ablation_mstopk_samplings",
        format_table(
            ["N samplings", "recall vs exact", "V100 projected (s)"],
            [[n, round(r, 4), round(t, 6)] for n, r, t in rows],
            title=f"Ablation: MSTopK sampling count, d = {D}, k = {K}",
        ),
    )
    by_n = {n: r for n, r, _ in rows}
    # Recall improves from very few samplings to the paper's 30 ...
    assert by_n[30] >= by_n[5]
    # ... and is strong at the paper's setting.
    assert by_n[30] > 0.8


def test_bench_ablation_samplings_wallclock_n30(benchmark):
    rng = new_rng(2)
    x = rng.normal(size=D)
    sv = benchmark(lambda: mstopk_select(x, K, n_samplings=30, rng=rng))
    assert sv.nnz == K
