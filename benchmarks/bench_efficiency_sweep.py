"""Efficiency-vs-cluster-size curves + the §1 motivation number."""

from repro.perf.efficiency import efficiency_sweep, intro_claim
from repro.utils.tables import format_table


def test_bench_intro_claim(benchmark, save_result):
    point = benchmark(intro_claim)
    save_result(
        "intro_claim",
        f"Paper §1: baseline 128-GPU speedup ~40x (31% efficiency)\n"
        f"Model:    {point.speedup:.1f}x speedup "
        f"({100 * point.efficiency:.1f}% efficiency), "
        f"throughput {point.throughput:,.0f} samples/s",
    )
    assert 30 < point.speedup < 60


def test_bench_efficiency_sweep(benchmark, save_result):
    points = benchmark(efficiency_sweep)
    by_nodes: dict[int, dict[str, float]] = {}
    for p in points:
        by_nodes.setdefault(p.num_nodes, {})[p.scheme] = p.efficiency
    schemes = ["Dense-SGD", "2DTAR-SGD", "MSTopK-SGD"]
    rows = [
        [nodes, nodes * 8] + [round(100 * by_nodes[nodes][s], 1) for s in schemes]
        for nodes in sorted(by_nodes)
    ]
    save_result(
        "efficiency_sweep",
        format_table(
            ["Nodes", "GPUs"] + [f"{s} SE%" for s in schemes],
            rows,
            title="Scaling efficiency vs cluster size, ResNet-50 224x224",
        ),
    )
    # The gap between baseline and the paper's system widens with scale.
    small = by_nodes[min(by_nodes)]
    large = by_nodes[max(by_nodes)]
    assert (large["MSTopK-SGD"] - large["Dense-SGD"]) > (
        small["MSTopK-SGD"] - small["Dense-SGD"]
    ) - 0.05
