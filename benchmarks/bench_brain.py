"""Autotuning brain: gray-storm scorecard + decision-replay determinism.

Replays the committed gray storm (:data:`repro.faults.drill
.GRAY_STORM_EVENTS`) through the multi-tenant scheduler under the
``fault-aware`` placement policy once per registered brain — ``static``
(placement-time health awareness only, the no-brain baseline),
``throughput`` (model-driven rescale), and ``health-migrate`` (health
repair + rescale) — and scores each on goodput under the storm, mean
JCT, finish-time fairness, and $/kilo-iteration.  The headline gate:
``health-migrate`` must strictly beat the static fault-aware baseline
on goodput, JCT *and* $/kiter, with fairness no worse — online
re-planning has to pay even when placement is already health-aware.

Determinism is the other gate: the whole drill matrix is produced twice
— serially and through a 2-worker process pool — and the two BENCH
payloads (rows, decision logs, digests) must match bit for bit.  Brain
decisions are pure functions of the observation and every timestamp is
virtual seconds, so this holds on any host at any ``--jobs`` width.

Emits ``results/BENCH_brain_run.json``; the *committed* baseline lives
at ``results/BENCH_brain.json`` and is never written by a bench run
(updating it is a deliberate ``cp`` after a representative run).  The
CI ``brain-smoke`` job gates fresh runs against it via
``check_brain_regression.py``.
"""

import json

import pytest

from repro.brain.drill import BRAIN_DRILL_BRAINS, brain_drills_payload
from repro.exec.sweeper import ParallelSweeper

SEED = 7
POOL_JOBS = 2


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def drills(save_result):
    serial = brain_drills_payload(seed=SEED)
    pooled = brain_drills_payload(
        seed=SEED, sweeper=ParallelSweeper("process", jobs=POOL_JOBS)
    )
    deterministic = _canonical(serial) == _canonical(pooled)

    rows = serial["rows"]
    columns = serial["columns"]
    save_result(
        "brain_run",
        serial["text"],
        columns=columns,
        rows=rows,
        meta={
            **serial["meta"],
            "deterministic": deterministic,
            "pool_jobs": POOL_JOBS,
        },
    )
    index = {column: i for i, column in enumerate(columns)}
    return {
        "rows": rows,
        "index": index,
        "deterministic": deterministic,
        "brains": serial["meta"]["brains"],
        "digests": serial["meta"]["digests"],
    }


def test_bench_brain_determinism(benchmark, drills):
    """Serial and process-pool brain matrices match bit for bit."""

    def check():
        assert drills["deterministic"], (
            "brain-drill payload diverged between the serial loop and a "
            f"{POOL_JOBS}-worker process pool"
        )
        return True

    assert benchmark(check)


def test_bench_brain_covers_every_builtin(benchmark, drills):
    """One gray-storm run per built-in brain, static baseline included."""

    def check():
        assert drills["brains"] == list(BRAIN_DRILL_BRAINS)
        assert len(drills["rows"]) == len(BRAIN_DRILL_BRAINS)
        idx = drills["index"]
        by_brain = {row[idx["brain"]]: row for row in drills["rows"]}
        # The static row is the true no-brain baseline: no decisions, no
        # decision log; every active brain pins a decision-log digest.
        static = by_brain["static"]
        assert static[idx["brain_digest"]] is None
        for count in ("migrations", "shrinks", "grows", "declined"):
            assert static[idx[count]] == 0, (count, static)
        for brain in ("throughput", "health-migrate"):
            assert by_brain[brain][idx["brain_digest"]], brain
        return True

    assert benchmark(check)


def test_bench_brain_beats_static(benchmark, drills):
    """Online re-planning must pay on top of fault-aware placement.

    ``health-migrate`` strictly beats the static baseline on goodput
    under the storm, mean JCT, and $/kiter, with finish-time fairness
    no worse — the PR's acceptance bar.
    """

    def check():
        idx = drills["index"]
        by_brain = {row[idx["brain"]]: row for row in drills["rows"]}
        static, brain = by_brain["static"], by_brain["health-migrate"]
        assert brain[idx["storm_goodput"]] > static[idx["storm_goodput"]], (
            "health-migrate goodput under the storm "
            f"({brain[idx['storm_goodput']]}) does not beat static "
            f"({static[idx['storm_goodput']]})"
        )
        assert brain[idx["mean_jct_s"]] < static[idx["mean_jct_s"]], (
            f"health-migrate mean JCT ({brain[idx['mean_jct_s']]}) does "
            f"not beat static ({static[idx['mean_jct_s']]})"
        )
        assert brain[idx["usd_per_kiter"]] < static[idx["usd_per_kiter"]], (
            f"health-migrate $/kiter ({brain[idx['usd_per_kiter']]}) does "
            f"not beat static ({static[idx['usd_per_kiter']]})"
        )
        assert brain[idx["fairness"]] >= static[idx["fairness"]], (
            f"health-migrate finish-time fairness ({brain[idx['fairness']]}) "
            f"is worse than static ({static[idx['fairness']]})"
        )
        return True

    assert benchmark(check)


def test_bench_brain_acts_on_the_storm(benchmark, drills):
    """The winning brain actually re-planned: decisions were applied."""

    def check():
        idx = drills["index"]
        by_brain = {row[idx["brain"]]: row for row in drills["rows"]}
        brain = by_brain["health-migrate"]
        applied = (
            brain[idx["migrations"]] + brain[idx["shrinks"]] + brain[idx["grows"]]
        )
        assert applied >= 1, (
            "health-migrate won without applying a single decision — the "
            "win is not attributable to the brain"
        )
        assert brain[idx["migrations"]] >= 1, (
            "the gray storm never triggered a health migration"
        )
        return True

    assert benchmark(check)


def test_bench_brain_deadlines_hold(benchmark, drills):
    """No brain may trade the deadline job away for throughput."""

    def check():
        idx = drills["index"]
        for row in drills["rows"]:
            assert row[idx["deadline_hit_rate"]] == 1.0, (
                f"{row[idx['brain']]}: bert-deadline missed its deadline "
                "under the gray storm"
            )
        return True

    assert benchmark(check)
