"""Table 4: DAWNBench-schedule throughput per input resolution."""

from repro.experiments import table4_resolutions
from repro.perf.dawnbench import PAPER_TABLE4
from repro.utils.tables import format_table


def test_bench_table4(benchmark, save_result):
    results = benchmark(table4_resolutions.run)
    assert [r.phase.resolution for r in results] == [96, 128, 224, 288]

    rows = []
    for r in results:
        paper_single, paper_sys, paper_se = PAPER_TABLE4[r.phase.resolution]
        rows.append(
            [
                r.phase.epochs,
                f"{r.phase.resolution}x{r.phase.resolution}",
                r.phase.local_batch,
                round(r.single_gpu_throughput),
                round(r.system_throughput),
                round(paper_sys),
                round(100 * r.scaling_efficiency, 1),
                paper_se,
            ]
        )
    save_result(
        "table4_resolutions",
        format_table(
            ["Epochs", "Input", "BS", "1-GPU", "128-GPU", "paper", "SE %", "paper"],
            rows,
            title="Table 4: throughput per input resolution (DAWNBench schedule)",
        ),
    )

    for r in results:
        _, paper_sys, _ = PAPER_TABLE4[r.phase.resolution]
        assert abs(r.system_throughput - paper_sys) / paper_sys < 0.25
