"""Fig. 1: iteration time breakdown of the existing training schemes."""

from repro.experiments import fig1_breakdown
from repro.utils.tables import format_table


def test_bench_fig1_run(benchmark, save_result):
    """Full Fig. 1 harness (4 bars x 5 components)."""
    bars = benchmark(fig1_breakdown.run)
    assert len(bars) == 4

    rows = [
        [f"{b.scheme} {b.resolution}x{b.resolution}"]
        + [round(b.components[c], 4) for c in fig1_breakdown.COMPONENTS]
        + [round(b.total, 4)]
        for b in bars
    ]
    save_result(
        "fig1_breakdown",
        format_table(
            ["Scheme", "I/O", "FF&BP", "Compression", "Communication", "LARS", "Total"],
            rows,
            title="Fig. 1: iteration time breakdown (s), ResNet-50, 128 GPUs",
        ),
    )

    # The paper's headline observation must hold in the saved artefact.
    by_key = {(b.scheme, b.resolution): b for b in bars}
    topk224 = by_key[("TopK-SGD", 224)]
    assert topk224.components["compression"] > topk224.components["ff_bp"]
