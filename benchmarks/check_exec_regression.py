"""CI gate on the parallel-vs-serial exec scaling ratio.

Compares a freshly produced ``BENCH_exec_scaling_run.json`` against the
committed ``results/BENCH_exec_scaling.json`` baseline and enforces the
multicore acceptance bar:

* **parity** (hard, every host) — ``meta.parity_ok`` must be true: the
  parallel sweep produced bit-identical results to the serial loop;
* **speedup** (hard where the hardware exists) — on a host with >=
  ``--gate-cores`` usable cores (CI runners), the ``jobs=4``
  parallel-vs-serial sweep ratio must clear ``--min-speedup``
  (default 1.5x).  Both sides of the ratio are measured on the *same*
  machine in the same run, so raw host speed cancels — this gates the
  engine, not the runner;
* **baseline drift** (hard only between comparable hosts) — when the
  committed baseline was also measured on a >= gate-cores host, the
  fresh ratio may not drop more than ``--threshold`` below it.  A
  baseline from a smaller machine (e.g. a 1-core dev container) only
  yields an advisory note.

Usage (as the CI ``exec-smoke`` job does)::

    python -m pytest benchmarks/bench_exec_scaling.py -q --benchmark-disable
    python benchmarks/check_exec_regression.py \
        --baseline results/BENCH_exec_scaling.json \
        --current results/BENCH_exec_scaling_run.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RATIO_KEY = "sweep_speedup_jobs4"


def load_meta(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    meta = payload.get("meta", {})
    for key in ("cpu_count", "parity_ok", RATIO_KEY):
        if key not in meta:
            raise SystemExit(f"{path}: bench payload meta lacks {key!r}")
    return meta


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_exec_scaling.json")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly measured BENCH_exec_scaling_run.json")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="jobs=4 sweep ratio floor on capable hosts")
    parser.add_argument("--gate-cores", type=int, default=4,
                        help="usable cores needed before the floor applies")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max fractional ratio drop vs a comparable baseline")
    args = parser.parse_args(argv)

    base = load_meta(args.baseline)
    cur = load_meta(args.current)
    cores = int(cur["cpu_count"])
    ratio = float(cur[RATIO_KEY])
    failures = []

    if not cur["parity_ok"]:
        failures.append("parity_ok is false: parallel sweep diverged from serial")
    else:
        print("ok: parallel sweep bit-identical to serial")

    if cores >= args.gate_cores:
        status = "ok" if ratio >= args.min_speedup else "FAIL"
        print(
            f"{status}: jobs=4 sweep speedup {ratio:.2f}x on {cores} cores "
            f"(floor {args.min_speedup:.2f}x)"
        )
        if status == "FAIL":
            failures.append(RATIO_KEY)
    else:
        print(
            f"note: only {cores} usable core(s) (< {args.gate_cores}); "
            f"speedup floor not applicable, measured {ratio:.2f}x"
        )

    base_cores = int(base["cpu_count"])
    base_ratio = float(base[RATIO_KEY])
    if base_cores >= args.gate_cores and cores >= args.gate_cores:
        floor = base_ratio * (1.0 - args.threshold)
        status = "ok" if ratio >= floor else "FAIL"
        print(
            f"{status}: baseline {base_ratio:.2f}x ({base_cores} cores) -> "
            f"current {ratio:.2f}x (floor {floor:.2f}x)"
        )
        if status == "FAIL":
            failures.append("baseline-relative drift")
    else:
        print(
            f"note: baseline measured on {base_cores} core(s) "
            f"({base_ratio:.2f}x), current on {cores}; drift check advisory only"
        )

    if failures:
        print(f"FAIL: exec scaling gate: {failures}")
        return 1
    print("ok: exec scaling within the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
