"""Ablation: cluster-size scaling of the aggregation schemes.

Sweeps node count m at fixed n = 8 GPUs/node: the flat sparse scheme's
per-NIC volume grows with m·n while HiTopKComm's grows only with m·ρ —
the gap that makes the hierarchy matter more the bigger the cluster.
"""

from repro.cluster.cloud_presets import make_cluster
from repro.comm.dense import Torus2DAllReduce, TreeAllReduce
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.utils.tables import format_table

NODE_COUNTS = (2, 4, 8, 16, 32)
D = 25_000_000
RHO = 0.01


def sweep():
    rows = []
    for m in NODE_COUNTS:
        net = make_cluster(m, "tencent")
        rows.append(
            (
                m,
                NaiveAllGather(net, density=RHO, value_bytes=2).time_model(D).total,
                TreeAllReduce(net, wire_bytes=2).time_model(D).total,
                Torus2DAllReduce(net, wire_bytes=2).time_model(D).total,
                HiTopKComm(
                    net, density=RHO, value_bytes=2, dense_wire_bytes=2
                ).time_model(D).total,
            )
        )
    return rows


def test_bench_ablation_scaling(benchmark, save_result):
    rows = benchmark(sweep)
    save_result(
        "ablation_cluster_scaling",
        format_table(
            ["Nodes", "NaiveAG", "TreeAR", "2DTAR", "HiTopKComm"],
            [[m] + [round(t, 4) for t in ts] for m, *ts in rows],
            title=f"Ablation: node-count scaling (n=8 GPUs/node), d={D / 1e6:g}M, rho={RHO}",
        ),
    )
    naive = {m: t for m, t, _, _, _ in rows}
    hitopk = {m: t for m, _, _, _, t in rows}
    # NaiveAG degrades ~linearly in total GPU count (P = 8m); HiTopKComm
    # only in node count scaled by rho, so it grows much more slowly.
    assert naive[32] / naive[2] > 8
    assert hitopk[32] / hitopk[2] < naive[32] / naive[2] / 2
    # The advantage widens with scale.
    assert naive[32] / hitopk[32] > naive[2] / hitopk[2]
