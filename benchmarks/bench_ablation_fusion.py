"""Ablation: tensor-fusion buffer size in the wait-free backprop pipeline.

The paper's baseline stack (Horovod) fuses gradients into 64 MiB
buffers; this sweep shows the latency/overlap trade-off: tiny buffers
pay per-collective latency on the 25 GbE network, huge buffers delay
the first collective until backprop is nearly done.
"""

from repro.cluster.cloud_presets import paper_testbed
from repro.comm.dense import Torus2DAllReduce
from repro.models.profiles import resnet50_profile
from repro.perf.timeline import simulate_backward_overlap
from repro.utils.tables import format_table

THRESHOLDS = (256 << 10, 2 << 20, 16 << 20, 64 << 20, 512 << 20)


def sweep():
    profile = resnet50_profile()
    scheme = Torus2DAllReduce(paper_testbed(), wire_bytes=2)

    def comm_fn(nbytes: int) -> float:
        return scheme.time_model(max(1, nbytes // 2)).total

    ffbp = 256 / 1150
    rows = []
    for threshold in THRESHOLDS:
        result = simulate_backward_overlap(
            profile.layer_sizes,
            backward_time=0.6 * ffbp,
            comm_time_fn=comm_fn,
            fusion_threshold=threshold,
            bytes_per_element=2,
        )
        rows.append(
            (
                threshold,
                len(result.buckets),
                result.busy_comm,
                result.visible_comm,
                result.overlap_ratio,
            )
        )
    return rows


def test_bench_ablation_fusion(benchmark, save_result):
    rows = benchmark(sweep)
    save_result(
        "ablation_fusion_buffer",
        format_table(
            ["Buffer (bytes)", "buckets", "busy comm (s)", "visible (s)", "overlap"],
            [
                [f"{t >> 20 or t >> 10}{'MiB' if t >= 1 << 20 else 'KiB'}",
                 n, round(b, 4), round(v, 4), round(o, 3)]
                for t, n, b, v, o in rows
            ],
            title="Ablation: fusion-buffer size, ResNet-50 backward on 16x8 @ 25GbE",
        ),
    )
    by_threshold = {t: (b, v) for t, n, b, v, _ in rows}
    # Tiny buffers pay more total channel time (latency per collective).
    assert by_threshold[256 << 10][0] > by_threshold[64 << 20][0]
    # A giant single buffer exposes all communication after backprop.
    assert by_threshold[512 << 20][1] >= by_threshold[64 << 20][1]
