"""Fig. 9: DataCache vs naive input pipeline."""

from repro.data.cache import DataCache
from repro.data.dataset import SyntheticImageDataset
from repro.data.loader import CachedDataLoader
from repro.experiments import fig9_datacache
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table


def test_bench_fig9_model_bars(benchmark, save_result):
    bars = benchmark(fig9_datacache.run_model)
    naive, cached = bars
    save_result(
        "fig9_datacache",
        format_table(
            ["Scheme", "I/O (s)", "Others (s)", "Total (s)"],
            [
                [b.label, round(b.io_seconds, 4), round(b.other_seconds, 4), round(b.total, 4)]
                for b in bars
            ],
            title="Fig. 9: iteration time w/o and w/ DataCache (1 V100, 96x96)",
        )
        + (
            f"\nI/O reduction: {naive.io_seconds / cached.io_seconds:.1f}x, "
            f"end-to-end: {naive.total / cached.total:.2f}x"
        ),
    )
    assert naive.io_seconds / cached.io_seconds > 10


def test_bench_fig9_functional_epoch_cold(benchmark):
    """First epoch: NFS reads + decode through the real cache."""

    def cold_epoch():
        dataset = SyntheticImageDataset(64, resolution=24, seed=0)
        cache = DataCache(dataset)
        loader = CachedDataLoader(cache, 16, pipelined=False, seed=0)
        return loader.run_epoch(0, rng=new_rng(1))

    timings = benchmark(cold_epoch)
    assert timings.io_seconds > 0


def test_bench_fig9_functional_epoch_warm(benchmark):
    """Second epoch: memory-cache hits only."""
    dataset = SyntheticImageDataset(64, resolution=24, seed=0)
    cache = DataCache(dataset)
    loader = CachedDataLoader(cache, 16, pipelined=False, seed=0)
    loader.run_epoch(0, rng=new_rng(1))  # warm it

    timings = benchmark(lambda: loader.run_epoch(1, rng=new_rng(2)))
    assert timings.level_counts["memory"] > 0
