"""Ablation: straggler sensitivity of flat vs hierarchical aggregation.

Public-cloud VMs jitter; synchronous SGD pays the slowest participant
every iteration.  This sweep quantifies how the Fig. 7 schemes degrade
under log-normal per-node slowdowns — an operational concern the paper's
steady-state numbers do not cover.
"""

from repro.cluster.cloud_presets import paper_testbed
from repro.cluster.variability import expected_slowdown
from repro.comm.hitopkcomm import HiTopKComm
from repro.utils.tables import format_table

SIGMAS = (0.0, 0.05, 0.1, 0.2, 0.4)
D = 25_000_000


def sweep():
    net = paper_testbed()
    breakdown = HiTopKComm(net, density=0.001).time_model(D)
    inter_fraction = breakdown.fraction("inter_allgather")
    rows = []
    for sigma in SIGMAS:
        flat, hier = expected_slowdown(
            net, inter_fraction, sigma=sigma, trials=300, seed=1
        )
        rows.append((sigma, flat, hier))
    return rows, inter_fraction


def test_bench_ablation_stragglers(benchmark, save_result):
    rows, inter_fraction = benchmark(sweep)
    columns = ["sigma", "flat_mean_stretch", "hierarchical_mean_stretch"]
    table_rows = [[float(s), round(float(f), 3), round(float(h), 3)] for s, f, h in rows]
    save_result(
        "ablation_stragglers",
        format_table(
            ["sigma", "flat mean stretch", "hierarchical mean stretch"],
            table_rows,
            title=(
                "Ablation: synchronous-step stretch under per-node jitter "
                f"(16 nodes; HiTopKComm inter fraction = {inter_fraction:.2f})"
            ),
        ),
        columns=columns,
        rows=table_rows,
        meta={"inter_fraction": round(float(inter_fraction), 4), "nodes": 16},
    )
    # No jitter -> no stretch; stretch grows with sigma for both.
    assert rows[0][1] == 1.0 and rows[0][2] == 1.0
    flats = [f for _, f, _ in rows]
    assert flats == sorted(flats)
