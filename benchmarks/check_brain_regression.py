"""CI gate on brain-drill determinism and the brain-vs-static win.

Compares a freshly produced ``BENCH_brain_run.json`` against the
committed ``results/BENCH_brain.json`` baseline and enforces the brain
subsystem's acceptance bar:

* **determinism** (hard, every host) — ``meta.deterministic`` must be
  true: the serial loop and a process pool produced bit-identical drill
  payloads.  Brain decisions are pure functions of the observation and
  all timestamps are virtual seconds, so this never depends on the
  machine;
* **digest pins** (hard, every host) — the per-brain decision-log and
  fault-log digests must equal the committed baseline's.  A drift means
  the brain decided differently (or the storm replayed differently),
  which must be a deliberate baseline update, never an accident;
* **brain beats static** (hard, every host) — ``health-migrate`` must
  strictly beat the ``static`` fault-aware baseline on goodput under
  the storm, mean JCT, and $/kilo-iteration, with finish-time fairness
  no worse.  Pure simulation, so the comparison is host-independent;
* **decisions applied** (hard) — the winning brain must have applied at
  least one migration: a win with an empty decision log is not
  attributable to the brain;
* **goodput drift** (advisory) — a per-brain goodput-ratio drop against
  the committed baseline beyond ``--threshold`` only prints a note.

Usage (as the CI ``brain-smoke`` job does)::

    python -m pytest benchmarks/bench_brain.py -q --benchmark-disable
    python benchmarks/check_brain_regression.py \
        --baseline results/BENCH_brain.json \
        --current results/BENCH_brain_run.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_payload(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    meta = payload.get("meta", {})
    for key in ("deterministic", "brains", "digests"):
        if key not in meta:
            raise SystemExit(f"{path}: bench payload meta lacks {key!r}")
    for key in ("columns", "rows"):
        if key not in payload:
            raise SystemExit(f"{path}: bench payload lacks {key!r}")
    return payload


def _cell(payload: dict, row: list, column: str):
    return row[payload["columns"].index(column)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed BENCH_brain.json")
    parser.add_argument("--current", type=pathlib.Path, required=True,
                        help="freshly measured BENCH_brain_run.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional goodput-ratio drop vs the committed "
                             "baseline that triggers the advisory note")
    args = parser.parse_args(argv)

    base = load_payload(args.baseline)
    cur = load_payload(args.current)
    failures = []

    if not cur["meta"]["deterministic"]:
        failures.append("deterministic is false: serial vs pool diverged")
        print("FAIL: serial and process-pool brain payloads diverged")
    else:
        print("ok: serial and process-pool brain payloads bit-identical")

    base_digests = base["meta"]["digests"]
    cur_digests = cur["meta"]["digests"]
    missing = sorted(set(base_digests) - set(cur_digests))
    drifted = sorted(
        brain
        for brain in base_digests
        if brain in cur_digests and cur_digests[brain] != base_digests[brain]
    )
    if missing:
        failures.append(f"brains missing from the drill matrix: {missing}")
        print(f"FAIL: brains missing from the drill matrix: {missing}")
    if drifted:
        failures.append(f"decision/fault-log digests drifted: {drifted}")
        print(
            f"FAIL: digests drifted for {drifted} — the brain decided "
            "differently (or the storm replayed differently); update the "
            "committed baseline deliberately if intended"
        )
    if not missing and not drifted:
        print(f"ok: {len(base_digests)} per-brain digest pairs match baseline")

    by_brain = {_cell(cur, row, "brain"): row for row in cur["rows"]}
    if "static" not in by_brain or "health-migrate" not in by_brain:
        failures.append("drill matrix lacks the static/health-migrate pair")
        print("FAIL: drill matrix lacks the static/health-migrate pair")
    else:
        static, brain = by_brain["static"], by_brain["health-migrate"]
        losses = []
        if not _cell(cur, brain, "storm_goodput") > _cell(cur, static, "storm_goodput"):
            losses.append("goodput-under-storm")
        if not _cell(cur, brain, "mean_jct_s") < _cell(cur, static, "mean_jct_s"):
            losses.append("mean JCT")
        if not _cell(cur, brain, "usd_per_kiter") < _cell(cur, static, "usd_per_kiter"):
            losses.append("$/kiter")
        if not _cell(cur, brain, "fairness") >= _cell(cur, static, "fairness"):
            losses.append("finish-time fairness")
        if losses:
            failures.append(f"health-migrate does not beat static on: {losses}")
            print(
                f"FAIL: health-migrate does not beat the static fault-aware "
                f"baseline on {losses}"
            )
        else:
            print(
                "ok: health-migrate beats static on goodput "
                f"({_cell(cur, brain, 'storm_goodput')} > "
                f"{_cell(cur, static, 'storm_goodput')}), JCT, and $/kiter "
                "with fairness no worse"
            )
        applied = (
            _cell(cur, brain, "migrations")
            + _cell(cur, brain, "shrinks")
            + _cell(cur, brain, "grows")
        )
        if applied < 1 or _cell(cur, brain, "migrations") < 1:
            failures.append("health-migrate won without applying a migration")
            print(
                "FAIL: health-migrate applied no migration — the win is not "
                "attributable to the brain"
            )
        else:
            print(
                f"ok: health-migrate applied {applied} decisions "
                f"({_cell(cur, brain, 'migrations')} migrations)"
            )

    base_ratio = {
        _cell(base, row, "brain"): _cell(base, row, "goodput_ratio")
        for row in base["rows"]
    }
    for row in cur["rows"]:
        brain = _cell(cur, row, "brain")
        ratio = _cell(cur, row, "goodput_ratio")
        baseline_ratio = base_ratio.get(brain)
        if baseline_ratio and ratio is not None:
            floor = baseline_ratio * (1.0 - args.threshold)
            if ratio < floor:
                print(
                    f"note: {brain} goodput ratio fell to {ratio:.3f} from "
                    f"baseline {baseline_ratio:.3f} — advisory only"
                )

    if failures:
        print(f"FAIL: brain drill gate: {failures}")
        return 1
    print("ok: brain drills within the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
