"""Table 3: 128-GPU throughput and scaling efficiency."""

from repro.experiments import table3_throughput
from repro.perf.throughput import PAPER_TABLE3
from repro.utils.tables import format_table


def test_bench_table3(benchmark, save_result):
    rows = benchmark(table3_throughput.run)
    assert len(rows) == 12

    table = []
    for r in rows:
        paper_t, paper_se = PAPER_TABLE3[r.workload][r.scheme]
        table.append(
            [
                r.workload,
                r.scheme,
                round(r.throughput),
                round(paper_t),
                round(100 * r.scaling_efficiency, 1),
                paper_se,
            ]
        )
    save_result(
        "table3_throughput",
        format_table(
            ["Model", "Scheme", "Throughput", "paper", "SE %", "paper"],
            table,
            title="Table 3: throughput (samples/s) and scaling efficiency, 128 V100s",
        ),
    )

    by = {(r.workload, r.scheme): r.throughput for r in rows}
    # The headline result: 25-40% faster than 2DTAR on three workloads.
    for workload in ("ResNet-50 (96*96)", "VGG-19", "Transformer"):
        assert by[(workload, "MSTopK-SGD")] > 1.15 * by[(workload, "2DTAR-SGD")]
