"""Trace replay at production scale: throughput + determinism gates.

Replays seeded synthetic day-long traces (the ``repro.sched.traces``
generator, so no external download) through the closed-form scheduler
fast path at two scales:

* **1k jobs** — run *twice*; the two distribution payloads must match
  bit for bit.  The fast path is pure simulation (no wall-clock in any
  row), so replay determinism is asserted on every host.
* **10k jobs** — the headline: one day of a busy cluster through
  ``MultiTenantScheduler.run`` in one process.  Jobs/sec goes in bench
  meta; the wall-clock acceptance bar (``TRACE_MAX_10K_SECONDS``,
  default 60 s) and the throughput floor (``TRACE_MIN_JOBS_PER_SEC``,
  default 100) arm everywhere — a laptop clears both with ~3x headroom.

Rows are per-policy *distributions* (JCT / queue wait / contention
slowdown / cost; nearest-rank percentiles) prefixed with the scale, via
:func:`repro.sched.traces.distribution_rows`.

Emits ``results/BENCH_trace_replay_run.json``; the *committed* baseline
lives at ``results/BENCH_trace_replay.json`` and is never written by a
bench run (updating it is a deliberate ``cp`` after a representative
run).  The CI ``trace-smoke`` job gates fresh runs against it via
``check_trace_regression.py``.
"""

import os
import time

import pytest

from repro.exec.backend import cpu_count
from repro.sched.scheduler import MultiTenantScheduler
from repro.sched.traces import (
    DISTRIBUTION_COLUMNS,
    SyntheticTraceConfig,
    distribution_rows,
    generate_trace,
    trace_to_specs,
)
from repro.utils.tables import format_table

#: Scales measured; the big one is the acceptance headline.
SCALES = (1_000, 10_000)
SEED = 2021
NUM_NODES = 16
GPUS_PER_NODE = 8
POLICY = "bin-pack"

#: Wall-clock ceiling for the 10k-job day (the ISSUE acceptance bar).
MAX_10K_SECONDS = float(os.environ.get("TRACE_MAX_10K_SECONDS", "60"))
#: Absolute jobs/sec floor at 10k scale (modest: gates bit-rot, not hosts).
MIN_JOBS_PER_SEC = float(os.environ.get("TRACE_MIN_JOBS_PER_SEC", "100"))


def _replay(num_jobs: int) -> tuple[list[list], float, dict]:
    """(distribution rows, wall seconds, report summary) for one scale."""
    trace = generate_trace(SyntheticTraceConfig(num_jobs=num_jobs, seed=SEED))
    specs = trace_to_specs(trace)
    scheduler = MultiTenantScheduler(
        num_nodes=NUM_NODES,
        gpus_per_node=GPUS_PER_NODE,
        policy=POLICY,
        seed=SEED,
        name=f"trace-{num_jobs}",
    )
    start = time.perf_counter()
    report = scheduler.run(specs)
    seconds = time.perf_counter() - start
    return distribution_rows([report]), seconds, report.summary()


@pytest.fixture(scope="module")
def replay(save_result):
    rows: list[list] = []
    seconds: dict[int, float] = {}
    summaries: dict[int, dict] = {}
    determinism_ok = True
    for num_jobs in SCALES:
        scale_rows, scale_seconds, summary = _replay(num_jobs)
        if num_jobs == min(SCALES):
            rerun_rows, _, rerun_summary = _replay(num_jobs)
            if rerun_rows != scale_rows or rerun_summary != summary:
                determinism_ok = False
        rows.extend([num_jobs, *row] for row in scale_rows)
        seconds[num_jobs] = scale_seconds
        summaries[num_jobs] = summary

    columns = ["jobs", *DISTRIBUTION_COLUMNS]
    cores = cpu_count()
    text = format_table(
        columns,
        rows,
        title=(
            f"Trace replay: synthetic day (seed {SEED}) on {NUM_NODES}x"
            f"{GPUS_PER_NODE} tencent, policy {POLICY}"
        ),
    )
    save_result(
        "trace_replay_run",
        text,
        columns=columns,
        rows=rows,
        meta={
            "cpu_count": cores,
            "seed": SEED,
            "instance": "tencent",
            "num_nodes": NUM_NODES,
            "gpus_per_node": GPUS_PER_NODE,
            "policy": POLICY,
            "determinism_ok": determinism_ok,
            **{
                f"seconds_{n // 1000}k": round(seconds[n], 3) for n in SCALES
            },
            **{
                f"jobs_per_sec_{n // 1000}k": round(n / seconds[n], 1)
                for n in SCALES
            },
            "summaries": {str(n): summaries[n] for n in SCALES},
        },
    )
    return {
        "rows": rows,
        "seconds": seconds,
        "summaries": summaries,
        "determinism_ok": determinism_ok,
        "cores": cores,
    }


def test_bench_replay_determinism(benchmark, replay):
    """Same trace, same seed => bit-identical distributions, any host."""

    def check():
        assert replay["determinism_ok"], "1k replay diverged between runs"
        return True

    assert benchmark(check)


def test_bench_replay_completes(benchmark, replay):
    """Every scale schedules the full queue and bills real dollars."""

    def check():
        for num_jobs in SCALES:
            summary = replay["summaries"][num_jobs]
            assert summary["jobs_done"] >= 0.95 * num_jobs, summary
            assert summary["total_cost_usd"] > 0
        return True

    assert benchmark(check)


def test_bench_replay_throughput(benchmark, replay):
    """The 10k-job day clears the wall-clock and jobs/sec floors."""

    def check():
        seconds = replay["seconds"][10_000]
        jobs_per_sec = 10_000 / seconds
        assert seconds <= MAX_10K_SECONDS, (
            f"10k-job replay took {seconds:.1f}s > {MAX_10K_SECONDS:.0f}s "
            f"ceiling on a {replay['cores']}-core host"
        )
        assert jobs_per_sec >= MIN_JOBS_PER_SEC, (
            f"10k-job replay ran {jobs_per_sec:.0f} jobs/s < "
            f"{MIN_JOBS_PER_SEC:.0f} floor"
        )
        return True

    assert benchmark(check)
