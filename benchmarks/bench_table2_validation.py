"""Table 2: final validation metrics under the three algorithms."""

import pytest

from repro.experiments import table2_validation
from repro.utils.tables import format_table


@pytest.fixture(scope="module")
def rows(save_result):
    rows = table2_validation.run(epochs=12, num_samples=1024, seed=7)
    table = []
    for r in rows:
        paper = table2_validation.PAPER_TABLE2[r.model]
        table.append(
            [
                f"{r.model} ({r.workload})",
                round(r.dense, 4), paper["dense"],
                round(r.topk, 4), paper["topk"],
                round(r.mstopk, 4), paper["mstopk"],
            ]
        )
    save_result(
        "table2_validation",
        format_table(
            ["Model", "Dense", "paper", "TopK", "paper", "MSTopK", "paper"],
            table,
            title="Table 2: final validation metric (ours: analogue scale)",
        ),
    )
    return rows


def test_bench_table2_sparse_trails_dense(benchmark, rows):
    def check():
        for r in rows:
            assert r.topk <= r.dense + 0.08, r.model
            assert r.mstopk <= r.dense + 0.08, r.model
        return len(rows)

    assert benchmark(check) == 3


def test_bench_table2_one_transformer_step(benchmark):
    """Wall-clock of a single distributed Transformer training step."""
    from repro.api import build_cluster, build_scheme
    from repro.models.nn.transformer import TinyTransformer, make_copy_task
    from repro.train.trainer import DistributedTrainer
    from repro.utils.seeding import new_rng

    rng = new_rng(0)
    x, y = make_copy_task(rng, num_samples=64, vocab_size=16, seq_len=8)
    model = TinyTransformer(vocab_size=16, d_model=16, d_ff=32, max_len=8)
    net = build_cluster("tencent", 2, gpus_per_node=2)
    trainer = DistributedTrainer(model, build_scheme("mstopk", net, density=0.1), seed=0)
    batches = [(x[w * 8 : (w + 1) * 8], y[w * 8 : (w + 1) * 8]) for w in range(4)]
    loss, _ = benchmark(trainer.train_step, batches)
    assert loss > 0
