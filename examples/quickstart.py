"""Quickstart: one config, one ``run()`` — the whole system in 5 minutes.

The public API is the :mod:`repro.api` facade: a declarative
:class:`~repro.api.RunConfig` names a registered cluster preset (paper
Table 1), a communication scheme (HiTopKComm, Algorithm 2, selecting
gradients with MSTopK, Algorithm 1) and a model workload; ``run()``
composes them and returns a structured report.  We train the same model
under the dense baseline and the paper's sparse hierarchy and compare.

Run:  python examples/quickstart.py
"""

from repro.api import RunConfig, available, run


def main() -> None:
    # Discovery: every component name comes from the registries —
    # exactly what `python -m repro list` prints.
    names = available()
    print("registered components:")
    for group, entries in sorted(names.items()):
        print(f"  {group:<12s} {', '.join(entries)}")

    # A declarative run: 4 Tencent 8xV100 instances (25 GbE between
    # nodes, NVLink inside), MSTopK selection inside HiTopKComm at 5%
    # density, an MLP workload.  The same dict could live in a JSON file
    # and run via `python -m repro run --config cfg.json`.
    base = {
        "name": "quickstart",
        "seed": 7,
        "cluster": {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 2},
        "comm": {"scheme": "mstopk", "density": 0.05},
        "train": {"model": "mlp", "epochs": 8, "num_samples": 1024},
    }
    sparse_cfg = RunConfig.from_dict(base)
    dense_cfg = RunConfig.from_dict({**base, "comm": {"scheme": "dense"}})

    print("\ntraining the same model under both aggregation schemes "
          "(8 virtual workers):\n")
    reports = {}
    for cfg in (dense_cfg, sparse_cfg):
        report = run(cfg)
        reports[report.scheme] = report
        print(f"  {report.scheme:<8s} final accuracy "
              f"{report.summary['final_metric']:.4f}, virtual comm "
              f"{report.summary['comm_seconds'] * 1000:8.2f} ms "
              f"over {report.summary['iterations']} iterations")

    dense, sparse = reports["dense"], reports["mstopk"]
    print("\nerror feedback kept the accuracy gap small "
          f"({dense.summary['final_metric'] - sparse.summary['final_metric']:+.4f}).")

    # At real gradient sizes the communication gap is what the paper is
    # about: rebuild both schemes from the registry and compare their
    # analytic time models at ResNet-50 scale.
    from repro.api import build_cluster, build_scheme

    net = build_cluster("tencent", 4, gpus_per_node=2)
    d_resnet = 25_000_000
    t_dense = build_scheme("dense", net).time_model(d_resnet).total
    t_sparse = build_scheme("mstopk", net, density=0.01).time_model(d_resnet).total
    print(f"at ResNet-50 scale (d = 25M): dense TreeAR {t_dense * 1000:.1f} ms vs "
          f"HiTopKComm (MSTopK inside, rho=1%) {t_sparse * 1000:.1f} ms "
          f"({t_dense / t_sparse:.1f}x faster per iteration)")

    # The report also serializes to the BENCH_*.json schema used by the
    # benchmark suite — same payload `python -m repro run --json` prints.
    payload = sparse.bench_payload()
    print(f"\nmachine-readable payload: bench={payload['bench']!r}, "
          f"columns={payload['columns']}")


if __name__ == "__main__":
    main()
