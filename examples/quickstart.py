"""Quickstart: sparsified hierarchical gradient aggregation in 5 minutes.

Builds a virtual public-cloud cluster (paper Table 1's Tencent
instances), selects gradients with MSTopK (Algorithm 1), aggregates them
with HiTopKComm (Algorithm 2), and compares cost + fidelity against the
dense 2D-torus all-reduce baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import make_cluster
from repro.comm import HiTopKComm, Torus2DAllReduce
from repro.compression import ExactTopK, MSTopK
from repro.utils.seeding import new_rng


def main() -> None:
    # A 4-node cluster of 8-GPU Tencent instances (25 GbE between nodes,
    # NVLink inside) — the environment the paper targets.
    net = make_cluster(4, "tencent", gpus_per_node=8)
    print(f"cluster: {net}\n")

    rng = new_rng(0)
    d = 100_000

    # --- 1. The MSTopK operator (Algorithm 1) -------------------------------
    x = rng.normal(size=d)
    k = d // 1000  # the paper's k = 0.001 d
    approx = MSTopK(n_samplings=30).select(x, k, rng=rng)
    exact = ExactTopK().select(x, k)
    recall = len(set(approx.indices) & set(exact.indices)) / k
    print(f"MSTopK selected {approx.nnz} of {d} elements "
          f"(recall vs exact top-k: {recall:.0%})\n")

    # --- 2. Hierarchical aggregation (Algorithm 2) ---------------------------
    worker_grads = [rng.normal(size=d) for _ in range(net.world_size)]
    scheme = HiTopKComm(net, density=0.01)
    result = scheme.aggregate(worker_grads, rng=rng)
    print("HiTopKComm virtual-time breakdown (Eqs. 7-10):")
    print(result.breakdown.format())

    # --- 3. Against the dense baseline -------------------------------------------
    dense = Torus2DAllReduce(net)
    dense_result = dense.aggregate(worker_grads)
    exact_sum = np.sum(worker_grads, axis=0)
    cosine = float(
        result.outputs[0] @ exact_sum
        / (np.linalg.norm(result.outputs[0]) * np.linalg.norm(exact_sum))
    )
    print(f"\n2DTAR (dense) time:      {dense_result.time * 1000:8.3f} ms")
    print(f"HiTopKComm (rho=1%) time: {result.time * 1000:8.3f} ms "
          f"({dense_result.time / result.time:.1f}x faster)")
    print(f"sparsified/dense gradient cosine similarity: {cosine:.3f}")
    print("(error feedback re-injects the dropped mass on later iterations)")

    # --- 4. At real gradient sizes the gap is much larger -----------------------
    d_resnet = 25_000_000
    t_dense = dense.time_model(d_resnet).total
    t_sparse = scheme.time_model(d_resnet).total
    print(f"\nat ResNet-50 scale (d = 25M): dense {t_dense * 1000:.1f} ms vs "
          f"HiTopKComm {t_sparse * 1000:.1f} ms ({t_dense / t_sparse:.1f}x)")


if __name__ == "__main__":
    main()
