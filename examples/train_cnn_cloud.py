"""Scenario: CNN training on a public-cloud cluster, end to end.

Two halves, mirroring the paper's evaluation:

1. **Convergence (real training)** — an MLP/CNN-scale model trained
   across 8 virtual workers under Dense-SGD, TopK-SGD and MSTopK-SGD
   with error feedback (the Fig. 10 experiment).
2. **Performance (calibrated model)** — ResNet-50 at 128 GPUs: iteration
   breakdown and throughput per scheme (the Table 3 experiment),
   including the DataCache and PTO optimisations.

Run:  python examples/train_cnn_cloud.py
"""

from repro.api import CONVERGENCE_ALGORITHMS, RunConfig, run
from repro.cluster import paper_testbed
from repro.models import resnet50_profile
from repro.perf.iteration_model import IterationModel, SchemeKind
from repro.utils.tables import print_table


def convergence_demo() -> None:
    print("=== real distributed training (8 virtual workers) ===\n")
    reports = {}
    for algorithm in CONVERGENCE_ALGORITHMS:
        config = RunConfig.from_dict({
            "name": f"cnn-cloud-{algorithm}",
            "seed": 7,
            "cluster": {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 2},
            "comm": {"scheme": algorithm, "density": 0.05},
            "train": {"model": "cnn", "epochs": 10, "num_samples": 1024,
                      "local_batch": 16, "lr": 0.05},
        })
        reports[algorithm] = run(config)
    rows = [
        [epoch]
        + [round(reports[a].training.val_metrics[epoch], 4) for a in reports]
        for epoch in range(0, 10, 2)
    ]
    print_table(
        ["Epoch"] + list(reports),
        rows,
        title="validation accuracy per epoch (synthetic CNN task)",
    )
    finals = {a: reports[a].summary["final_metric"] for a in reports}
    print(f"final accuracies: {finals}")
    print("note: sparse variants track dense closely thanks to error feedback\n")


def performance_demo() -> None:
    print("=== calibrated 128-GPU performance model (ResNet-50, 224x224) ===\n")
    net = paper_testbed()
    profile = resnet50_profile()
    rows = []
    for label, kind, optimised in (
        ("Dense-SGD (TreeAR baseline)", SchemeKind.DENSE_TREE, False),
        ("2DTAR-SGD", SchemeKind.DENSE_2DTAR, True),
        ("MSTopK-SGD (this paper)", SchemeKind.MSTOPK_HIER, True),
    ):
        model = IterationModel(
            network=net,
            profile=profile,
            scheme=kind,
            resolution=224,
            local_batch=256,
            single_gpu_throughput=profile.table3_single_gpu,
            use_datacache=optimised,
            use_pto=optimised,
        )
        b = model.breakdown()
        rows.append(
            [
                label,
                round(b.get("io") * 1000, 1),
                round(b.get("ff_bp") * 1000, 1),
                round(b.get("compression") * 1000, 1),
                round(b.get("communication") * 1000, 1),
                round(b.get("lars") * 1000, 1),
                round(model.throughput()),
                f"{100 * model.scaling_efficiency():.1f}%",
            ]
        )
    print_table(
        ["Scheme", "I/O", "FF&BP", "Compr", "Comm", "LARS", "samples/s", "SE"],
        rows,
        title="per-iteration visible time (ms) and throughput, 16 nodes x 8 V100",
    )


def main() -> None:
    convergence_demo()
    performance_demo()


if __name__ == "__main__":
    main()
