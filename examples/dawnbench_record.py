"""Scenario: breaking the DAWNBench record on 25 GbE (paper §5.6).

Simulates the paper's 28-epoch progressive-resizing recipe — MSTopK-SGD
for the 13-epoch low-resolution warmup (where dense aggregation cannot
scale), 2DTAR-SGD afterwards — and the two schedule ablations the paper
argues about: all-dense (slower) and all-sparse (faster but misses 93%).

Run:  python examples/dawnbench_record.py
"""

from repro.perf.dawnbench import (
    DAWNBENCH_LEADERBOARD,
    DawnbenchSimulator,
    PAPER_RECORD_SECONDS,
)
from repro.utils.tables import print_table


def main() -> None:
    sim = DawnbenchSimulator()

    print("=== the 28-epoch schedule (paper Table 4) ===\n")
    rows = []
    for phase in sim.schedule.phases:
        result = sim.phase_result(phase)
        rows.append(
            [
                phase.epochs,
                f"{phase.resolution}x{phase.resolution}",
                phase.local_batch,
                phase.comm_scheme,
                round(result.system_throughput),
                f"{100 * result.scaling_efficiency:.0f}%",
                round(result.seconds, 1),
            ]
        )
    print_table(
        ["Epochs", "Input", "BS", "Scheme", "samples/s", "SE", "phase (s)"],
        rows,
        title="per-phase throughput on 128 virtual V100s",
    )

    record = sim.run()
    print("=== the leaderboard (paper Table 5) ===\n")
    rows = [
        [e.team, e.date, e.interconnect, round(e.seconds)]
        for e in DAWNBENCH_LEADERBOARD
    ]
    rows.append(["Ours (simulated)", "Aug 2020", "25GbE", round(record.total_seconds)])
    rows.append(["Ours (paper)", "Aug 2020", "25GbE", round(PAPER_RECORD_SECONDS)])
    print_table(["Team", "Date", "Interconnect", "Time (s)"], rows)
    print(
        f"simulated record: {record.total_seconds:.1f}s, "
        f"final top-5 {100 * record.final_top5:.2f}% "
        f"(target reached: {record.reached_target})\n"
    )

    print("=== why the schedule switches schemes mid-run ===\n")
    dense = sim.run_all_dense()
    sparse = sim.run_all_sparse()
    print_table(
        ["Schedule", "Time (s)", "Final top-5", "93% reached"],
        [
            ["record (MSTopK then 2DTAR)", round(record.total_seconds, 1),
             f"{100 * record.final_top5:.2f}%", record.reached_target],
            ["all 2DTAR (dense)", round(dense.total_seconds, 1),
             f"{100 * dense.final_top5:.2f}%", dense.reached_target],
            ["all MSTopK (sparse)", round(sparse.total_seconds, 1),
             f"{100 * sparse.final_top5:.2f}%", sparse.reached_target],
        ],
    )
    print(
        '"We cannot fully use MSTopK-SGD in the whole of 28 epochs because\n'
        'it would cause accuracy loss." — §5.6'
    )


if __name__ == "__main__":
    main()
