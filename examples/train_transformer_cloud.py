"""Scenario: Transformer training on a public-cloud cluster.

The paper's hardest scaling case: the Transformer's 110M parameters and
small per-sample compute give the worst communication-to-computation
ratio (Table 3: Dense-SGD reaches only 16.5% scaling efficiency).  This
example shows both halves:

1. real distributed training of a tiny attention model on a synthetic
   token-mapping task (the Table 2 BLEU-proxy setup);
2. the calibrated 128-GPU throughput comparison at 110M parameters.

Run:  python examples/train_transformer_cloud.py
"""

from repro.api import CONVERGENCE_ALGORITHMS, RunConfig, run
from repro.cluster import paper_testbed
from repro.models import transformer_profile
from repro.perf.iteration_model import IterationModel, SchemeKind
from repro.utils.tables import print_table


def convergence_demo() -> None:
    print("=== real distributed training: tiny Transformer, 8 workers ===\n")
    reports = {}
    for algorithm in CONVERGENCE_ALGORITHMS:
        # The attention model wants a hotter rate and higher density at
        # this scale.  RunConfig is deliberately explicit — it applies
        # no hidden per-model overrides — so we spell out the values
        # ConvergenceRunner keeps in its _WORKLOAD_HP table.
        config = RunConfig.from_dict({
            "name": f"transformer-cloud-{algorithm}",
            "seed": 7,
            "cluster": {"instance": "tencent", "num_nodes": 4, "gpus_per_node": 2},
            "comm": {"scheme": algorithm, "density": 0.10},
            "train": {"model": "transformer", "epochs": 12, "num_samples": 1024,
                      "local_batch": 16, "lr": 0.15},
        })
        reports[algorithm] = run(config)
    rows = [
        [epoch]
        + [round(reports[a].training.val_metrics[epoch], 4) for a in reports]
        for epoch in range(0, 12, 3)
    ]
    print_table(
        ["Epoch"] + list(reports),
        rows,
        title="validation token accuracy (BLEU proxy)",
    )
    print(
        "the sparse-vs-dense gap is widest on the Transformer — matching\n"
        "the paper's Table 2, where top-k costs ~2.5 BLEU.\n"
    )


def performance_demo() -> None:
    print("=== calibrated 128-GPU model: Transformer (110M params) ===\n")
    net = paper_testbed()
    profile = transformer_profile()
    rows = []
    for label, kind, optimised in (
        ("Dense-SGD", SchemeKind.DENSE_TREE, False),
        ("2DTAR-SGD", SchemeKind.DENSE_2DTAR, True),
        ("MSTopK-SGD", SchemeKind.MSTOPK_HIER, True),
    ):
        model = IterationModel(
            network=net,
            profile=profile,
            scheme=kind,
            resolution=0,  # text workload
            local_batch=8,
            use_datacache=optimised,
            use_pto=optimised,
        )
        rows.append(
            [
                label,
                round(model.iteration_time() * 1000),
                round(model.throughput()),
                f"{100 * model.scaling_efficiency():.1f}%",
            ]
        )
    print_table(
        ["Scheme", "iter (ms)", "sentences/s", "SE"],
        rows,
        title="throughput, 16 nodes x 8 V100, 25GbE (paper Table 3: 678 / 2534 / 3502)",
    )


def main() -> None:
    convergence_demo()
    performance_demo()


if __name__ == "__main__":
    main()
