"""Scenario: the multi-level DataCache across runs and epochs (paper §4.1).

Drives the *real* cache implementation (actual synthetic-JPEG payloads,
actual decode + augment work, virtual-time storage tiers) through the
paper's three situations:

* run 1, epoch 1 — everything comes from NFS, decode burns CPU;
* run 1, epoch 2+ — the in-memory KV store of pre-processed samples
  serves everything;
* run 2 (hyper-parameter retune) — a fresh process finds the encoded
  files in the local FS cache, skipping NFS.

Run:  python examples/datacache_pipeline.py
"""

from repro.data import DataCache, CachedDataLoader, SyntheticImageDataset
from repro.data.storage import LocalDiskStore, MemoryStore
from repro.utils.seeding import new_rng
from repro.utils.tables import print_table


def run_epochs(label: str, loader: CachedDataLoader, epochs: int, rows: list) -> None:
    rng = new_rng(42)
    for epoch in range(epochs):
        before = (
            loader.cache.stats.nfs_reads,
            loader.cache.stats.disk_hits,
            loader.cache.stats.memory_hits,
        )
        timings = loader.run_epoch(epoch, gpu_seconds_per_iteration=0.02, rng=rng)
        after = (
            loader.cache.stats.nfs_reads,
            loader.cache.stats.disk_hits,
            loader.cache.stats.memory_hits,
        )
        delta = tuple(a - b for a, b in zip(after, before))
        rows.append(
            [
                f"{label} / epoch {epoch + 1}",
                delta[0],
                delta[1],
                delta[2],
                round(timings.io_seconds, 4),
                round(timings.visible_seconds, 4),
            ]
        )


def main() -> None:
    dataset = SyntheticImageDataset(256, resolution=48, num_classes=10, seed=0)
    print(f"dataset: {len(dataset)} synthetic JPEGs of "
          f"{dataset.encoded_sample_bytes} bytes each\n")

    # The local SSD persists across runs; memory does not.
    shared_disk = LocalDiskStore()
    rows: list = []

    cache1 = DataCache(dataset, local_disk=shared_disk)
    loader1 = CachedDataLoader(cache1, batch_size=32, decode_workers=2, seed=0)
    run_epochs("run 1", loader1, epochs=2, rows=rows)

    # Second run: same disk cache, fresh memory (new process).
    cache2 = DataCache(dataset, local_disk=shared_disk, memory=MemoryStore())
    loader2 = CachedDataLoader(cache2, batch_size=32, decode_workers=2, seed=0)
    run_epochs("run 2", loader2, epochs=2, rows=rows)

    print_table(
        ["Phase", "NFS reads", "disk hits", "memory hits", "I/O (s)", "visible (s)"],
        rows,
        title="DataCache behaviour across epochs and runs (virtual time)",
    )
    print(
        "epoch 1 of run 1 pays NFS + decode; epoch 2 is served from memory;\n"
        "run 2's first epoch skips NFS via the local FS cache (paper Fig. 5)."
    )

    # Sharded deployment: the dataset split across 4 nodes' memory.
    print("\nsharded memory caches (4 nodes):")
    total = 0
    for node in range(4):
        cache = DataCache(dataset, node=node, num_nodes=4)
        owned = sum(cache.owns(i) for i in range(len(dataset)))
        total += owned
        print(f"  node {node}: owns {owned} samples")
    print(f"  total = {total} (== dataset size, no overlap)")


if __name__ == "__main__":
    main()
