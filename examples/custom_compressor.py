"""Extending CommLib: plug a custom selection operator into HiTopKComm.

The compressor interface (:class:`repro.compression.TopKCompressor`) is
the extension point: anything that returns exactly ``k`` entries can
ride the hierarchical pipeline, error feedback included.  This example
implements a *threshold-EMA* selector — it reuses last round's threshold
as the starting estimate (one fewer pass than MSTopK in steady state) —
and compares convergence against the built-ins.

Run:  python examples/custom_compressor.py
"""

import numpy as np

from repro.cluster import make_cluster
from repro.collectives.sparse import SparseVector
from repro.comm import HiTopKComm
from repro.compression import MSTopK, TopKCompressor
from repro.compression.exact_topk import topk_argpartition
from repro.models.nn.mlp import MLPClassifier
from repro.optim import SGD
from repro.train import DistributedTrainer
from repro.train.synthetic import make_spiral_classification, train_val_split
from repro.utils.seeding import RandomState, new_rng


class EmaThresholdTopK(TopKCompressor):
    """Top-k via an exponentially smoothed threshold estimate.

    Keeps the previous round's selection threshold; each call refines it
    with a couple of counting passes and falls back to exact selection
    among the candidates — a practical trick several production systems
    use between full re-estimations.
    """

    name = "EmaTopK"

    def __init__(self, momentum: float = 0.9) -> None:
        self.momentum = momentum
        self._threshold: dict[int, float] = {}

    def select(self, x: np.ndarray, k: int, *, rng: RandomState | None = None) -> SparseVector:
        x = self._validate(x, k)
        if k == 0 or k == x.size:
            return topk_argpartition(x, k)
        magnitude = np.abs(x)
        key = x.size
        estimate = self._threshold.get(key)
        if estimate is None or np.count_nonzero(magnitude >= estimate) < k:
            # Cold start / undershoot: exact threshold this round.
            sv = topk_argpartition(x, k)
            new_threshold = float(np.abs(sv.values).min())
        else:
            candidates = np.flatnonzero(magnitude >= estimate)
            sub = topk_argpartition(x[candidates], k)
            sv = SparseVector(sub.values, candidates[sub.indices], x.size)
            new_threshold = float(np.abs(sv.values).min())
        old = self._threshold.get(key, new_threshold)
        self._threshold[key] = self.momentum * old + (1 - self.momentum) * new_threshold
        return sv


def main() -> None:
    net = make_cluster(2, "tencent", gpus_per_node=4)
    rng = new_rng(0)
    x, y = make_spiral_classification(1024, num_classes=4, rng=rng)
    train_x, train_y, val_x, val_y = train_val_split(x, y)

    print("training the same model with three selection operators inside "
          "HiTopKComm (density 5%):\n")
    for compressor in (None, MSTopK(), EmaThresholdTopK()):
        scheme = HiTopKComm(net, density=0.05, compressor=compressor)
        model = MLPClassifier(input_dim=2, hidden=(48, 48), num_classes=4)
        trainer = DistributedTrainer(
            model, scheme, optimizer=SGD(lr=0.05, momentum=0.9), seed=7
        )
        report = trainer.train(
            train_x, train_y, epochs=10, local_batch=16,
            val_x=val_x, val_y=val_y,
            evaluate=lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1),
        )
        name = scheme.compressor.name
        print(f"  {name:<12s} final val accuracy: {report.final_val_metric:.4f} "
              f"(virtual comm: {report.comm_seconds * 1000:.1f} ms)")

    print("\nany exactly-k selector converges through the hierarchy + error "
          "feedback;\nthe operator choice trades selection cost for recall.")


if __name__ == "__main__":
    main()
