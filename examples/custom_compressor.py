"""Extending CommLib: register a custom selection operator.

The compressor interface (:class:`repro.compression.TopKCompressor`) is
the extension point: anything that returns exactly ``k`` entries can
ride the hierarchical pipeline, error feedback included.  This example
implements a *threshold-EMA* selector — it reuses last round's threshold
as the starting estimate (one fewer pass than MSTopK in steady state) —
registers it with ``@register_compressor``, and compares convergence
against the built-ins by name through the ``run()`` facade: once
registered, a compressor is one config key away from any scheme.

Run:  python examples/custom_compressor.py
"""

import numpy as np

from repro.api import RunConfig, register_compressor, run
from repro.collectives.sparse import SparseVector
from repro.compression import TopKCompressor
from repro.compression.exact_topk import topk_argpartition
from repro.utils.seeding import RandomState


class EmaThresholdTopK(TopKCompressor):
    """Top-k via an exponentially smoothed threshold estimate.

    Keeps the previous round's selection threshold; each call refines it
    with a couple of counting passes and falls back to exact selection
    among the candidates — a practical trick several production systems
    use between full re-estimations.
    """

    name = "EmaTopK"

    def __init__(self, momentum: float = 0.9) -> None:
        self.momentum = momentum
        self._threshold: dict[int, float] = {}

    def select(self, x: np.ndarray, k: int, *, rng: RandomState | None = None) -> SparseVector:
        x = self._validate(x, k)
        if k == 0 or k == x.size:
            return topk_argpartition(x, k)
        magnitude = np.abs(x)
        key = x.size
        estimate = self._threshold.get(key)
        if estimate is None or np.count_nonzero(magnitude >= estimate) < k:
            # Cold start / undershoot: exact threshold this round.
            sv = topk_argpartition(x, k)
            new_threshold = float(np.abs(sv.values).min())
        else:
            candidates = np.flatnonzero(magnitude >= estimate)
            sub = topk_argpartition(x[candidates], k)
            sv = SparseVector(sub.values, candidates[sub.indices], x.size)
            new_threshold = float(np.abs(sv.values).min())
        old = self._threshold.get(key, new_threshold)
        self._threshold[key] = self.momentum * old + (1 - self.momentum) * new_threshold
        return sv


# One decorator makes the selector addressable from any RunConfig (and
# visible to `python -m repro list compressors`).
@register_compressor("ema-topk", aliases=("ema",))
def _build_ema_topk(*, n_samplings: int = 30) -> TopKCompressor:
    return EmaThresholdTopK()


def main() -> None:
    print("training the same model with three selection operators inside "
          "HiTopKComm (density 5%):\n")
    for compressor in ("exact-topk", "mstopk", "ema-topk"):
        config = RunConfig.from_dict({
            "name": f"custom-compressor-{compressor}",
            "seed": 7,
            "cluster": {"instance": "tencent", "num_nodes": 2, "gpus_per_node": 4},
            "comm": {"scheme": "mstopk", "density": 0.05, "compressor": compressor},
            "train": {"model": "mlp", "epochs": 10, "num_samples": 1024,
                      "local_batch": 16, "lr": 0.05},
        })
        report = run(config)
        print(f"  {compressor:<12s} final val accuracy: "
              f"{report.summary['final_metric']:.4f} "
              f"(virtual comm: {report.summary['comm_seconds'] * 1000:.1f} ms)")

    print("\nany exactly-k selector converges through the hierarchy + error "
          "feedback;\nthe operator choice trades selection cost for recall.")


if __name__ == "__main__":
    main()
