"""Cluster topology: ``m`` nodes × ``n`` GPUs per node.

The paper consistently uses ``m`` for the node count and ``n`` for GPUs
per node (§3.2), with global rank order grouping GPUs of the same node
together (node-major).  This module provides the rank arithmetic used by
the collectives and by the hierarchical communication algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Device:
    """One GPU in the virtual cluster."""

    node: int
    local_rank: int
    rank: int

    @property
    def name(self) -> str:
        return f"node{self.node}/gpu{self.local_rank}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.name}, rank={self.rank})"


@dataclass(frozen=True)
class ClusterTopology:
    """An ``m × n`` grid of GPUs with node-major global ranks.

    Parameters
    ----------
    num_nodes:
        ``m`` — number of machines (the paper's testbed has 16).
    gpus_per_node:
        ``n`` — GPUs per machine (8 on the testbed).
    """

    num_nodes: int
    gpus_per_node: int

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")

    @property
    def world_size(self) -> int:
        """Total GPU count ``P = m * n``."""
        return self.num_nodes * self.gpus_per_node

    # -- rank arithmetic ----------------------------------------------------
    def rank(self, node: int, local_rank: int) -> int:
        """Global rank of GPU ``local_rank`` on ``node`` (node-major)."""
        self._check_node(node)
        self._check_local(local_rank)
        return node * self.gpus_per_node + local_rank

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_rank_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def device(self, rank: int) -> Device:
        return Device(self.node_of(rank), self.local_rank_of(rank), rank)

    def devices(self) -> list[Device]:
        return [self.device(r) for r in range(self.world_size)]

    def node_ranks(self, node: int) -> list[int]:
        """Global ranks of all GPUs on one node."""
        self._check_node(node)
        start = node * self.gpus_per_node
        return list(range(start, start + self.gpus_per_node))

    def stream_ranks(self, local_rank: int) -> list[int]:
        """Global ranks of the ``local_rank``-th GPU on every node.

        These are the participants of one inter-node communication
        stream in HiTopKComm step 3 ("for the j-th communication stream,
        the j-th GPUs in all nodes perform an All-Gather").
        """
        self._check_local(local_rank)
        return [self.rank(node, local_rank) for node in range(self.num_nodes)]

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)

    def iter_node_groups(self) -> Iterator[list[int]]:
        for node in range(self.num_nodes):
            yield self.node_ranks(node)

    def iter_stream_groups(self) -> Iterator[list[int]]:
        for local in range(self.gpus_per_node):
            yield self.stream_ranks(local)

    # -- validation ----------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")

    def _check_local(self, local_rank: int) -> None:
        if not 0 <= local_rank < self.gpus_per_node:
            raise IndexError(
                f"local rank {local_rank} out of range [0, {self.gpus_per_node})"
            )

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise IndexError(f"rank {rank} out of range [0, {self.world_size})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterTopology({self.num_nodes} nodes x {self.gpus_per_node} GPUs"
            f" = {self.world_size} workers)"
        )


__all__ = ["ClusterTopology", "Device"]
