"""Cloud performance variability: stragglers and jitter.

Public-cloud VMs share hosts and networks; synchronous SGD runs at the
pace of the *slowest* participant each iteration.  The paper sidesteps
the issue by measuring steady-state averages, but any system built for
its setting has to reason about it — so this module models it:

* per-node multiplicative slowdown factors (log-normal, the standard
  empirical model for shared-infrastructure jitter);
* the synchronous-step rule: dense flat schemes wait for the globally
  slowest worker on every ring step, while hierarchical schemes confine
  a straggler's damage to its intra-node phase plus its one inter-node
  stream.

Used by ``benchmarks/bench_ablation_stragglers.py`` to quantify how much
of HiTopKComm's advantage survives (or grows) under jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.network import NetworkModel
from repro.utils.seeding import RandomState, new_rng


@dataclass(frozen=True)
class VariabilityModel:
    """Log-normal per-node slowdown sampler.

    ``sigma`` is the log-space standard deviation; 0 disables jitter.
    Factors are >= 1 (a node can only be slower than spec).
    """

    sigma: float = 0.1

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    def sample_node_factors(self, num_nodes: int, rng: RandomState) -> np.ndarray:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if self.sigma == 0:
            return np.ones(num_nodes)
        draws = rng.lognormal(mean=0.0, sigma=self.sigma, size=num_nodes)
        return np.maximum(1.0, draws)


def straggled_flat_time(base_time: float, factors: np.ndarray) -> float:
    """A flat (ring/tree over all P) collective under per-node slowdowns.

    Every step synchronises all nodes, so the whole collective stretches
    by the slowest node's factor.
    """
    if base_time < 0:
        raise ValueError(f"base_time must be non-negative, got {base_time}")
    return base_time * float(np.max(factors))


def straggled_hierarchical_time(
    intra_time: float, inter_time: float, factors: np.ndarray
) -> float:
    """A hierarchical collective under per-node slowdowns.

    The intra-node phases run per node in parallel — the barrier before
    the inter-node phase waits for the slowest node's *intra* work — and
    the inter-node exchange again synchronises everyone.  The key
    difference from the flat case: the (dominant, when sparse) inter
    phase carries far less data, so the multiplicative stretch applies
    to a much smaller base.
    """
    if intra_time < 0 or inter_time < 0:
        raise ValueError("phase times must be non-negative")
    worst = float(np.max(factors))
    return intra_time * worst + inter_time * worst


def expected_slowdown(
    network: NetworkModel,
    sparse_inter_fraction: float,
    *,
    sigma: float = 0.15,
    trials: int = 200,
    seed: int = 0,
) -> tuple[float, float]:
    """Monte-Carlo mean slowdown of (flat, hierarchical) schemes.

    ``sparse_inter_fraction`` is the fraction of the hierarchical
    scheme's base time spent in the inter-node phase.  Returns the mean
    multiplicative stretch of each scheme over ``trials`` draws.
    """
    if not 0 <= sparse_inter_fraction <= 1:
        raise ValueError("sparse_inter_fraction must be in [0, 1]")
    model = VariabilityModel(sigma=sigma)
    rng = new_rng(seed)
    flat_total = 0.0
    hier_total = 0.0
    for _ in range(trials):
        factors = model.sample_node_factors(network.num_nodes, rng)
        flat_total += straggled_flat_time(1.0, factors)
        hier_total += straggled_hierarchical_time(
            1.0 - sparse_inter_fraction, sparse_inter_fraction, factors
        )
    return flat_total / trials, hier_total / trials


__all__ = [
    "VariabilityModel",
    "straggled_flat_time",
    "straggled_hierarchical_time",
    "expected_slowdown",
]
