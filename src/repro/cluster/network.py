"""Alpha–beta network cost model with NIC sharing.

This is the timing substrate for every communication scheme in
:mod:`repro.comm`.  Two properties of public-cloud clusters drive the
paper's design and are modelled explicitly:

1. **Asymmetric hierarchy** — NVLink inside a node is two orders of
   magnitude faster than the 25 GbE VPC between nodes, so ``beta_intra``
   and ``beta_inter`` differ hugely (paper §1, §3.2).
2. **NIC sharing** — all ``n`` GPUs of a node share one NIC.  When the
   hierarchical algorithm runs ``n`` concurrent inter-node streams
   (Algorithm 2, step 3), each stream sees ``1/n`` of the node
   bandwidth.  Flat algorithms that move the full gradient across the
   NIC pay the whole dense volume regardless.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.links import ETHERNET_25G, LinkSpec, NVLINK_V100
from repro.cluster.topology import ClusterTopology


@dataclass(frozen=True)
class NetworkModel:
    """Cost model for a hierarchical cluster (``m`` nodes × ``n`` GPUs).

    All methods return virtual seconds.  Message sizes are in bytes;
    callers convert element counts using the wire dtype (FP32/FP16).
    """

    topology: ClusterTopology
    intra: LinkSpec = NVLINK_V100
    inter: LinkSpec = ETHERNET_25G

    # -- convenience accessors ------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    @property
    def gpus_per_node(self) -> int:
        return self.topology.gpus_per_node

    @property
    def world_size(self) -> int:
        return self.topology.world_size

    @property
    def alpha_intra(self) -> float:
        return self.intra.alpha

    @property
    def beta_intra(self) -> float:
        return self.intra.beta

    @property
    def alpha_inter(self) -> float:
        return self.inter.alpha

    @property
    def beta_inter(self) -> float:
        """Per-byte time across the node NIC for a single stream."""
        return self.inter.beta

    def inter_link_shared(self, streams: int) -> LinkSpec:
        """The inter-node link as seen by one of ``streams`` concurrent flows."""
        if streams < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        return self.inter.scaled(1.0 / streams)

    def contended(self, tenants: float) -> "NetworkModel":
        """This cluster as seen by one of ``tenants`` co-located jobs.

        Multi-tenant clusters share node NICs *between jobs* on top of the
        intra-job stream sharing above: when ``tenants`` jobs keep flows in
        flight on the same node, fair queueing gives each job ``1/tenants``
        of the NIC.  NVLink inside the node is partitioned with the GPUs,
        so only the inter-node link degrades.  ``tenants=1`` returns
        ``self`` unchanged (the solo baseline); fractional values model
        time-averaged sharing (e.g. a neighbour that communicates half the
        time is ~1.5 effective tenants).
        """
        if tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {tenants}")
        if tenants == 1:
            return self
        return NetworkModel(
            topology=self.topology,
            intra=self.intra,
            inter=self.inter.scaled(1.0 / tenants),
        )

    def degraded(
        self, *, inter_scale: float = 1.0, intra_scale: float = 1.0
    ) -> "NetworkModel":
        """This cluster with faulty links at a fraction of their bandwidth.

        The fault model for NIC degradation/flap: a sick NIC (or a
        congested top-of-rack switch) delivers only ``inter_scale`` of
        the healthy inter-node bandwidth; ``intra_scale`` covers the
        rarer case of a throttled NVLink.  Latency (``alpha``) is
        unchanged — a degraded link is slow, not far away.  Scales of
        1.0 return ``self`` so the healthy path shares object identity
        with the original model.
        """
        for label, scale in (("inter_scale", inter_scale), ("intra_scale", intra_scale)):
            if not 0 < scale <= 1:
                raise ValueError(f"{label} must be in (0, 1], got {scale}")
        if inter_scale == 1 and intra_scale == 1:
            return self
        return NetworkModel(
            topology=self.topology,
            intra=self.intra if intra_scale == 1 else self.intra.scaled(intra_scale),
            inter=self.inter if inter_scale == 1 else self.inter.scaled(inter_scale),
        )

    def lossy(self, loss_rate: float = 0.0) -> "NetworkModel":
        """This cluster over a *gray* inter-node link dropping packets.

        Packet loss at rate ``p`` forces the lost fraction to be
        retransmitted, so the effective per-byte cost of the inter link
        stretches by ``1 / (1 - p)``.  Latency is untouched — the gray
        link is close but unreliable; the *stochastic* latency-jitter
        half of a gray failure is priced separately per iteration
        (:class:`repro.perf.iteration_model.IterationModel`'s
        ``comm_jitter``).  ``loss_rate=0`` returns ``self`` so the
        healthy path shares object identity with the original model.
        """
        if not 0 <= loss_rate < 1:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate == 0:
            return self
        return NetworkModel(
            topology=self.topology,
            intra=self.intra,
            inter=self.inter.scaled(1.0 - loss_rate),
        )

    # -- point-to-point ---------------------------------------------------------
    def p2p_time(self, rank_a: int, rank_b: int, nbytes: float) -> float:
        """Point-to-point transfer time between two GPUs."""
        if rank_a == rank_b:
            return 0.0
        link = self.intra if self.topology.same_node(rank_a, rank_b) else self.inter
        return link.transfer_time(nbytes)

    # -- collective closed forms -------------------------------------------------
    # These implement the closed-form costs the paper states; the comm
    # schemes compose them.  ``p`` is the participant count and sizes are
    # bytes.  A group of size 1 costs nothing.

    @staticmethod
    def allgather_time(p: int, nbytes_per_rank: float, link: LinkSpec) -> float:
        """All-Gather cost: ``alpha * log2(p) + (p - 1) * beta * nbytes``.

        This is paper Eq. (3) (with the 4-bytes-per-element factor folded
        into ``nbytes_per_rank`` by the caller).
        """
        if p < 1:
            raise ValueError(f"participant count must be >= 1, got {p}")
        if p == 1:
            return 0.0
        return link.alpha * math.log2(p) + (p - 1) * link.beta * nbytes_per_rank

    @staticmethod
    def reduce_scatter_time(p: int, nbytes_total: float, link: LinkSpec) -> float:
        """Ring Reduce-Scatter cost: ``(p-1) * alpha + (p-1) * (D/p) * beta``.

        Paper Eq. (7) with ``D = 4d`` bytes folded in by the caller.
        """
        if p < 1:
            raise ValueError(f"participant count must be >= 1, got {p}")
        if p == 1:
            return 0.0
        return (p - 1) * link.alpha + (p - 1) * (nbytes_total / p) * link.beta

    @staticmethod
    def allreduce_ring_time(p: int, nbytes: float, link: LinkSpec) -> float:
        """Ring All-Reduce: reduce-scatter + all-gather on the same ring."""
        if p < 1:
            raise ValueError(f"participant count must be >= 1, got {p}")
        if p == 1:
            return 0.0
        bandwidth_term = 2 * (p - 1) * (nbytes / p) * link.beta
        return 2 * (p - 1) * link.alpha + bandwidth_term

    @staticmethod
    def allreduce_tree_time(
        p: int,
        nbytes: float,
        link: LinkSpec,
        *,
        traffic_factor: float = 3.0,
    ) -> float:
        """Double-binary-tree All-Reduce (Sanders et al. 2009; NCCL "TreeAR").

        Latency is logarithmic; the bandwidth term carries
        ``traffic_factor * nbytes`` per participant: an interior tree
        node receives from two children and forwards to its parent in
        the reduce phase and mirrors that in the broadcast phase, so its
        NIC moves ~3x the message volume even with the two complementary
        trees halving each message.  NCCL hides part of this with
        pipelining on fat links, but on VM Ethernet without RDMA the
        interior-node bottleneck is what the paper observes ("TreeAR ...
        is also not that efficient in the cloud environment", §5.3).
        """
        if p < 1:
            raise ValueError(f"participant count must be >= 1, got {p}")
        if p == 1:
            return 0.0
        depth = math.ceil(math.log2(p))
        return 2 * depth * link.alpha + traffic_factor * nbytes * link.beta

    # -- hierarchy-aware helpers ---------------------------------------------
    def intra_reduce_scatter_time(self, nbytes_total: float) -> float:
        """Step 1 of HiTopKComm: per-node ring Reduce-Scatter (Eq. 7)."""
        return self.reduce_scatter_time(self.gpus_per_node, nbytes_total, self.intra)

    def intra_allgather_time(self, nbytes_per_rank: float) -> float:
        """Step 4 of HiTopKComm: per-node All-Gather (Eq. 10)."""
        return self.allgather_time(self.gpus_per_node, nbytes_per_rank, self.intra)

    def inter_allgather_time(
        self, nbytes_per_rank: float, *, streams: int | None = None
    ) -> float:
        """Step 3 of HiTopKComm: inter-node All-Gather on shared NIC (Eq. 9).

        With ``streams`` concurrent per-node flows (default: ``n``, one
        per GPU), each flow sees ``1/streams`` of the NIC bandwidth; the
        streams run in parallel so the wall time is the (identical)
        per-stream time.
        """
        streams = self.gpus_per_node if streams is None else streams
        link = self.inter_link_shared(streams)
        return self.allgather_time(self.num_nodes, nbytes_per_rank, link)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NetworkModel({self.topology!r}, intra={self.intra.name}, "
            f"inter={self.inter.name})"
        )


__all__ = ["NetworkModel"]
