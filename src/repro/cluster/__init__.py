"""Virtual public-cloud GPU cluster substrate.

The paper's testbed is 16 Tencent Cloud instances, each with 8 Tesla
V100-32GB GPUs on NVLink, connected by 25 Gbps Ethernet (paper §5.1,
Table 1).  This package models that environment:

* :mod:`repro.cluster.links` — link specifications (latency ``alpha`` and
  per-byte transfer time ``beta``), with NVLink / PCIe / Ethernet presets.
* :mod:`repro.cluster.topology` — the ``m`` nodes × ``n`` GPUs/node grid,
  rank arithmetic, and device naming.
* :mod:`repro.cluster.cloud_presets` — the three public-cloud instance
  types from Table 1 (AWS p3.16xlarge, Aliyun c10g1.20xlarge, Tencent
  18XLARGE320) plus cluster factory helpers.
* :mod:`repro.cluster.network` — the alpha–beta cost model with NIC
  sharing between concurrent inter-node streams.
"""

from repro.cluster.cloud_presets import (
    ALIYUN_GN10X,
    AWS_P3_16XLARGE,
    CLOUD_INSTANCES,
    TENCENT_18XLARGE320,
    CloudInstance,
    make_cluster,
    paper_testbed,
)
from repro.cluster.links import (
    ETHERNET_10G,
    ETHERNET_25G,
    ETHERNET_32G,
    INFINIBAND_100G,
    LinkSpec,
    NVLINK_V100,
    PCIE_GEN3,
)
from repro.cluster.gpu import GpuSpec, V100
from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterTopology, Device
from repro.cluster.variability import VariabilityModel, expected_slowdown

__all__ = [
    "LinkSpec",
    "NVLINK_V100",
    "PCIE_GEN3",
    "ETHERNET_10G",
    "ETHERNET_25G",
    "ETHERNET_32G",
    "INFINIBAND_100G",
    "ClusterTopology",
    "Device",
    "NetworkModel",
    "CloudInstance",
    "CLOUD_INSTANCES",
    "AWS_P3_16XLARGE",
    "ALIYUN_GN10X",
    "TENCENT_18XLARGE320",
    "make_cluster",
    "paper_testbed",
    "GpuSpec",
    "V100",
    "VariabilityModel",
    "expected_slowdown",
]
