"""Public-cloud instance presets (paper Table 1) and cluster factories.

Table 1 of the paper lists three 8×V100 cloud instance types.  We encode
them here together with their storage tier characteristics, and provide
factories for the paper's testbed (16 × Tencent 18XLARGE320).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.links import LinkSpec, NVLINK_V100
from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterTopology
from repro.utils.units import GiB, gbps_to_bytes_per_sec


@dataclass(frozen=True)
class StorageTier:
    """A (networked) storage service attached to a cloud instance.

    ``bandwidth`` is the sustained sequential-read bandwidth seen by one
    instance; ``latency`` is the per-request latency.  These drive the
    DataCache experiments (paper §4.1, Fig. 9).
    """

    name: str
    bandwidth: float  # bytes / second
    latency: float  # seconds per request

    def read_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class CloudInstance:
    """One row of paper Table 1 (an 8×V100 cloud computing instance)."""

    cloud: str
    instance: str
    memory_gib: int
    storage_type: str
    network_gbps: int
    gpus: int = 8
    gpu_model: str = "Tesla V100-32GB"
    intra_link: LinkSpec = NVLINK_V100
    nfs: StorageTier = StorageTier("generic-nfs", 400e6, 2e-3)

    @property
    def memory_bytes(self) -> int:
        return self.memory_gib * GiB

    @property
    def inter_link(self) -> LinkSpec:
        return LinkSpec(
            name=f"{self.network_gbps} GbE ({self.cloud})",
            alpha=4e-5,
            bandwidth=gbps_to_bytes_per_sec(self.network_gbps),
            efficiency=0.9,
        )


# Networked file system tiers.  Cloud NFS offerings deliver a few hundred
# MB/s per client with millisecond-scale request latency; the exact
# figures are per-product ballparks (the paper only states that NFS
# "reading performance may be limited by the network bandwidth and
# latency", §4.1).
EBS_TIER = StorageTier("EBS (gp2)", bandwidth=250e6, latency=1.5e-3)
OSS_TIER = StorageTier("OSS", bandwidth=300e6, latency=2.5e-3)
CFS_TIER = StorageTier("CFS", bandwidth=300e6, latency=2.0e-3)

AWS_P3_16XLARGE = CloudInstance(
    cloud="AWS",
    instance="p3.16xlarge",
    memory_gib=488,
    storage_type="EBS",
    network_gbps=25,
    nfs=EBS_TIER,
)

ALIYUN_GN10X = CloudInstance(
    cloud="Aliyun",
    instance="c10g1.20xlarge",
    memory_gib=336,
    storage_type="OSS",
    network_gbps=32,
    nfs=OSS_TIER,
)

TENCENT_18XLARGE320 = CloudInstance(
    cloud="Tencent",
    instance="18XLARGE320",
    memory_gib=320,
    storage_type="CFS",
    network_gbps=25,
    nfs=CFS_TIER,
)

CLOUD_INSTANCES: dict[str, CloudInstance] = {
    "aws": AWS_P3_16XLARGE,
    "aliyun": ALIYUN_GN10X,
    "tencent": TENCENT_18XLARGE320,
}


def make_cluster(
    num_nodes: int,
    instance: CloudInstance | str = "tencent",
    *,
    gpus_per_node: int | None = None,
) -> NetworkModel:
    """Build a :class:`NetworkModel` for ``num_nodes`` cloud instances.

    Parameters
    ----------
    num_nodes:
        Number of instances (nodes).
    instance:
        A :class:`CloudInstance`, or any name/alias registered in the
        cluster registry (``repro.api.CLUSTERS``; the built-ins are
        ``aws`` / ``aliyun`` / ``tencent``).
    gpus_per_node:
        Override the instance GPU count (e.g. for small test clusters).
    """
    if isinstance(instance, str):
        # Resolve through the cluster registry (repro.api), so presets
        # registered via @register_cluster work everywhere; imported
        # lazily because the registry seeds itself from this module.
        from repro.api.registry import get_cluster

        instance = get_cluster(instance)
    topo = ClusterTopology(num_nodes, gpus_per_node or instance.gpus)
    return NetworkModel(
        topology=topo,
        intra=instance.intra_link,
        inter=instance.inter_link,
    )


def paper_testbed() -> NetworkModel:
    """The paper's testbed: 16 Tencent instances, 128 V100s, 25 GbE (§5.1)."""
    return make_cluster(16, TENCENT_18XLARGE320)


def table1_rows() -> list[tuple[str, str, int, str, int]]:
    """Rows of paper Table 1, in paper order."""
    return [
        (inst.cloud, inst.instance, inst.memory_gib, inst.storage_type, inst.network_gbps)
        for inst in (AWS_P3_16XLARGE, ALIYUN_GN10X, TENCENT_18XLARGE320)
    ]


__all__ = [
    "StorageTier",
    "CloudInstance",
    "EBS_TIER",
    "OSS_TIER",
    "CFS_TIER",
    "AWS_P3_16XLARGE",
    "ALIYUN_GN10X",
    "TENCENT_18XLARGE320",
    "CLOUD_INSTANCES",
    "make_cluster",
    "paper_testbed",
    "table1_rows",
]
