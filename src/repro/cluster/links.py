"""Interconnect link specifications.

A link is described by the classic alpha–beta model: transferring a
message of ``s`` bytes costs ``alpha + s * beta`` seconds, where
``alpha`` is the fixed per-message latency and ``beta`` the per-byte
transfer time (the reciprocal of bandwidth).  The paper's cost analysis
(§3.2, Eqs. 3 and 7–10) distinguishes ``alpha_intra/beta_intra``
(NVLink, inside a node) from ``alpha_inter/beta_inter`` (Ethernet,
between nodes); this module provides the concrete numbers.

Bandwidth values are *effective* achievable bandwidths rather than spec
sheet peaks — e.g. 25 GbE sustains roughly 2.9 GB/s of goodput for large
messages in a VM (no RDMA on the paper's Tencent Cloud testbed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import gbps_to_bytes_per_sec


@dataclass(frozen=True)
class LinkSpec:
    """An alpha–beta link description.

    Parameters
    ----------
    name:
        Human-readable identifier.
    alpha:
        Per-message latency in seconds.
    bandwidth:
        Achievable bandwidth in bytes/second.
    efficiency:
        Fraction of ``bandwidth`` realised by collective traffic
        (protocol overhead, virtualisation, imperfect pipelining).
        The *effective* per-byte time is ``1 / (bandwidth * efficiency)``.
    """

    name: str
    alpha: float
    bandwidth: float
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def beta(self) -> float:
        """Effective transfer time per byte (seconds/byte)."""
        return 1.0 / (self.bandwidth * self.efficiency)

    def transfer_time(self, nbytes: float) -> float:
        """Time to move one message of ``nbytes`` over this link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.alpha + nbytes * self.beta

    def scaled(self, share: float) -> "LinkSpec":
        """A copy of this link with only ``share`` of the bandwidth.

        Used to model NIC sharing: when ``n`` concurrent streams cross
        one node NIC, each sees ``scaled(1 / n)``.
        """
        if not 0 < share <= 1:
            raise ValueError(f"share must be in (0, 1], got {share}")
        return LinkSpec(
            name=f"{self.name}/share={share:.3g}",
            alpha=self.alpha,
            bandwidth=self.bandwidth * share,
            efficiency=self.efficiency,
        )


# ---------------------------------------------------------------------------
# Presets.
#
# alpha values: NVLink latency is a few microseconds end to end through
# NCCL; cloud Ethernet (VPC, no RDMA) has tens-of-microseconds latency.
# Bandwidths: NVLink on a V100 (NVLink2) gives ~20-25 GB/s effective per
# peer pair through NCCL rings inside an 8-GPU hybrid-cube-mesh; 25 GbE
# gives 3.125 GB/s raw.  Efficiencies reflect typical measured goodput.
# ---------------------------------------------------------------------------

NVLINK_V100 = LinkSpec(
    name="NVLink (V100, NCCL ring)",
    alpha=5e-6,
    bandwidth=20e9,
    efficiency=0.9,
)

PCIE_GEN3 = LinkSpec(
    name="PCIe Gen3 x16",
    alpha=8e-6,
    bandwidth=12e9,
    efficiency=0.85,
)

ETHERNET_10G = LinkSpec(
    name="10 GbE (VPC)",
    alpha=4e-5,
    bandwidth=gbps_to_bytes_per_sec(10),
    efficiency=0.9,
)

ETHERNET_25G = LinkSpec(
    name="25 GbE (VPC)",
    alpha=4e-5,
    bandwidth=gbps_to_bytes_per_sec(25),
    efficiency=0.9,
)

ETHERNET_32G = LinkSpec(
    name="32 GbE (VPC)",
    alpha=4e-5,
    bandwidth=gbps_to_bytes_per_sec(32),
    efficiency=0.9,
)

INFINIBAND_100G = LinkSpec(
    name="100 Gb InfiniBand",
    alpha=2e-6,
    bandwidth=gbps_to_bytes_per_sec(100),
    efficiency=0.95,
)

PRESET_LINKS: dict[str, LinkSpec] = {
    "nvlink": NVLINK_V100,
    "pcie": PCIE_GEN3,
    "10gbe": ETHERNET_10G,
    "25gbe": ETHERNET_25G,
    "32gbe": ETHERNET_32G,
    "100gbib": INFINIBAND_100G,
}


def get_link(name: str) -> LinkSpec:
    """Look up a preset link by short name (case-insensitive)."""
    key = name.lower()
    if key not in PRESET_LINKS:
        raise KeyError(
            f"unknown link preset {name!r}; available: {sorted(PRESET_LINKS)}"
        )
    return PRESET_LINKS[key]


__all__ = [
    "LinkSpec",
    "NVLINK_V100",
    "PCIE_GEN3",
    "ETHERNET_10G",
    "ETHERNET_25G",
    "ETHERNET_32G",
    "INFINIBAND_100G",
    "PRESET_LINKS",
    "get_link",
]
