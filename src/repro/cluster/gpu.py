"""GPU compute-cost model.

The paper's kernels of interest (top-k selection, LARS norms) are
memory-bandwidth bound on a V100, with two regimes the paper leans on:

* **Coalesced scans** (MSTopK's threshold-count passes) stream the tensor
  at close to peak HBM2 bandwidth — "no expensive memory access
  operations ... so it would be efficient on GPUs" (§3.1).
* **Irregular access** (sort-based top-k) achieves a small fraction of
  peak — "the exact top-k selection on the GPU generally requires
  irregular memory access which is not friendly to the GPU architecture"
  (§5.2, citing Shanbhag et al. 2018).

This module turns those statements into numbers so that the Fig. 6 / Fig. 8
GPU projections and the PTO model have a common substrate.  Constants are
calibrated against the paper's measured curves; see
``repro/perf/calibration.py`` for the cross-checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """A GPU's performance envelope for the kernels we model."""

    name: str
    memory_bandwidth: float  # bytes/s, peak HBM bandwidth
    fp32_flops: float  # FLOP/s
    tensor_flops: float  # FLOP/s with tensor cores (mixed precision)
    kernel_launch_overhead: float  # seconds per kernel launch
    #: Fraction of peak bandwidth achieved by coalesced streaming kernels.
    streaming_efficiency: float = 0.85
    #: Fraction of peak bandwidth achieved by sort-like irregular kernels.
    #: Calibrated to Fig. 6's measured ``nn.topk`` curve (~1.2 s at 128M
    #: elements, ~0.25 s at 25M).
    irregular_efficiency: float = 0.0125

    def scan_time(self, nbytes: float, passes: int = 1) -> float:
        """Time for ``passes`` coalesced streaming passes over ``nbytes``."""
        if nbytes < 0 or passes < 0:
            raise ValueError("nbytes and passes must be non-negative")
        bandwidth = self.memory_bandwidth * self.streaming_efficiency
        return passes * (self.kernel_launch_overhead + nbytes / bandwidth)

    def sort_time(self, n_elements: int, bytes_per_element: int = 4) -> float:
        """Time for a sort-based selection over ``n_elements``.

        Modelled as ``n log2 n`` memory operations at the irregular-access
        bandwidth — this reproduces the super-linear growth of
        ``nn.topk`` in paper Fig. 6.
        """
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        if n_elements <= 1:
            return self.kernel_launch_overhead
        bandwidth = self.memory_bandwidth * self.irregular_efficiency
        ops_bytes = n_elements * math.log2(n_elements) * bytes_per_element
        return self.kernel_launch_overhead + ops_bytes / bandwidth

    def gather_time(self, n_elements: int, bytes_per_element: int = 4) -> float:
        """Random-index gather (used by DGC's sampling step)."""
        bandwidth = self.memory_bandwidth * self.irregular_efficiency
        return self.kernel_launch_overhead + n_elements * bytes_per_element / bandwidth

    def elementwise_time(self, n_elements: int, flops_per_element: float = 1.0) -> float:
        """Compute-bound elementwise kernel time."""
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        return self.kernel_launch_overhead + n_elements * flops_per_element / self.fp32_flops


#: Tesla V100-32GB (the paper's GPU): 900 GB/s HBM2, 15.7 TFLOPS FP32,
#: 125 TFLOPS tensor cores, ~5 µs launch overhead through a framework.
V100 = GpuSpec(
    name="Tesla V100-32GB",
    memory_bandwidth=900e9,
    fp32_flops=15.7e12,
    tensor_flops=125e12,
    kernel_launch_overhead=5e-6,
)


def mstopk_gpu_time(
    d: int,
    *,
    n_samplings: int = 30,
    gpu: GpuSpec = V100,
    bytes_per_element: int = 4,
) -> float:
    """GPU-projected time of MSTopK (Algorithm 1) on a ``d``-vector.

    Each of the ``N`` binary-search iterations is one coalesced
    count-above-threshold pass; setup (abs/mean/max) and the final
    two-threshold selection add a handful of extra passes.
    """
    setup_passes = 3  # abs + mean-reduce + max-reduce
    select_passes = 2  # two masked selections (Algorithm 1 lines 25-29)
    passes = n_samplings + setup_passes + select_passes
    return gpu.scan_time(d * bytes_per_element, passes=passes)


def exact_topk_gpu_time(d: int, *, gpu: GpuSpec = V100, bytes_per_element: int = 4) -> float:
    """GPU-projected time of a sort-based exact top-k (``nn.topk``)."""
    return gpu.sort_time(d, bytes_per_element)


def dgc_topk_gpu_time(
    d: int,
    *,
    sample_fraction: float = 0.1,
    gpu: GpuSpec = V100,
    bytes_per_element: int = 4,
) -> float:
    """GPU-projected time of DGC's double-sampling top-k (Lin et al. 2018).

    DGC samples a fraction of the gradient, runs an exact top-k on the
    sample to estimate the threshold, then selects and — because the
    estimate can overshoot — runs a second exact top-k on the candidate
    set ("it also requires at least two times of top-k operations on
    GPUs", paper §6).
    """
    if not 0 < sample_fraction <= 1:
        raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
    sample = max(1, int(d * sample_fraction))
    t_sample = gpu.gather_time(sample, bytes_per_element)
    t_topk = 2 * gpu.sort_time(sample, bytes_per_element)
    t_passes = gpu.scan_time(d * bytes_per_element, passes=3)  # abs + threshold + select
    return t_sample + t_topk + t_passes


__all__ = [
    "GpuSpec",
    "V100",
    "mstopk_gpu_time",
    "exact_topk_gpu_time",
    "dgc_topk_gpu_time",
]
