"""CommLib — the paper's gradient communication library (§3, §4).

Each *scheme* aggregates per-worker gradients across the virtual cluster
and reports a per-step virtual-time breakdown:

* :class:`~repro.comm.dense.RingAllReduce` — flat ring all-reduce
  (Baidu 2017), reference dense baseline;
* :class:`~repro.comm.dense.TreeAllReduce` — NCCL's double-binary-tree
  all-reduce ("TreeAR" in Fig. 7 and Dense-SGD in Table 3);
* :class:`~repro.comm.dense.Torus2DAllReduce` — 2D-Torus all-reduce
  ("2DTAR", Mikami et al. 2018 / Cho et al. 2019);
* :class:`~repro.comm.naive_allgather.NaiveAllGather` — sparse top-k with
  a flat All-Gather ("NaiveAG", the SparCML-style baseline);
* :class:`~repro.comm.hitopkcomm.HiTopKComm` — the paper's hierarchical
  top-k communication (Algorithm 2).
"""

from repro.comm.base import AggregationResult, CommScheme
from repro.comm.breakdown import TimeBreakdown
from repro.comm.dense import RingAllReduce, Torus2DAllReduce, TreeAllReduce
from repro.comm.gtopk import GlobalTopK
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.legacy import legacy_aggregate
from repro.comm.naive_allgather import NaiveAllGather

__all__ = [
    "TimeBreakdown",
    "AggregationResult",
    "CommScheme",
    "RingAllReduce",
    "TreeAllReduce",
    "Torus2DAllReduce",
    "NaiveAllGather",
    "HiTopKComm",
    "GlobalTopK",
    "legacy_aggregate",
]
