"""Reference (pre-vectorisation) aggregation paths.

The hot-path engine replaced the per-worker Python loops of every
scheme's ``aggregate`` with matrix-native implementations that are
pinned bit-identical to the originals.  This module keeps the original
loop-per-rank algorithms alive, verbatim, for two purposes:

* **parity tests** (``tests/perf/test_vectorized_parity.py``) prove the
  vectorised schemes reproduce these reference results — outputs, wire
  accounting, error-feedback residuals, and rng stream — bit for bit;
* **perf baselining** (``benchmarks/bench_perf_hotpath.py`` via
  :func:`repro.perf.hotpath.compare_hotpaths`) measures the speedup of
  the vectorised engine against the faithful pre-vectorisation
  wall-clock on the same machine and commit.

:func:`legacy_aggregate` dispatches on the scheme type and reuses the
scheme's own state (compressor, error feedback, time model), so a
reference step advances EF residuals exactly like the original did.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.all_reduce import (
    ring_allreduce,
    torus_allreduce_2d,
    tree_allreduce,
)
from repro.collectives.reduce_scatter import ring_reduce_scatter
from repro.collectives.sparse import SparseVector, sparse_allgather_reduce
from repro.comm.base import AggregationResult, CommScheme
from repro.comm.dense import RingAllReduce, Torus2DAllReduce, TreeAllReduce
from repro.comm.gtopk import GlobalTopK, merge_topk
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.compression.base import density_to_k
from repro.utils.partition import chunk_bounds
from repro.utils.seeding import RandomState

import math


def _legacy_dense(
    scheme: RingAllReduce | TreeAllReduce | Torus2DAllReduce,
    worker_grads: Sequence[np.ndarray],
) -> AggregationResult:
    arrays = scheme._check_world(worker_grads)
    d = arrays[0].size
    if isinstance(scheme, RingAllReduce):
        outputs = ring_allreduce(arrays)
        inter = intra = 2.0 * d * scheme.wire_bytes
    elif isinstance(scheme, TreeAllReduce):
        outputs = tree_allreduce(arrays)
        inter = scheme.traffic_factor * d * scheme.wire_bytes
        intra = 2.0 * d * scheme.wire_bytes
    else:
        outputs = torus_allreduce_2d(arrays, scheme.topology)
        inter = intra = 2.0 * d * scheme.wire_bytes
    return AggregationResult(
        outputs=outputs,
        breakdown=scheme.time_model(d),
        inter_bytes=inter,
        intra_bytes=intra,
    )


def _legacy_naiveag(
    scheme: NaiveAllGather,
    worker_grads: Sequence[np.ndarray],
    rng: RandomState | None,
) -> AggregationResult:
    arrays = scheme._check_world(worker_grads)
    d = arrays[0].size
    k = density_to_k(d, scheme.density)

    selections = []
    for rank, grad in enumerate(arrays):
        corrected = scheme.ef.apply(rank, grad) if scheme.ef is not None else grad
        sent = scheme.compressor.select(corrected, k, rng=rng)
        if scheme.ef is not None:
            scheme.ef.update(rank, corrected, sent)
        selections.append(sent)

    outputs = sparse_allgather_reduce(selections)
    pair_bytes = k * (scheme.value_bytes + scheme.index_bytes)
    return AggregationResult(
        outputs=outputs,
        breakdown=scheme.time_model(d),
        inter_bytes=(scheme.topology.world_size - 1) * pair_bytes,
        intra_bytes=(scheme.topology.world_size - 1) * pair_bytes,
        extras={"k": k, "selections": selections},
    )


def _legacy_gtopk(
    scheme: GlobalTopK,
    worker_grads: Sequence[np.ndarray],
    rng: RandomState | None,
) -> AggregationResult:
    arrays = scheme._check_world(worker_grads)
    d = arrays[0].size
    k = density_to_k(d, scheme.density)

    selections: list[SparseVector] = []
    for rank, grad in enumerate(arrays):
        corrected = scheme.ef.apply(rank, grad) if scheme.ef is not None else grad
        sent = scheme.compressor.select(corrected, k, rng=rng)
        if scheme.ef is not None:
            scheme.ef.update(rank, corrected, sent)
        selections.append(sent)

    current: list[SparseVector | None] = list(selections)
    p = len(current)
    stride = 1
    while stride < p:
        for dst in range(0, p, 2 * stride):
            src = dst + stride
            if src < p and current[dst] is not None and current[src] is not None:
                current[dst] = merge_topk(current[dst], current[src], k)
                current[src] = None
        stride *= 2
    final = current[0]
    assert final is not None
    dense = final.to_dense()
    outputs = [dense.copy() for _ in range(p)]

    pair_bytes = k * (scheme.value_bytes + scheme.index_bytes)
    rounds = math.ceil(math.log2(max(2, p)))
    return AggregationResult(
        outputs=outputs,
        breakdown=scheme.time_model(d),
        inter_bytes=rounds * pair_bytes,
        intra_bytes=rounds * pair_bytes,
        extras={"k": k, "global_nnz": final.nnz, "selections": selections},
    )


def _legacy_hitopk(
    scheme: HiTopKComm,
    worker_grads: Sequence[np.ndarray],
    rng: RandomState | None,
) -> AggregationResult:
    arrays = scheme._check_world(worker_grads)
    topo = scheme.topology
    m, n = topo.num_nodes, topo.gpus_per_node
    d = arrays[0].size
    bounds = chunk_bounds(d, n)

    # Step 1: intra-node ring reduce-scatter (per node, in parallel).
    shards: dict[int, np.ndarray] = {}
    for node in range(m):
        group = [arrays[r] for r in topo.node_ranks(node)]
        for local, shard in enumerate(ring_reduce_scatter(group)):
            shards[topo.rank(node, local)] = shard

    # Step 2: per-shard top-k selection with shard-resident EF.
    selections: dict[int, SparseVector] = {}
    for rank_, shard in shards.items():
        corrected = scheme.ef.apply(rank_, shard) if scheme.ef is not None else shard
        k_tilde = density_to_k(corrected.size, scheme.density)
        sent = scheme.compressor.select(corrected, k_tilde, rng=rng)
        if scheme.ef is not None:
            scheme.ef.update(rank_, corrected, sent)
        selections[rank_] = sent

    # Step 3: inter-node all-gather per stream + scatter-add.
    stream_accumulators: list[np.ndarray] = []
    for local in range(n):
        start, end = bounds[local]
        acc = np.zeros(end - start, dtype=arrays[0].dtype)
        for node in range(m):
            sent = selections[topo.rank(node, local)]
            np.add.at(acc, sent.indices, sent.values)
        stream_accumulators.append(acc)

    # Step 4: intra-node all-gather reassembles the full vector.
    full = np.concatenate(stream_accumulators)
    outputs = [full.copy() for _ in range(topo.world_size)]

    k_tilde = density_to_k(bounds[0][1] - bounds[0][0], scheme.density)
    pair_bytes = k_tilde * (scheme.value_bytes + scheme.index_bytes)
    return AggregationResult(
        outputs=outputs,
        breakdown=scheme.time_model(d),
        inter_bytes=(m - 1) * pair_bytes * n,
        intra_bytes=2.0 * d * scheme.dense_wire_bytes / n * (n - 1),
        extras={"k_tilde": k_tilde, "selections": selections},
    )


def legacy_aggregate(
    scheme: CommScheme,
    worker_grads: Sequence[np.ndarray],
    *,
    rng: RandomState | None = None,
) -> AggregationResult:
    """Run ``scheme``'s aggregation with the pre-vectorisation algorithm.

    Accepts the same inputs as ``scheme.aggregate`` (a rank-indexed list
    or a ``(W, d)`` matrix) and mutates the scheme's error-feedback
    state exactly like the original per-rank loops did.
    """
    if isinstance(worker_grads, np.ndarray) and worker_grads.ndim == 2:
        worker_grads = list(worker_grads)
    if isinstance(scheme, (RingAllReduce, TreeAllReduce, Torus2DAllReduce)):
        return _legacy_dense(scheme, worker_grads)
    if isinstance(scheme, HiTopKComm):
        return _legacy_hitopk(scheme, worker_grads, rng)
    if isinstance(scheme, GlobalTopK):
        return _legacy_gtopk(scheme, worker_grads, rng)
    if isinstance(scheme, NaiveAllGather):
        return _legacy_naiveag(scheme, worker_grads, rng)
    raise TypeError(
        f"no legacy reference path for scheme type {type(scheme).__name__}"
    )


__all__ = ["legacy_aggregate"]
