"""NaiveAG — flat sparse aggregation with All-Gather (the TopK-SGD baseline).

Each worker selects its own top-k of the *local* gradient, and the
(values, indices) pairs are exchanged with an All-Gather over all ``P``
GPUs (SparCML-style; paper §3.2: "The efficient way is to use two
All-Gather operations to aggregate the values and indices
respectively").  This is the scheme whose poor cloud performance
motivates HiTopKComm: the volume per NIC grows with ``P`` (every worker
receives every other worker's 2k elements) and the two un-fused
collectives achieve poor goodput on VPC Ethernet.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.network import NetworkModel
from repro.cluster.gpu import V100, GpuSpec, exact_topk_gpu_time, mstopk_gpu_time
from repro.collectives.sparse import batched_scatter_add
from repro.comm.base import AggregationResult, CommScheme, broadcast_views
from repro.comm.breakdown import TimeBreakdown
from repro.compression.base import TopKCompressor, density_to_k
from repro.compression.exact_topk import ExactTopK
from repro.compression.error_feedback import ErrorFeedback
from repro.utils.seeding import RandomState


class NaiveAllGather(CommScheme):
    """Flat sparse All-Gather aggregation ("NaiveAG").

    Parameters
    ----------
    network:
        Cluster cost model.
    density:
        Sparsity ρ; each worker transmits ``k = ρ d`` (value, index) pairs.
    compressor:
        Top-k operator (exact by default — the baseline TopK-SGD of
        Figs. 1/10 uses exact selection).
    error_feedback:
        Keep per-worker residuals so dropped coordinates are re-injected
        next round (required for convergence; on by default).
    value_bytes / index_bytes:
        Wire format of the two all-gathered buffers.
    sparse_goodput:
        Multiplier (< 1) on link efficiency for the un-fused sparse
        exchange: two separate collectives with small messages plus the
        scatter-add accumulation pass.  Calibrated against Fig. 7's
        NaiveAG curve.
    """

    name = "NaiveAG"
    dense = False

    def __init__(
        self,
        network: NetworkModel,
        *,
        density: float = 0.01,
        compressor: TopKCompressor | None = None,
        error_feedback: bool = True,
        value_bytes: int = 4,
        index_bytes: int = 4,
        sparse_goodput: float = 0.35,
        gpu: GpuSpec = V100,
    ) -> None:
        super().__init__(network)
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        if not 0 < sparse_goodput <= 1:
            raise ValueError(f"sparse_goodput must be in (0, 1], got {sparse_goodput}")
        self.density = density
        self.compressor = compressor if compressor is not None else ExactTopK()
        self.ef = ErrorFeedback() if error_feedback else None
        self.value_bytes = value_bytes
        self.index_bytes = index_bytes
        self.sparse_goodput = sparse_goodput
        self.gpu = gpu

    def aggregate(
        self, worker_grads: Sequence[np.ndarray], *, rng: RandomState | None = None
    ) -> AggregationResult:
        mat = self._worker_matrix(worker_grads)
        p, d = mat.shape
        k = density_to_k(d, self.density)

        # Batched local selection with error feedback: one corrected
        # matrix, one multi-shard top-k pass, one residual update.
        ranks = range(p)
        corrected = self.ef.apply_batch(ranks, mat) if self.ef is not None else mat
        selections = self.compressor.select_batch(corrected, k, rng=rng)
        if self.ef is not None:
            self.ef.update_batch(ranks, corrected, selections)

        # All-Gather + one fused scatter-add of every worker's pairs.
        dense = batched_scatter_add(selections, d, dtype=mat.dtype)
        breakdown = self.time_model(d)
        pair_bytes = k * (self.value_bytes + self.index_bytes)
        return AggregationResult(
            outputs=broadcast_views(dense, p),
            breakdown=breakdown,
            inter_bytes=(self.topology.world_size - 1) * pair_bytes,
            intra_bytes=(self.topology.world_size - 1) * pair_bytes,
            extras={"k": k, "selections": selections},
        )

    def time_model(self, d: int) -> TimeBreakdown:
        k = density_to_k(d, self.density)
        p = self.topology.world_size
        pair_bytes = k * (self.value_bytes + self.index_bytes)
        # Ring All-Gather over all P ranks (node-major): every inter-node
        # link forwards all (P-1) foreign messages, at degraded goodput.
        link = self.network.inter.scaled(self.sparse_goodput)
        t_comm = (p - 1) * (link.alpha + pair_bytes * link.beta)
        # Accumulation: scatter-add of P*k (value, index) pairs per GPU.
        accum_bytes = p * k * (self.value_bytes + self.index_bytes)
        bw = self.gpu.memory_bandwidth * self.gpu.irregular_efficiency
        t_accum = accum_bytes / bw
        breakdown = TimeBreakdown({"allgather": t_comm, "accumulate": t_accum})
        return breakdown

    def compression_time_model(self, d: int) -> float:
        """GPU-projected time of the top-k selection this scheme performs.

        Exact selection uses the sort model (the Fig. 1 "Compression" bar
        that costs more than FF&BP); MSTopK uses the streaming model.
        """
        if isinstance(self.compressor, ExactTopK):
            return exact_topk_gpu_time(d, gpu=self.gpu)
        return mstopk_gpu_time(d, gpu=self.gpu)


__all__ = ["NaiveAllGather"]
