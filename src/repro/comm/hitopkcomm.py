"""HiTopKComm — hierarchical top-k communication (paper §3.2, Algorithm 2).

The four steps, for a cluster of ``m`` nodes × ``n`` GPUs and a
``d``-element gradient at density ρ:

1. **Intra-node Reduce-Scatter** (Eq. 4/7): GPU ``j`` of node ``i`` ends
   up with the node-local sum of segment ``j`` (``d/n`` elements), moved
   over fast NVLink.
2. **MSTopK per shard** (Eq. 5/8): each GPU selects ``k̃ = ρ d / n``
   entries of its shard — an ``n``-times smaller selection than flat
   top-k, in parallel on all GPUs.
3. **Inter-node All-Gather per stream** (Eq. 6/9): the ``j``-th GPUs of
   all nodes exchange their (values, indices) pairs over ``n`` concurrent
   streams sharing each NIC, then scatter-add the ``m`` contributions
   into a dense shard accumulator (≤ ρ·d·m/n non-zeros).
4. **Intra-node All-Gather** (Eq. 10): nodes reassemble the full
   sparsified global gradient over NVLink.

Only step 3 touches the slow inter-node network, and it carries ρ of the
dense volume — that is the entire trick.

Error feedback: the information drop happens in step 2, on the
*node-reduced shard*, so the residual lives with the shard owner (one
``d/n`` buffer per GPU) and is added right after the reduce-scatter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.gpu import V100, GpuSpec, mstopk_gpu_time
from repro.cluster.network import NetworkModel
from repro.collectives.reduce_scatter import matrix_reduce_scatter
from repro.collectives.sparse import batched_scatter_add
from repro.comm.base import AggregationResult, CommScheme, broadcast_views
from repro.comm.breakdown import TimeBreakdown
from repro.compression.base import TopKCompressor, density_to_k
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.mstopk import MSTopK
from repro.utils.partition import chunk_bounds
from repro.utils.seeding import RandomState

#: Step names, in paper order (Fig. 8's legend).
STEP_REDUCE_SCATTER = "reduce_scatter"
STEP_MSTOPK = "mstopk"
STEP_INTER_ALLGATHER = "inter_allgather"
STEP_INTRA_ALLGATHER = "intra_allgather"


class HiTopKComm(CommScheme):
    """Hierarchical sparse aggregation (Algorithm 2).

    Parameters
    ----------
    network:
        Cluster cost model (provides ``m``, ``n``, link specs).
    density:
        Sparsity ρ (paper uses 0.01 for Fig. 7/8, 0.001 for training).
    compressor:
        Shard-level top-k operator; MSTopK by default.
    error_feedback:
        Keep per-shard residuals (on by default; required for training).
    value_bytes / index_bytes:
        Wire format of the step-3 exchange.
    dense_wire_bytes:
        Wire format of the dense steps 1 and 4 (FP16 in Fig. 7, FP32 in
        Fig. 8).
    """

    name = "HiTopKComm"
    dense = False

    def __init__(
        self,
        network: NetworkModel,
        *,
        density: float = 0.01,
        compressor: TopKCompressor | None = None,
        error_feedback: bool = True,
        value_bytes: int = 4,
        index_bytes: int = 4,
        dense_wire_bytes: int = 4,
        gpu: GpuSpec = V100,
    ) -> None:
        super().__init__(network)
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.density = density
        self.compressor = compressor if compressor is not None else MSTopK()
        self.ef = ErrorFeedback() if error_feedback else None
        self.value_bytes = value_bytes
        self.index_bytes = index_bytes
        self.dense_wire_bytes = dense_wire_bytes
        self.gpu = gpu

    # -- functional aggregation ------------------------------------------------
    def aggregate(
        self, worker_grads: Sequence[np.ndarray], *, rng: RandomState | None = None
    ) -> AggregationResult:
        mat = self._worker_matrix(worker_grads)
        topo = self.topology
        m, n = topo.num_nodes, topo.gpus_per_node
        d = mat.shape[1]
        bounds = chunk_bounds(d, n)

        # Step 1: intra-node ring reduce-scatter — one vectorised
        # rotated-fold per node (ranks are node-major, so each node is a
        # contiguous row block of the gradient matrix).
        node_acc = np.empty((m, d), dtype=mat.dtype)
        for node in range(m):
            node_acc[node] = matrix_reduce_scatter(mat[node * n : (node + 1) * n])

        # Step 2: per-shard top-k selection with shard-resident error
        # feedback, batched: the EF-corrected shards for all m*n GPUs go
        # through ONE multi-shard selection pass (for MSTopK: one count
        # pass per binary-search iteration over every shard at once).
        # k̃ = ρ * shard_size (paper: ρ d / n).  Shard order is rank
        # order, matching the sequential path's rng stream exactly.
        shard_ranks: list[int] = []
        shard_views: list[np.ndarray] = []
        ks: list[int] = []
        for node in range(m):
            for local in range(n):
                start, end = bounds[local]
                shard_ranks.append(topo.rank(node, local))
                shard_views.append(node_acc[node, start:end])
                ks.append(density_to_k(end - start, self.density))
        if self.ef is not None:
            corrected = [
                self.ef.apply(rank_, shard)
                for rank_, shard in zip(shard_ranks, shard_views)
            ]
        else:
            corrected = shard_views
        sel_list = self.compressor.select_batch(corrected, ks, rng=rng)
        if self.ef is not None:
            for rank_, corr, sent in zip(shard_ranks, corrected, sel_list):
                self.ef.update(rank_, corr, sent)
        selections: dict[int, object] = dict(zip(shard_ranks, sel_list))

        # Steps 3 + 4: inter-node all-gather per stream, then intra-node
        # reassembly.  Each shard's selection is re-based into the full
        # coordinate space and everything lands in ONE fused scatter-add
        # (identical accumulation order: stream-major, node order within
        # a stream — exactly the per-stream loops it replaces).
        stream_order: list[object] = []
        offsets: list[int] = []
        for local in range(n):
            start = bounds[local][0]
            for node in range(m):
                stream_order.append(selections[topo.rank(node, local)])
                offsets.append(start)
        full = batched_scatter_add(stream_order, d, dtype=mat.dtype, offsets=offsets)
        outputs = broadcast_views(full, topo.world_size)

        breakdown = self.time_model(d)
        k_tilde = density_to_k(bounds[0][1] - bounds[0][0], self.density)
        pair_bytes = k_tilde * (self.value_bytes + self.index_bytes)
        return AggregationResult(
            outputs=outputs,
            breakdown=breakdown,
            inter_bytes=(m - 1) * pair_bytes * n,  # per NIC: n streams
            intra_bytes=2.0 * d * self.dense_wire_bytes / n * (n - 1),
            extras={"k_tilde": k_tilde, "selections": selections},
        )

    # -- analytic time model (Eqs. 7-10) ---------------------------------------
    def time_model(self, d: int) -> TimeBreakdown:
        net = self.network
        n = self.topology.gpus_per_node
        m = self.topology.num_nodes
        shard = d / n

        # Step 1 — Eq. (7): ring reduce-scatter over NVLink.
        t1 = net.intra_reduce_scatter_time(d * self.dense_wire_bytes)

        # Step 2 — Eq. (8): MSTopK on a d/n shard (GPU streaming model).
        t2 = mstopk_gpu_time(int(shard), gpu=self.gpu)

        # Step 3 — Eq. (9): inter-node All-Gather of k̃ (value, index)
        # pairs among m nodes, on n NIC-sharing streams.
        k_tilde = max(1, int(round(self.density * shard)))
        pair_bytes = k_tilde * (self.value_bytes + self.index_bytes)
        t3 = net.inter_allgather_time(pair_bytes, streams=n)
        # Scatter-add of the gathered m*k̃ pairs (irregular access).
        accum_bytes = m * k_tilde * (self.value_bytes + self.index_bytes)
        t3 += accum_bytes / (self.gpu.memory_bandwidth * self.gpu.irregular_efficiency)

        # Step 4 — Eq. (10): intra-node All-Gather of the accumulated
        # shards (≤ ρ d m / n non-zeros each, exchanged as value/index
        # pairs: "we assume the indices of the third step are all
        # different so that the number of elements ... is ρ d m / n").
        per_rank_bytes = (
            min(m * k_tilde, int(shard)) * (self.value_bytes + self.index_bytes)
        )
        t4 = net.intra_allgather_time(per_rank_bytes)

        return TimeBreakdown(
            {
                STEP_REDUCE_SCATTER: t1,
                STEP_MSTOPK: t2,
                STEP_INTER_ALLGATHER: t3,
                STEP_INTRA_ALLGATHER: t4,
            }
        )

    def compression_time_model(self, d: int) -> float:
        """Step-2 compute time (already part of :meth:`time_model`)."""
        return mstopk_gpu_time(int(d / self.topology.gpus_per_node), gpu=self.gpu)


__all__ = [
    "HiTopKComm",
    "STEP_REDUCE_SCATTER",
    "STEP_MSTOPK",
    "STEP_INTER_ALLGATHER",
    "STEP_INTRA_ALLGATHER",
]
