"""Scheme interface shared by dense and sparse aggregation."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cluster.network import NetworkModel
from repro.collectives.primitives import broadcast_views
from repro.comm.breakdown import TimeBreakdown
from repro.utils.seeding import RandomState


@dataclass
class AggregationResult:
    """Outcome of one gradient aggregation round.

    Attributes
    ----------
    outputs:
        Per-rank aggregated gradient (all equal for correct schemes; for
        sparse schemes this is the sparsified global sum densified).
        Since the vectorised hot path these are zero-copy *views* of one
        shared aggregate — treat them as read-only.
    breakdown:
        Virtual-time breakdown of the aggregation steps.
    inter_bytes:
        Bytes crossing one node NIC (per node, per direction) — the
        quantity the hierarchical design minimises.
    intra_bytes:
        Bytes moved over NVLink per GPU.
    """

    outputs: list[np.ndarray]
    breakdown: TimeBreakdown
    inter_bytes: float = 0.0
    intra_bytes: float = 0.0
    extras: dict = field(default_factory=dict)

    @property
    def aggregate(self) -> np.ndarray:
        """The single shared aggregate all ranks receive."""
        return self.outputs[0]

    @property
    def time(self) -> float:
        return self.breakdown.total


class CommScheme(abc.ABC):
    """A gradient aggregation scheme over a virtual cluster.

    Subclasses implement both the *functional* aggregation (NumPy data
    movement, used by convergence experiments and tests) and the
    *analytic* time model (used by the Fig. 7/8 benchmarks where only the
    tensor size matters).
    """

    #: Scheme name as it appears in the paper's figures.
    name: str = "scheme"
    #: True when the output is the exact dense sum of the inputs.
    dense: bool = True

    def __init__(self, network: NetworkModel) -> None:
        self.network = network

    @property
    def topology(self):
        return self.network.topology

    @abc.abstractmethod
    def aggregate(
        self, worker_grads: Sequence[np.ndarray], *, rng: RandomState | None = None
    ) -> AggregationResult:
        """Aggregate per-rank gradients; returns data + timing.

        ``worker_grads`` is either a rank-indexed sequence of 1-D
        arrays (the historical interface) or a ``(world_size, d)``
        matrix whose rows are the per-rank fused gradients — the
        hot-path form the trainer feeds from its preallocated fusion
        buffer.  Implementations never mutate the input.
        """

    @abc.abstractmethod
    def time_model(self, d: int) -> TimeBreakdown:
        """Analytic virtual-time breakdown for a ``d``-element gradient."""

    def _worker_matrix(self, worker_grads) -> np.ndarray:
        """Normalise the aggregate input to a validated ``(W, d)`` matrix.

        A 2-D array passes through as a zero-copy view (the trainer's
        preallocated fusion buffer); a sequence of 1-D per-rank arrays —
        the historical interface — is validated and stacked.
        """
        if isinstance(worker_grads, np.ndarray) and worker_grads.ndim == 2:
            expected = self.topology.world_size
            if worker_grads.shape[0] != expected:
                raise ValueError(
                    f"{self.name}: got {worker_grads.shape[0]} gradient rows for "
                    f"world size {expected}"
                )
            return worker_grads
        return np.stack(self._check_world(worker_grads))

    def _check_world(self, worker_grads: Sequence[np.ndarray]) -> list[np.ndarray]:
        expected = self.topology.world_size
        if len(worker_grads) != expected:
            raise ValueError(
                f"{self.name}: got {len(worker_grads)} gradients for "
                f"world size {expected}"
            )
        arrays = [np.asarray(g) for g in worker_grads]
        d = arrays[0].size
        for rank, arr in enumerate(arrays):
            if arr.ndim != 1:
                raise ValueError(f"{self.name}: rank {rank} gradient must be 1-D")
            if arr.size != d:
                raise ValueError(
                    f"{self.name}: rank {rank} has {arr.size} elements, expected {d}"
                )
        return arrays

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(network={self.network!r})"


__all__ = ["AggregationResult", "CommScheme", "broadcast_views"]
