"""Per-step virtual-time breakdowns.

The paper reports component times rather than single totals in Fig. 1
(I/O, FF&BP, compression, communication, LARS) and Fig. 8 (the four
HiTopKComm steps); :class:`TimeBreakdown` is the container all schemes
and the iteration model share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import format_seconds


@dataclass
class TimeBreakdown:
    """Ordered mapping of step name → virtual seconds."""

    steps: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> "TimeBreakdown":
        """Accumulate ``seconds`` into step ``name`` (creates it if new)."""
        if seconds < 0:
            raise ValueError(f"negative time {seconds} for step {name!r}")
        self.steps[name] = self.steps.get(name, 0.0) + seconds
        return self

    def get(self, name: str) -> float:
        return self.steps.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.steps.values())

    def scaled(self, factor: float) -> "TimeBreakdown":
        """A new breakdown with every step multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return TimeBreakdown({k: v * factor for k, v in self.steps.items()})

    def merged(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Sum of two breakdowns, preserving this one's step order first."""
        out = TimeBreakdown(dict(self.steps))
        for name, seconds in other.steps.items():
            out.add(name, seconds)
        return out

    def fraction(self, name: str) -> float:
        """Share of the total attributable to one step (0 if total is 0)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.get(name) / total

    def items(self):
        return self.steps.items()

    def __getitem__(self, name: str) -> float:
        return self.steps[name]

    def __contains__(self, name: str) -> bool:
        return name in self.steps

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"  {name:<18s} {format_seconds(t)}" for name, t in self.steps.items()]
        lines.append(f"  {'total':<18s} {format_seconds(self.total)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:.4g}s" for k, v in self.steps.items())
        return f"TimeBreakdown({inner}, total={self.total:.4g}s)"


__all__ = ["TimeBreakdown"]
