"""Dense aggregation schemes: flat ring, TreeAR, and 2DTAR.

These are the baselines of the paper's Fig. 7 and the "Dense-SGD" /
"2DTAR-SGD" columns of Table 3.  All three produce the exact global sum;
they differ only in schedule, and therefore in how much traffic crosses
the slow inter-node links and how many latency terms they pay.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.network import NetworkModel
from repro.collectives.all_reduce import (
    matrix_ring_allreduce,
    matrix_torus_allreduce_2d,
    matrix_tree_allreduce,
)
from repro.comm.base import AggregationResult, CommScheme, broadcast_views
from repro.comm.breakdown import TimeBreakdown
from repro.utils.seeding import RandomState


class RingAllReduce(CommScheme):
    """Flat ring all-reduce across all ``P`` GPUs (Baidu 2017).

    With node-major rank order only one GPU per node talks across the
    NIC at each step, so the bandwidth term is
    ``2 (P-1)/P * D * beta_inter`` — near-optimal volume, but the scheme
    pays ``2 (P-1)`` latency terms, which hurts at small tensors on
    high-latency VPC networks.
    """

    name = "RingAR"
    dense = True

    def __init__(self, network: NetworkModel, *, wire_bytes: int = 4) -> None:
        super().__init__(network)
        self.wire_bytes = wire_bytes

    def aggregate(
        self, worker_grads: Sequence[np.ndarray], *, rng: RandomState | None = None
    ) -> AggregationResult:
        mat = self._worker_matrix(worker_grads)
        full = matrix_ring_allreduce(mat)
        d = mat.shape[1]
        return AggregationResult(
            outputs=broadcast_views(full, self.topology.world_size),
            breakdown=self.time_model(d),
            inter_bytes=2.0 * d * self.wire_bytes,
            intra_bytes=2.0 * d * self.wire_bytes,
        )

    def time_model(self, d: int) -> TimeBreakdown:
        nbytes = d * self.wire_bytes
        # A single-node "cluster" rings over NVLink only.
        link = self.network.inter if self.topology.num_nodes > 1 else self.network.intra
        t = self.network.allreduce_ring_time(self.topology.world_size, nbytes, link)
        return TimeBreakdown({"allreduce": t})


class TreeAllReduce(CommScheme):
    """Double-binary-tree all-reduce ("TreeAR", NCCL's default for large P).

    Functional result: binomial-tree reduce + broadcast.  Cost model:
    logarithmic latency, but an interior tree node's NIC carries roughly
    ``traffic_factor`` times the message volume, and NCCL 2.5's tree is
    laid out along the ring order rather than NIC-balanced, so about
    ``nic_contention`` tree edges share each NIC.  The product of the two
    calibration factors reproduces the TreeAR curve of Fig. 7 ("TreeAR
    ... is also not that efficient in the cloud environment", §5.3).
    """

    name = "TreeAR"
    dense = True

    def __init__(
        self,
        network: NetworkModel,
        *,
        wire_bytes: int = 4,
        traffic_factor: float = 3.0,
        nic_contention: float = 2.0,
    ) -> None:
        super().__init__(network)
        self.wire_bytes = wire_bytes
        self.traffic_factor = traffic_factor
        self.nic_contention = nic_contention

    def aggregate(
        self, worker_grads: Sequence[np.ndarray], *, rng: RandomState | None = None
    ) -> AggregationResult:
        mat = self._worker_matrix(worker_grads)
        full = matrix_tree_allreduce(mat)
        d = mat.shape[1]
        return AggregationResult(
            outputs=broadcast_views(full, self.topology.world_size),
            breakdown=self.time_model(d),
            inter_bytes=self.traffic_factor * d * self.wire_bytes,
            intra_bytes=2.0 * d * self.wire_bytes,
        )

    def time_model(self, d: int) -> TimeBreakdown:
        import math

        nbytes = d * self.wire_bytes
        multi_node = self.topology.num_nodes > 1
        # A single-node tree runs over NVLink with no NIC to contend for.
        link = self.network.inter if multi_node else self.network.intra
        contention = self.nic_contention if multi_node else 1.0
        base = NetworkModel.allreduce_tree_time(
            self.topology.world_size,
            nbytes,
            link,
            traffic_factor=self.traffic_factor,
        )
        # Apply NIC contention only to the bandwidth term.
        depth = math.ceil(math.log2(max(2, self.topology.world_size)))
        latency = 2 * depth * link.alpha
        bandwidth = (base - latency) * contention
        return TimeBreakdown({"allreduce": latency + bandwidth})


class Torus2DAllReduce(CommScheme):
    """2D-Torus all-reduce ("2DTAR", Mikami et al. 2018 / Cho et al. 2019).

    Intra-node reduce-scatter, then ``n`` parallel inter-node ring
    all-reduces on ``1/n`` shards (sharing the NIC), then intra-node
    all-gather.  Pays only ``2 (m-1)`` inter-node latency terms and moves
    ``~2 D`` bytes per NIC — the strongest dense baseline on this
    topology, which is why Table 3 reports "2DTAR-SGD" as the main
    competitor.
    """

    name = "2DTAR"
    dense = True

    def __init__(self, network: NetworkModel, *, wire_bytes: int = 4) -> None:
        super().__init__(network)
        self.wire_bytes = wire_bytes

    def aggregate(
        self, worker_grads: Sequence[np.ndarray], *, rng: RandomState | None = None
    ) -> AggregationResult:
        mat = self._worker_matrix(worker_grads)
        full = matrix_torus_allreduce_2d(mat, self.topology)
        d = mat.shape[1]
        breakdown = self.time_model(d)
        return AggregationResult(
            outputs=broadcast_views(full, self.topology.world_size),
            breakdown=breakdown,
            inter_bytes=2.0 * d * self.wire_bytes,
            intra_bytes=2.0 * d * self.wire_bytes,
        )

    def time_model(self, d: int) -> TimeBreakdown:
        net = self.network
        n = self.topology.gpus_per_node
        m = self.topology.num_nodes
        nbytes = d * self.wire_bytes
        t_rs = net.intra_reduce_scatter_time(nbytes)
        # n concurrent inter-node rings, each on a 1/n shard, sharing the NIC.
        shard_bytes = nbytes / n
        t_ar = NetworkModel.allreduce_ring_time(m, shard_bytes, net.inter_link_shared(n))
        t_ag = net.intra_allgather_time(shard_bytes)
        return TimeBreakdown(
            {"reduce_scatter": t_rs, "inter_allreduce": t_ar, "intra_allgather": t_ag}
        )


__all__ = ["RingAllReduce", "TreeAllReduce", "Torus2DAllReduce"]
