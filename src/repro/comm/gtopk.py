"""gTop-k — global top-k aggregation (Shi et al. 2019c, paper §6).

A related-work baseline the paper cites: instead of gathering every
worker's local top-k (NaiveAG keeps up to ``P·k`` non-zeros), gTop-k
merges pairs of sparse vectors along a recursive-halving tree and
re-selects the top-k of each merged pair, so the final result has
*exactly* ``k`` global non-zeros after ``log2(P)`` rounds.

Trade-offs vs the paper's HiTopKComm:

* wire volume per round is ``2k`` pairs and there are ``log2 P`` rounds
  (vs one ρ-scaled inter-node exchange), so gTop-k pays more latency
  terms but keeps the output support minimal;
* re-selection at each merge drops information that error feedback must
  recover — convergence behaviour sits between TopK-SGD and heavier
  compression.

Functional semantics here follow the published algorithm: a binomial
tree of sparse merges with top-k re-selection, then a broadcast of the
final k pairs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.cluster.gpu import V100, GpuSpec, mstopk_gpu_time
from repro.cluster.network import NetworkModel
from repro.collectives.sparse import SparseVector, coalesce
from repro.comm.base import AggregationResult, CommScheme, broadcast_views
from repro.comm.breakdown import TimeBreakdown
from repro.compression.base import TopKCompressor, density_to_k
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.exact_topk import ExactTopK, topk_argpartition
from repro.utils.seeding import RandomState


def merge_topk(a: SparseVector, b: SparseVector, k: int) -> SparseVector:
    """Merge two sparse vectors and keep the top-k of the union.

    Duplicated indices are summed before re-selection (both workers
    voted for that coordinate), exactly as in the gTop-k paper.
    """
    if a.length != b.length:
        raise ValueError(f"length mismatch: {a.length} vs {b.length}")
    union = coalesce(
        SparseVector(
            np.concatenate([a.values, b.values]),
            np.concatenate([a.indices, b.indices]),
            a.length,
        )
    )
    if union.nnz <= k:
        return union
    sub = topk_argpartition(union.values, k)
    return SparseVector(sub.values, union.indices[sub.indices], a.length)


class GlobalTopK(CommScheme):
    """gTop-k aggregation over a binomial merge tree.

    Parameters mirror :class:`~repro.comm.naive_allgather.NaiveAllGather`;
    ``error_feedback`` compensates the local selection (per worker, size
    ``d``) — merge-stage drops are a property of the algorithm and are
    *not* compensated, as in the original system.
    """

    name = "gTopK"
    dense = False

    def __init__(
        self,
        network: NetworkModel,
        *,
        density: float = 0.001,
        compressor: TopKCompressor | None = None,
        error_feedback: bool = True,
        value_bytes: int = 4,
        index_bytes: int = 4,
        gpu: GpuSpec = V100,
    ) -> None:
        super().__init__(network)
        if not 0 < density <= 1:
            raise ValueError(f"density must be in (0, 1], got {density}")
        self.density = density
        self.compressor = compressor if compressor is not None else ExactTopK()
        self.ef = ErrorFeedback() if error_feedback else None
        self.value_bytes = value_bytes
        self.index_bytes = index_bytes
        self.gpu = gpu

    def aggregate(
        self, worker_grads: Sequence[np.ndarray], *, rng: RandomState | None = None
    ) -> AggregationResult:
        mat = self._worker_matrix(worker_grads)
        p, d = mat.shape
        k = density_to_k(d, self.density)

        # Batched local selection with error feedback.
        ranks = range(p)
        corrected = self.ef.apply_batch(ranks, mat) if self.ef is not None else mat
        selections: list[SparseVector] = self.compressor.select_batch(
            corrected, k, rng=rng
        )
        if self.ef is not None:
            self.ef.update_batch(ranks, corrected, selections)

        # Binomial merge tree: stride doubling, top-k re-selection at
        # each merge (mirrors the reduce phase of tree_allreduce).  Each
        # merge touches only 2k pairs, so this stays per-pair code.
        current: list[SparseVector | None] = list(selections)
        stride = 1
        while stride < p:
            for dst in range(0, p, 2 * stride):
                src = dst + stride
                if src < p and current[dst] is not None and current[src] is not None:
                    current[dst] = merge_topk(current[dst], current[src], k)
                    current[src] = None
            stride *= 2
        final = current[0]
        assert final is not None
        dense = final.to_dense()
        outputs = broadcast_views(dense, p)

        pair_bytes = k * (self.value_bytes + self.index_bytes)
        rounds = math.ceil(math.log2(max(2, p)))
        return AggregationResult(
            outputs=outputs,
            breakdown=self.time_model(d),
            inter_bytes=rounds * pair_bytes,
            intra_bytes=rounds * pair_bytes,
            extras={"k": k, "global_nnz": final.nnz, "selections": selections},
        )

    def time_model(self, d: int) -> TimeBreakdown:
        k = density_to_k(d, self.density)
        pair_bytes = k * (self.value_bytes + self.index_bytes)
        p = self.topology.world_size
        rounds = math.ceil(math.log2(max(2, p)))
        link = self.network.inter
        # Each round: one 2k-pair exchange + a merge re-selection.  The
        # later rounds always cross nodes on a node-major layout.
        t_comm = rounds * (link.alpha + pair_bytes * link.beta)
        t_merge = rounds * self.gpu.sort_time(2 * k)
        t_select = mstopk_gpu_time(d, gpu=self.gpu)
        # Broadcast of the final k pairs back down the tree.
        t_bcast = rounds * (link.alpha + pair_bytes * link.beta)
        return TimeBreakdown(
            {
                "select": t_select,
                "merge_tree": t_comm + t_merge,
                "broadcast": t_bcast,
            }
        )


__all__ = ["GlobalTopK", "merge_topk"]
