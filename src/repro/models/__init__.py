"""Models: performance profiles of the paper's workloads and real
trainable NumPy networks for the convergence experiments.

* :mod:`repro.models.profiles` — layer-accurate parameter inventories of
  ResNet-50 (161 LARS tensors / 25.6M params), VGG-19 and the
  Transformer, plus the calibrated single-GPU throughput tables that
  drive the performance model (Tables 3 and 4).
* :mod:`repro.models.autodiff` — a small reverse-mode autodiff tape
  (built from scratch; no framework available offline).
* :mod:`repro.models.nn` — MLP / CNN / tiny-Transformer classifiers used
  to reproduce the convergence behaviour of Dense vs TopK vs MSTopK SGD
  (Fig. 10, Table 2) at laptop scale.
"""

from repro.models.autodiff import Tensor
from repro.models.profiles import (
    ModelProfile,
    resnet50_profile,
    transformer_profile,
    vgg19_profile,
)

__all__ = [
    "Tensor",
    "ModelProfile",
    "resnet50_profile",
    "vgg19_profile",
    "transformer_profile",
]
