"""Performance profiles of the paper's workloads.

The throughput experiments (Fig. 1, Tables 3–5) depend on three facts
about each model: its gradient size ``d``, its per-layer tensor
inventory (for LARS/PTO and tensor fusion), and its single-GPU
throughput per input resolution.  This module reconstructs the first
two exactly from the architectures and pins the third to the paper's
published measurements (§5.5.2 baseline throughputs; Table 4).

ResNet-50's inventory is built from the real architecture: 53 convs +
106 batch-norm tensors + fc weight/bias = **161 tensors**, matching "the
ResNet-50 model, which has 161 layers" (§4.2) — and 25.56M parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ModelProfile:
    """Inventory + calibrated throughput of one workload."""

    name: str
    layer_names: tuple[str, ...]
    layer_sizes: tuple[int, ...]
    #: samples/s on one V100 (mixed precision) per input resolution; the
    #: key 0 is used for resolution-less models (Transformer).
    resolution_throughput: dict[int, float] = field(default_factory=dict)
    #: The §5.5.2 baseline single-GPU throughput used for Table 3's
    #: scaling efficiencies (1150 / 560 / 32 samples/s).
    table3_single_gpu: float = 0.0
    #: What one "sample" means (image / sentence of 256 words).
    sample_unit: str = "image"
    #: Default local batch size b (B = b * P).
    default_local_batch: int = 256
    #: Small-kernel count per layer for the LARS/LAMB cost model (LAMB's
    #: moment bookkeeping adds kernels vs LARS).
    lars_kernels_per_layer: float = 8.0

    @property
    def num_params(self) -> int:
        return sum(self.layer_sizes)

    @property
    def num_layers(self) -> int:
        return len(self.layer_sizes)

    def single_gpu_throughput(self, resolution: int | None = None) -> float:
        """Calibrated samples/s for one V100 at a given resolution."""
        if not self.resolution_throughput:
            raise ValueError(f"{self.name}: no throughput calibration")
        if resolution is None:
            resolution = max(self.resolution_throughput)
        if resolution not in self.resolution_throughput:
            raise KeyError(
                f"{self.name}: no calibration for resolution {resolution}; "
                f"available: {sorted(self.resolution_throughput)}"
            )
        return self.resolution_throughput[resolution]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelProfile({self.name}: {self.num_params / 1e6:.2f}M params, "
            f"{self.num_layers} tensors)"
        )


# ---------------------------------------------------------------------------
# ResNet-50 (He et al. 2016): exact tensor inventory.
# ---------------------------------------------------------------------------


def _resnet50_layers() -> tuple[list[str], list[int]]:
    names: list[str] = []
    sizes: list[int] = []

    def conv(name: str, in_c: int, out_c: int, k: int) -> None:
        names.append(f"{name}.weight")
        sizes.append(in_c * out_c * k * k)

    def bn(name: str, channels: int) -> None:
        names.append(f"{name}.gamma")
        sizes.append(channels)
        names.append(f"{name}.beta")
        sizes.append(channels)

    conv("conv1", 3, 64, 7)
    bn("bn1", 64)

    stage_blocks = (3, 4, 6, 3)
    widths = (64, 128, 256, 512)
    in_c = 64
    for stage, (blocks, width) in enumerate(zip(stage_blocks, widths), start=1):
        out_c = width * 4
        for block in range(blocks):
            prefix = f"layer{stage}.{block}"
            conv(f"{prefix}.conv1", in_c, width, 1)
            bn(f"{prefix}.bn1", width)
            conv(f"{prefix}.conv2", width, width, 3)
            bn(f"{prefix}.bn2", width)
            conv(f"{prefix}.conv3", width, out_c, 1)
            bn(f"{prefix}.bn3", out_c)
            if block == 0:
                conv(f"{prefix}.downsample", in_c, out_c, 1)
                bn(f"{prefix}.downsample_bn", out_c)
            in_c = out_c

    names.append("fc.weight")
    sizes.append(2048 * 1000)
    names.append("fc.bias")
    sizes.append(1000)
    return names, sizes


def resnet50_profile() -> ModelProfile:
    """ResNet-50: 161 tensors, 25.56M params (paper §4.2, §5.3).

    Throughputs: Table 4 gives the per-resolution single-GPU rates of
    the optimized mixed-precision implementation (4400 / 3010 / 1240 /
    710 samples/s); §5.5.2 gives the Table 3 baseline of 1150 samples/s
    at 224².
    """
    names, sizes = _resnet50_layers()
    return ModelProfile(
        name="ResNet-50",
        layer_names=tuple(names),
        layer_sizes=tuple(sizes),
        resolution_throughput={96: 4400.0, 128: 3010.0, 224: 1240.0, 288: 710.0},
        table3_single_gpu=1150.0,
        sample_unit="image",
        default_local_batch=256,
    )


# ---------------------------------------------------------------------------
# VGG-19 (Simonyan & Zisserman): 16 convs + 3 fc, with biases.
# ---------------------------------------------------------------------------

_VGG19_CONVS = (
    (3, 64), (64, 64),
    (64, 128), (128, 128),
    (128, 256), (256, 256), (256, 256), (256, 256),
    (256, 512), (512, 512), (512, 512), (512, 512),
    (512, 512), (512, 512), (512, 512), (512, 512),
)


def vgg19_profile() -> ModelProfile:
    """VGG-19: 38 tensors, 143.67M params — communication heavy."""
    names: list[str] = []
    sizes: list[int] = []
    for i, (in_c, out_c) in enumerate(_VGG19_CONVS):
        names.append(f"conv{i}.weight")
        sizes.append(in_c * out_c * 9)
        names.append(f"conv{i}.bias")
        sizes.append(out_c)
    for i, (fan_in, fan_out) in enumerate(((512 * 7 * 7, 4096), (4096, 4096), (4096, 1000))):
        names.append(f"fc{i}.weight")
        sizes.append(fan_in * fan_out)
        names.append(f"fc{i}.bias")
        sizes.append(fan_out)
    return ModelProfile(
        name="VGG-19",
        layer_names=tuple(names),
        layer_sizes=tuple(sizes),
        resolution_throughput={224: 560.0},
        table3_single_gpu=560.0,
        sample_unit="image",
        default_local_batch=256,
    )


# ---------------------------------------------------------------------------
# Transformer (Vaswani et al. 2017): encoder–decoder configured to the
# paper's reported ~110M parameters ("110 million parameters for
# Transformer", §5.3).
# ---------------------------------------------------------------------------


def _transformer_layers(
    d_model: int, d_ff: int, n_enc: int, n_dec: int, vocab: int
) -> tuple[list[str], list[int]]:
    names: list[str] = []
    sizes: list[int] = []

    def linear(name: str, fan_in: int, fan_out: int) -> None:
        names.append(f"{name}.weight")
        sizes.append(fan_in * fan_out)
        names.append(f"{name}.bias")
        sizes.append(fan_out)

    def ln(name: str) -> None:
        names.append(f"{name}.gamma")
        sizes.append(d_model)
        names.append(f"{name}.beta")
        sizes.append(d_model)

    def attention(name: str) -> None:
        for proj in ("wq", "wk", "wv", "wo"):
            linear(f"{name}.{proj}", d_model, d_model)

    names.append("src_embed.weight")
    sizes.append(vocab * d_model)
    names.append("tgt_embed.weight")
    sizes.append(vocab * d_model)

    for i in range(n_enc):
        attention(f"encoder.{i}.self_attn")
        ln(f"encoder.{i}.ln1")
        linear(f"encoder.{i}.ffn1", d_model, d_ff)
        linear(f"encoder.{i}.ffn2", d_ff, d_model)
        ln(f"encoder.{i}.ln2")
    for i in range(n_dec):
        attention(f"decoder.{i}.self_attn")
        ln(f"decoder.{i}.ln1")
        attention(f"decoder.{i}.cross_attn")
        ln(f"decoder.{i}.ln2")
        linear(f"decoder.{i}.ffn1", d_model, d_ff)
        linear(f"decoder.{i}.ffn2", d_ff, d_model)
        ln(f"decoder.{i}.ln3")

    linear("generator", d_model, vocab)
    return names, sizes


def transformer_profile() -> ModelProfile:
    """Transformer (base config, WMT17-sized vocab) ≈ 110M params.

    The paper's training uses LAMB-style layer-wise adaptation for the
    Transformer; its per-layer bookkeeping is heavier than LARS's, which
    the ``lars_kernels_per_layer`` calibration reflects (§5.4's 30 ms
    serial cost over this inventory).
    """
    names, sizes = _transformer_layers(
        d_model=512, d_ff=2048, n_enc=6, n_dec=6, vocab=42_500
    )
    return ModelProfile(
        name="Transformer",
        layer_names=tuple(names),
        layer_sizes=tuple(sizes),
        resolution_throughput={0: 32.0},
        table3_single_gpu=32.0,
        sample_unit="sentence (256 words)",
        default_local_batch=8,
        lars_kernels_per_layer=12.0,
    )


PROFILES = {
    "resnet50": resnet50_profile,
    "vgg19": vgg19_profile,
    "transformer": transformer_profile,
}


#: Built profiles by canonical key.  ModelProfile is frozen and its
#: inventory tuples immutable, so sharing one instance is safe — and
#: trace-scale scheduling resolves profiles millions of times, where
#: rebuilding the 161-tensor ResNet inventory each call dominated.
_PROFILE_CACHE: dict[str, ModelProfile] = {}


def get_profile(name: str) -> ModelProfile:
    key = name.lower().replace("-", "").replace("_", "")
    for profile_key, factory in PROFILES.items():
        if profile_key.replace("_", "") == key:
            profile = _PROFILE_CACHE.get(profile_key)
            if profile is None:
                profile = _PROFILE_CACHE[profile_key] = factory()
            return profile
    raise KeyError(f"unknown profile {name!r}; available: {sorted(PROFILES)}")


__all__ = [
    "ModelProfile",
    "resnet50_profile",
    "vgg19_profile",
    "transformer_profile",
    "get_profile",
    "PROFILES",
]
