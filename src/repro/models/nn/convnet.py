"""A small convolutional network — the VGG stand-in for convergence runs.

conv3x3 → ReLU → avgpool2 → conv3x3 → ReLU → global average → linear.
Uses the im2col convolution of the autodiff tape; sized for 16×16-ish
synthetic images so an epoch takes well under a second.
"""

from __future__ import annotations

import numpy as np

from repro.models.autodiff import (
    Tensor,
    avg_pool2d,
    conv2d,
    conv2d_cnhw,
    legacy_kernels_active,
    softmax_cross_entropy,
)
from repro.utils.seeding import RandomState


class SmallConvNet:
    """Two-conv classifier over NCHW inputs."""

    def __init__(
        self,
        in_channels: int = 3,
        channels: tuple[int, int] = (8, 16),
        num_classes: int = 10,
        image_size: int = 16,
    ) -> None:
        if image_size % 2:
            raise ValueError(f"image_size must be even, got {image_size}")
        self.in_channels = in_channels
        self.channels = channels
        self.num_classes = num_classes
        self.image_size = image_size

    def init_params(self, rng: RandomState) -> dict[str, np.ndarray]:
        c1, c2 = self.channels
        params = {
            "conv1.weight": rng.normal(
                0.0, np.sqrt(2.0 / (self.in_channels * 9)), size=(c1, self.in_channels, 3, 3)
            ),
            "conv2.weight": rng.normal(0.0, np.sqrt(2.0 / (c1 * 9)), size=(c2, c1, 3, 3)),
            "fc.weight": rng.normal(0.0, np.sqrt(2.0 / c2), size=(c2, self.num_classes)),
            "fc.bias": np.zeros(self.num_classes),
        }
        return params

    def logits(self, params: dict[str, Tensor], x: Tensor) -> Tensor:
        h = conv2d(x, params["conv1.weight"], stride=1, padding=1).relu()
        h = avg_pool2d(h, 2)
        h = conv2d(h, params["conv2.weight"], stride=1, padding=1).relu()
        # Global average pool: mean over spatial dims.
        h = h.mean(axis=(2, 3))
        return h @ params["fc.weight"] + params["fc.bias"]

    def logits_cnhw(self, params: dict[str, Tensor], x_cn: Tensor) -> Tensor:
        """Channel-major hot path: zero transposes through the conv stack.

        ``x_cn`` is the batch transposed to ``(c, n, h, w)``; relu and
        average pooling are layout-agnostic (spatial dims stay last), so
        the only layout handling is one tiny input transpose and the
        ``(c2, n) -> (n, c2)`` flip before the classifier head.
        """
        h = conv2d_cnhw(x_cn, params["conv1.weight"], stride=1, padding=1).relu()
        h = avg_pool2d(h, 2)
        h = conv2d_cnhw(h, params["conv2.weight"], stride=1, padding=1).relu()
        h = h.mean(axis=(2, 3)).transpose()
        return h @ params["fc.weight"] + params["fc.bias"]

    def loss_and_grad(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray], dict[str, float]]:
        tensors = {k: Tensor(v, requires_grad=True) for k, v in params.items()}
        if legacy_kernels_active():
            # The faithful pre-vectorisation chain (NCHW + einsum conv).
            logits = self.logits(tensors, Tensor(np.asarray(x)))
        else:
            x_cn = Tensor(
                np.ascontiguousarray(np.asarray(x).transpose(1, 0, 2, 3))
            )
            logits = self.logits_cnhw(tensors, x_cn)
        loss = softmax_cross_entropy(logits, y)
        loss.backward()
        grads = {k: t.grad for k, t in tensors.items()}
        accuracy = float((logits.data.argmax(axis=1) == np.asarray(y)).mean())
        return float(loss.data), grads, {"accuracy": accuracy}

    def evaluate(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray, *, topk: int = 1
    ) -> float:
        tensors = {k: Tensor(v) for k, v in params.items()}
        logits = self.logits(tensors, Tensor(np.asarray(x))).data
        topk = min(topk, logits.shape[1])
        ranked = np.argsort(logits, axis=1)[:, -topk:]
        return float(np.any(ranked == np.asarray(y)[:, None], axis=1).mean())


__all__ = ["SmallConvNet"]
