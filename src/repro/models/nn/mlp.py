"""MLP classifier — the ResNet-50 stand-in for convergence runs.

A two/three-hidden-layer ReLU network on flattened inputs.  At the
paper's scale the convergence claim is about the *optimizer pipeline*
(error feedback, hierarchical selection), not the architecture, so a
model that trains in seconds is the right substitution.
"""

from __future__ import annotations

import numpy as np

from repro.models.autodiff import (
    Tensor,
    reshape,
    softmax_cross_entropy,
    softmax_cross_entropy_workers,
)
from repro.utils.seeding import RandomState


class MLPClassifier:
    """Fully connected ReLU classifier.

    Parameters
    ----------
    input_dim:
        Flattened input dimensionality.
    hidden:
        Hidden layer widths.
    num_classes:
        Output classes.
    """

    def __init__(
        self, input_dim: int, hidden: tuple[int, ...] = (64, 64), num_classes: int = 10
    ) -> None:
        if input_dim < 1 or num_classes < 2:
            raise ValueError("input_dim must be >= 1 and num_classes >= 2")
        self.input_dim = input_dim
        self.hidden = tuple(hidden)
        self.num_classes = num_classes

    def init_params(self, rng: RandomState) -> dict[str, np.ndarray]:
        """He-initialised weights; zero biases."""
        params: dict[str, np.ndarray] = {}
        dims = [self.input_dim, *self.hidden, self.num_classes]
        for i, (fan_in, fan_out) in enumerate(zip(dims[:-1], dims[1:])):
            scale = np.sqrt(2.0 / fan_in)
            params[f"fc{i}.weight"] = rng.normal(0.0, scale, size=(fan_in, fan_out))
            params[f"fc{i}.bias"] = np.zeros(fan_out)
        return params

    def logits(self, params: dict[str, Tensor], x: Tensor) -> Tensor:
        h = x
        n_layers = len(self.hidden) + 1
        for i in range(n_layers):
            h = h @ params[f"fc{i}.weight"] + params[f"fc{i}.bias"]
            if i < n_layers - 1:
                h = h.relu()
        return h

    def loss_and_grad(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray], dict[str, float]]:
        """Forward + backward on one mini-batch."""
        tensors = {k: Tensor(v, requires_grad=True) for k, v in params.items()}
        x_t = Tensor(np.asarray(x).reshape(len(x), -1))
        logits = self.logits(tensors, x_t)
        loss = softmax_cross_entropy(logits, y)
        loss.backward()
        grads = {k: t.grad for k, t in tensors.items()}
        accuracy = float((logits.data.argmax(axis=1) == np.asarray(y)).mean())
        return float(loss.data), grads, {"accuracy": accuracy}

    def loss_and_grad_workers(
        self, params: dict[str, np.ndarray], xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, dict[str, np.ndarray], list[dict[str, float]]]:
        """Fused forward + backward for ``W`` workers' batches at once.

        ``xs`` is ``(W, B, ...)`` and ``ys`` is ``(W, B)``.  Parameters
        are replicated along a worker axis so the worker-batched matmuls
        produce per-worker gradients in single batched GEMMs —
        bit-identical to ``W`` sequential :meth:`loss_and_grad` calls
        (pinned by the hot-path parity tests).
        """
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        workers, local = xs.shape[0], xs.shape[1]
        tensors = {
            k: Tensor(np.broadcast_to(v, (workers,) + v.shape).copy(), requires_grad=True)
            for k, v in params.items()
        }
        h = Tensor(xs.reshape(workers, local, -1))
        n_layers = len(self.hidden) + 1
        for i in range(n_layers):
            bias = tensors[f"fc{i}.bias"]
            width = bias.data.shape[-1]
            h = h @ tensors[f"fc{i}.weight"] + reshape(bias, (workers, 1, width))
            if i < n_layers - 1:
                h = h.relu()
        logits = reshape(h, (workers * local, self.num_classes))
        loss, losses = softmax_cross_entropy_workers(logits, ys.reshape(-1), workers)
        loss.backward()
        grads = {
            k: t.grad.reshape((workers,) + params[k].shape) for k, t in tensors.items()
        }
        preds = logits.data.argmax(axis=1).reshape(workers, local)
        accuracy = (preds == ys).mean(axis=1)
        metrics = [{"accuracy": float(a)} for a in accuracy]
        return losses, grads, metrics

    def predict(self, params: dict[str, np.ndarray], x: np.ndarray) -> np.ndarray:
        tensors = {k: Tensor(v) for k, v in params.items()}
        logits = self.logits(tensors, Tensor(np.asarray(x).reshape(len(x), -1)))
        return logits.data.argmax(axis=1)

    def evaluate(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray, *, topk: int = 1
    ) -> float:
        """Top-k accuracy (the paper reports top-5 for CNNs)."""
        tensors = {k: Tensor(v) for k, v in params.items()}
        logits = self.logits(tensors, Tensor(np.asarray(x).reshape(len(x), -1))).data
        topk = min(topk, logits.shape[1])
        ranked = np.argsort(logits, axis=1)[:, -topk:]
        return float(np.any(ranked == np.asarray(y)[:, None], axis=1).mean())


__all__ = ["MLPClassifier"]
