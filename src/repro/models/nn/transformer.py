"""A tiny Transformer for the translation-convergence experiment.

Single-layer single-head encoder over token ids with a per-position
output head; trained on a synthetic token-mapping task (each source
token deterministically maps to a target token, with positional
shuffling) so that *token accuracy* serves as the BLEU analogue of
paper Table 2.  All the pieces the real Transformer stresses are
present: embeddings, scaled dot-product attention, layer norm, FFN,
sequence cross-entropy with padding masks.
"""

from __future__ import annotations

import numpy as np

from repro.models.autodiff import (
    Tensor,
    embedding,
    layer_norm,
    softmax,
    softmax_cross_entropy,
)
from repro.utils.seeding import RandomState


class TinyTransformer:
    """One-block encoder with a token-level output head."""

    def __init__(
        self,
        vocab_size: int = 64,
        d_model: int = 32,
        d_ff: int = 64,
        max_len: int = 16,
    ) -> None:
        if d_model % 2:
            raise ValueError(f"d_model must be even, got {d_model}")
        self.vocab_size = vocab_size
        self.d_model = d_model
        self.d_ff = d_ff
        self.max_len = max_len

    def init_params(self, rng: RandomState) -> dict[str, np.ndarray]:
        d, f, v = self.d_model, self.d_ff, self.vocab_size
        scale = 1.0 / np.sqrt(d)
        params = {
            "embed.weight": rng.normal(0.0, 0.02, size=(v, d)),
            "pos.weight": rng.normal(0.0, 0.02, size=(self.max_len, d)),
            "attn.wq": rng.normal(0.0, scale, size=(d, d)),
            "attn.wk": rng.normal(0.0, scale, size=(d, d)),
            "attn.wv": rng.normal(0.0, scale, size=(d, d)),
            "attn.wo": rng.normal(0.0, scale, size=(d, d)),
            "ln1.gamma": np.ones(d),
            "ln1.beta": np.zeros(d),
            "ffn.w1": rng.normal(0.0, np.sqrt(2.0 / d), size=(d, f)),
            "ffn.b1": np.zeros(f),
            "ffn.w2": rng.normal(0.0, np.sqrt(2.0 / f), size=(f, d)),
            "ffn.b2": np.zeros(d),
            "ln2.gamma": np.ones(d),
            "ln2.beta": np.zeros(d),
            "out.weight": rng.normal(0.0, scale, size=(d, v)),
            "out.bias": np.zeros(v),
        }
        return params

    def logits(self, params: dict[str, Tensor], token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids)
        if token_ids.shape[1] > self.max_len:
            raise ValueError(
                f"sequence length {token_ids.shape[1]} exceeds max_len {self.max_len}"
            )
        h = embedding(params["embed.weight"], token_ids)
        pos = embedding(
            params["pos.weight"], np.arange(token_ids.shape[1])
        )
        h = h + pos  # broadcast over batch

        # Single-head scaled dot-product attention.
        q = h @ params["attn.wq"]
        k = h @ params["attn.wk"]
        v = h @ params["attn.wv"]
        scores = (q @ k.transpose((0, 2, 1))) * (1.0 / np.sqrt(self.d_model))
        attn = softmax(scores, axis=-1)
        context = (attn @ v) @ params["attn.wo"]
        h = layer_norm(h + context, params["ln1.gamma"], params["ln1.beta"])

        # Position-wise FFN.
        ff = (h @ params["ffn.w1"] + params["ffn.b1"]).relu()
        ff = ff @ params["ffn.w2"] + params["ffn.b2"]
        h = layer_norm(h + ff, params["ln2.gamma"], params["ln2.beta"])

        return h @ params["out.weight"] + params["out.bias"]

    def loss_and_grad(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray], dict[str, float]]:
        """Sequence cross-entropy; ``y`` entries < 0 are padding."""
        tensors = {k: Tensor(v, requires_grad=True) for k, v in params.items()}
        logits = self.logits(tensors, x)
        loss = softmax_cross_entropy(logits, y)
        loss.backward()
        grads = {k: t.grad for k, t in tensors.items()}
        predictions = logits.data.argmax(axis=-1)
        valid = np.asarray(y) >= 0
        token_acc = float((predictions[valid] == np.asarray(y)[valid]).mean())
        return float(loss.data), grads, {"token_accuracy": token_acc}

    def evaluate(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> float:
        """Token accuracy — the BLEU proxy for Table 2."""
        tensors = {k: Tensor(v) for k, v in params.items()}
        logits = self.logits(tensors, x).data
        predictions = logits.argmax(axis=-1)
        valid = np.asarray(y) >= 0
        return float((predictions[valid] == np.asarray(y)[valid]).mean())


def make_copy_task(
    rng: RandomState,
    *,
    num_samples: int,
    vocab_size: int = 64,
    seq_len: int = 12,
    shift: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthetic 'translation': target token = permuted *neighbour* token.

    ``y[i] = mapping[x[(i + shift) % L]]`` — the vocabulary permutation
    needs the embeddings/output head, and the positional shift needs the
    attention layer (a bag-of-tokens model cannot solve it), so the task
    genuinely exercises the Transformer; convergence behaviour under
    sparsified gradients mirrors the real seq2seq task at this scale.
    """
    if not 0 <= shift < seq_len:
        raise ValueError(f"shift must be in [0, seq_len), got {shift}")
    mapping = rng.permutation(vocab_size)
    x = rng.integers(1, vocab_size, size=(num_samples, seq_len))
    y = mapping[np.roll(x, -shift, axis=1)]
    return x, y


__all__ = ["TinyTransformer", "make_copy_task"]
