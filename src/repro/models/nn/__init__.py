"""Trainable NumPy models for the convergence experiments.

Each model exposes the same interface the distributed trainer consumes:

* ``init_params(rng) -> dict[str, np.ndarray]``
* ``loss_and_grad(params, x, y) -> (loss, grads, metrics)``

Parameters are plain NumPy arrays (the trainer flattens them for
communication); the autodiff tape is an internal detail.
"""

from repro.models.nn.convnet import SmallConvNet
from repro.models.nn.mlp import MLPClassifier
from repro.models.nn.resnet_tiny import TinyResNet
from repro.models.nn.transformer import TinyTransformer

__all__ = ["MLPClassifier", "SmallConvNet", "TinyResNet", "TinyTransformer"]
