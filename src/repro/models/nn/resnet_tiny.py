"""A tiny residual CNN — a closer ResNet stand-in for convergence runs.

Two residual blocks (conv3x3 → ReLU → conv3x3 with identity skip) over
the im2col convolution of the autodiff tape, followed by global average
pooling and a linear head.  Residual connections matter for this
reproduction because they change the gradient *distribution* — skip
paths make gradients flatter-tailed, which is exactly the regime where
top-k selection drops relatively more information.
"""

from __future__ import annotations

import numpy as np

from repro.models.autodiff import Tensor, conv2d, softmax_cross_entropy
from repro.utils.seeding import RandomState


class TinyResNet:
    """Residual two-block classifier over NCHW inputs."""

    def __init__(
        self,
        in_channels: int = 3,
        width: int = 8,
        num_classes: int = 10,
        image_size: int = 12,
    ) -> None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.in_channels = in_channels
        self.width = width
        self.num_classes = num_classes
        self.image_size = image_size

    def init_params(self, rng: RandomState) -> dict[str, np.ndarray]:
        w = self.width
        he = lambda fan_in: np.sqrt(2.0 / fan_in)  # noqa: E731
        params = {
            "stem.weight": rng.normal(
                0.0, he(self.in_channels * 9), size=(w, self.in_channels, 3, 3)
            ),
            "block1.conv1.weight": rng.normal(0.0, he(w * 9), size=(w, w, 3, 3)),
            "block1.conv2.weight": rng.normal(0.0, he(w * 9), size=(w, w, 3, 3)),
            "block2.conv1.weight": rng.normal(0.0, he(w * 9), size=(w, w, 3, 3)),
            "block2.conv2.weight": rng.normal(0.0, he(w * 9), size=(w, w, 3, 3)),
            "fc.weight": rng.normal(0.0, he(w), size=(w, self.num_classes)),
            "fc.bias": np.zeros(self.num_classes),
        }
        return params

    def _block(self, params: dict[str, Tensor], prefix: str, h: Tensor) -> Tensor:
        inner = conv2d(h, params[f"{prefix}.conv1.weight"], padding=1).relu()
        inner = conv2d(inner, params[f"{prefix}.conv2.weight"], padding=1)
        return (h + inner).relu()  # identity skip (He et al. 2016)

    def logits(self, params: dict[str, Tensor], x: Tensor) -> Tensor:
        h = conv2d(x, params["stem.weight"], padding=1).relu()
        h = self._block(params, "block1", h)
        h = self._block(params, "block2", h)
        h = h.mean(axis=(2, 3))  # global average pool
        return h @ params["fc.weight"] + params["fc.bias"]

    def loss_and_grad(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray], dict[str, float]]:
        tensors = {k: Tensor(v, requires_grad=True) for k, v in params.items()}
        logits = self.logits(tensors, Tensor(np.asarray(x)))
        loss = softmax_cross_entropy(logits, y)
        loss.backward()
        grads = {k: t.grad for k, t in tensors.items()}
        accuracy = float((logits.data.argmax(axis=1) == np.asarray(y)).mean())
        return float(loss.data), grads, {"accuracy": accuracy}

    def evaluate(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray, *, topk: int = 1
    ) -> float:
        tensors = {k: Tensor(v) for k, v in params.items()}
        logits = self.logits(tensors, Tensor(np.asarray(x))).data
        topk = min(topk, logits.shape[1])
        ranked = np.argsort(logits, axis=1)[:, -topk:]
        return float(np.any(ranked == np.asarray(y)[:, None], axis=1).mean())


__all__ = ["TinyResNet"]
