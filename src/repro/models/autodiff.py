"""A small reverse-mode autodiff tape over NumPy.

The convergence experiments (paper Fig. 10 / Table 2) need *real*
training through the actual sparsified-communication pipeline, and no
deep-learning framework is available offline — so this module provides
the minimum viable tape: broadcast-aware elementwise ops, (batched)
matmul, reductions, shape ops, ReLU/tanh, softmax / fused softmax
cross-entropy, layer norm, embedding lookup and an im2col convolution.

Design follows the classic micro-tape pattern: each op builds a node
with a closure that propagates the output gradient to its parents;
:meth:`Tensor.backward` runs the closures in reverse topological order.
Gradient correctness is property-tested against central finite
differences in ``tests/models/test_autodiff.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

Array = np.ndarray


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with a gradient slot and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        *,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[Array], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Array | None = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # -- basic protocol -------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, grad={'set' if self.grad is not None else 'none'}{tag})"

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def _accumulate(self, grad: Array) -> None:
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # -- autodiff engine -------------------------------------------------------
    def backward(self, grad: Array | None = None) -> None:
        """Reverse-mode sweep from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    stack.append((parent, False))

        visit(self)
        self._accumulate(np.asarray(grad))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- operators --------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        return add(self, _wrap(other))

    def __radd__(self, other) -> "Tensor":
        return add(_wrap(other), self)

    def __sub__(self, other) -> "Tensor":
        return add(self, neg(_wrap(other)))

    def __rsub__(self, other) -> "Tensor":
        return add(_wrap(other), neg(self))

    def __mul__(self, other) -> "Tensor":
        return mul(self, _wrap(other))

    def __rmul__(self, other) -> "Tensor":
        return mul(_wrap(other), self)

    def __truediv__(self, other) -> "Tensor":
        other = _wrap(other)
        return mul(self, power(other, -1.0))

    def __neg__(self) -> "Tensor":
        return neg(self)

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, _wrap(other))

    # -- convenience methods -----------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        return reshape(self, shape if len(shape) > 1 else shape[0])

    def transpose(self, axes=None) -> "Tensor":
        return transpose(self, axes)

    def relu(self) -> "Tensor":
        return relu(self)

    def tanh(self) -> "Tensor":
        return tanh(self)


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _node(
    data: Array, parents: tuple[Tensor, ...], backward: Callable[[Array], None]
) -> Tensor:
    requires = any(p.requires_grad for p in parents)
    return Tensor(
        data,
        requires_grad=requires,
        _parents=tuple(p for p in parents),
        _backward=backward if requires else None,
    )


# -- elementwise ---------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward(grad: Array) -> None:
        a._accumulate(grad)
        b._accumulate(grad)

    return _node(out_data, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    def backward(grad: Array) -> None:
        a._accumulate(-grad)

    return _node(-a.data, (a,), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward(grad: Array) -> None:
        a._accumulate(grad * b.data)
        b._accumulate(grad * a.data)

    return _node(out_data, (a, b), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    out_data = a.data**exponent

    def backward(grad: Array) -> None:
        a._accumulate(grad * exponent * a.data ** (exponent - 1))

    return _node(out_data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)

    def backward(grad: Array) -> None:
        a._accumulate(grad * out_data)

    return _node(out_data, (a,), backward)


def log(a: Tensor) -> Tensor:
    def backward(grad: Array) -> None:
        a._accumulate(grad / a.data)

    return _node(np.log(a.data), (a,), backward)


def relu(a: Tensor) -> Tensor:
    mask = a.data > 0

    def backward(grad: Array) -> None:
        a._accumulate(grad * mask)

    return _node(a.data * mask, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)

    def backward(grad: Array) -> None:
        a._accumulate(grad * (1.0 - out_data**2))

    return _node(out_data, (a,), backward)


# -- linear algebra --------------------------------------------------------------


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix multiply with NumPy batching semantics."""
    out_data = a.data @ b.data

    def backward(grad: Array) -> None:
        a_data, b_data = a.data, b.data
        if b_data.ndim == 1:
            grad_a = np.multiply.outer(grad, b_data) if a_data.ndim > 1 else grad * b_data
            a._accumulate(_unbroadcast(np.asarray(grad_a), a_data.shape))
            grad_b = (a_data * grad[..., None]).sum(axis=tuple(range(a_data.ndim - 1)))
            b._accumulate(grad_b)
            return
        if a_data.ndim == 1:
            grad_a = grad @ np.swapaxes(b_data, -1, -2)
            a._accumulate(_unbroadcast(np.asarray(grad_a), a_data.shape))
            grad_b = np.multiply.outer(a_data, grad)
            b._accumulate(_unbroadcast(np.asarray(grad_b), b_data.shape))
            return
        grad_a = grad @ np.swapaxes(b_data, -1, -2)
        grad_b = np.swapaxes(a_data, -1, -2) @ grad
        a._accumulate(_unbroadcast(grad_a, a_data.shape))
        b._accumulate(_unbroadcast(grad_b, b_data.shape))

    return _node(out_data, (a, b), backward)


# -- reductions and shape ----------------------------------------------------------


def tensor_sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        if axis is None:
            a._accumulate(np.broadcast_to(g, a.data.shape))
            return
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return _node(out_data, (a,), backward)


def tensor_mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.data.shape[ax] for ax in axis]))
    else:
        count = a.data.shape[axis]
    summed = tensor_sum(a, axis=axis, keepdims=keepdims)
    return mul(summed, Tensor(1.0 / count))


def reshape(a: Tensor, shape) -> Tensor:
    original = a.data.shape

    def backward(grad: Array) -> None:
        a._accumulate(np.asarray(grad).reshape(original))

    return _node(a.data.reshape(shape), (a,), backward)


def transpose(a: Tensor, axes=None) -> Tensor:
    def backward(grad: Array) -> None:
        if axes is None:
            a._accumulate(np.asarray(grad).T)
        else:
            inverse = np.argsort(axes)
            a._accumulate(np.transpose(np.asarray(grad), inverse))

    return _node(np.transpose(a.data, axes), (a,), backward)


# -- fused nn ops --------------------------------------------------------------------


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (g - dot))

    return _node(out_data, (a,), backward)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over rows of ``logits`` (labels are class ids).

    Supports ``(N, C)`` logits or ``(N, T, C)`` sequence logits with
    ``(N, T)`` labels; label id < 0 marks padding (ignored).
    """
    labels = np.asarray(labels)
    data = logits.data
    if data.ndim == 3:
        flat_logits = data.reshape(-1, data.shape[-1])
        flat_labels = labels.reshape(-1)
    else:
        flat_logits = data
        flat_labels = labels
    valid = flat_labels >= 0
    count = max(1, int(valid.sum()))
    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    rows = np.arange(flat_labels.size)
    picked = np.where(valid, log_probs[rows, np.where(valid, flat_labels, 0)], 0.0)
    loss_value = -picked.sum() / count
    probs = np.exp(log_probs)

    def backward(grad: Array) -> None:
        g = float(np.asarray(grad))
        dlogits = probs.copy()
        dlogits[rows[valid], flat_labels[valid]] -= 1.0
        dlogits[~valid] = 0.0
        dlogits *= g / count
        logits._accumulate(dlogits.reshape(data.shape))

    return _node(np.asarray(loss_value), (logits,), backward)


def layer_norm(a: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mu = a.data.mean(axis=-1, keepdims=True)
    var = a.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    x_hat = (a.data - mu) * inv
    out_data = x_hat * gamma.data + beta.data
    dim = a.data.shape[-1]

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        gamma._accumulate((g * x_hat).sum(axis=tuple(range(g.ndim - 1))))
        beta._accumulate(g.sum(axis=tuple(range(g.ndim - 1))))
        gx = g * gamma.data
        term1 = gx
        term2 = gx.mean(axis=-1, keepdims=True)
        term3 = x_hat * (gx * x_hat).mean(axis=-1, keepdims=True)
        a._accumulate(inv * (term1 - term2 - term3))

    return _node(out_data, (a, gamma, beta), backward)


def embedding(table: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup with scatter-add backward."""
    ids = np.asarray(ids)
    out_data = table.data[ids]

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        dtable = np.zeros_like(table.data)
        np.add.at(dtable, ids.reshape(-1), g.reshape(-1, table.data.shape[1]))
        table._accumulate(dtable)

    return _node(out_data, (table,), backward)


# -- convolution (im2col) --------------------------------------------------------------


def _im2col(x: Array, kernel: int, stride: int) -> tuple[Array, int, int]:
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    shape = (n, c, kernel, kernel, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    cols = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = cols.reshape(n, c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def conv2d(x: Tensor, weight: Tensor, stride: int = 1, padding: int = 0) -> Tensor:
    """NCHW convolution via im2col; ``weight`` is ``(out_c, in_c, k, k)``."""
    if padding:
        padded = np.pad(
            x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    else:
        padded = x.data
    out_c, in_c, kernel, kernel2 = weight.data.shape
    if kernel != kernel2:
        raise ValueError("only square kernels supported")
    cols, out_h, out_w = _im2col(padded, kernel, stride)
    w_mat = weight.data.reshape(out_c, -1)
    out = np.einsum("of,nfl->nol", w_mat, cols)
    n = x.data.shape[0]
    out_data = out.reshape(n, out_c, out_h, out_w)

    def backward(grad: Array) -> None:
        g = np.asarray(grad).reshape(n, out_c, -1)
        dw = np.einsum("nol,nfl->of", g, cols).reshape(weight.data.shape)
        weight._accumulate(dw)
        dcols = np.einsum("of,nol->nfl", w_mat, g)
        dpadded = np.zeros_like(padded)
        dcols = dcols.reshape(n, in_c, kernel, kernel, out_h, out_w)
        for i in range(kernel):
            for j in range(kernel):
                dpadded[
                    :, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride
                ] += dcols[:, :, i, j]
        if padding:
            dpadded = dpadded[:, :, padding:-padding, padding:-padding]
        x._accumulate(dpadded)

    return _node(out_data, (x, weight), backward)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling (NCHW)."""
    n, c, h, w = x.data.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    out_h, out_w = h // kernel, w // kernel
    reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out_data = reshaped.mean(axis=(3, 5))

    def backward(grad: Array) -> None:
        g = np.asarray(grad) / (kernel * kernel)
        expanded = np.repeat(np.repeat(g, kernel, axis=2), kernel, axis=3)
        x._accumulate(expanded)

    return _node(out_data, (x,), backward)


__all__ = [
    "Tensor",
    "add",
    "neg",
    "mul",
    "power",
    "exp",
    "log",
    "relu",
    "tanh",
    "matmul",
    "tensor_sum",
    "tensor_mean",
    "reshape",
    "transpose",
    "softmax",
    "softmax_cross_entropy",
    "layer_norm",
    "embedding",
    "conv2d",
    "avg_pool2d",
]
