"""A small reverse-mode autodiff tape over NumPy.

The convergence experiments (paper Fig. 10 / Table 2) need *real*
training through the actual sparsified-communication pipeline, and no
deep-learning framework is available offline — so this module provides
the minimum viable tape: broadcast-aware elementwise ops, (batched)
matmul, reductions, shape ops, ReLU/tanh, softmax / fused softmax
cross-entropy, layer norm, embedding lookup and an im2col convolution.

Design follows the classic micro-tape pattern: each op builds a node
with a closure that propagates the output gradient to its parents;
:meth:`Tensor.backward` runs the closures in reverse topological order.
Gradient correctness is property-tested against central finite
differences in ``tests/models/test_autodiff.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

import numpy as np

Array = np.ndarray


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with a gradient slot and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        *,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[Array], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Array | None = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # -- basic protocol -------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, grad={'set' if self.grad is not None else 'none'}{tag})"

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def _accumulate(self, grad: Array, owned: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient slot.

        ``owned=True`` promises the caller hands over a freshly
        allocated array it will neither mutate nor share — the first
        accumulation can then adopt it without the defensive copy.
        Closures that pass views of a child's gradient (add, reshape,
        transpose, sum's broadcast) must keep the default.
        """
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            # _unbroadcast always reduces, so its result is fresh.
            grad = _unbroadcast(grad, self.data.shape)
            owned = True
        if self.grad is None:
            self.grad = grad if owned else grad.copy()
        else:
            self.grad += grad

    # -- autodiff engine -------------------------------------------------------
    def backward(self, grad: Array | None = None) -> None:
        """Reverse-mode sweep from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in seen:
                    continue
                seen.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    stack.append((parent, False))

        visit(self)
        self._accumulate(np.asarray(grad))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- operators --------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        return add(self, _wrap(other))

    def __radd__(self, other) -> "Tensor":
        return add(_wrap(other), self)

    def __sub__(self, other) -> "Tensor":
        return add(self, neg(_wrap(other)))

    def __rsub__(self, other) -> "Tensor":
        return add(_wrap(other), neg(self))

    def __mul__(self, other) -> "Tensor":
        return mul(self, _wrap(other))

    def __rmul__(self, other) -> "Tensor":
        return mul(_wrap(other), self)

    def __truediv__(self, other) -> "Tensor":
        other = _wrap(other)
        return mul(self, power(other, -1.0))

    def __neg__(self) -> "Tensor":
        return neg(self)

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, _wrap(other))

    # -- convenience methods -----------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape) -> "Tensor":
        return reshape(self, shape if len(shape) > 1 else shape[0])

    def transpose(self, axes=None) -> "Tensor":
        return transpose(self, axes)

    def relu(self) -> "Tensor":
        return relu(self)

    def tanh(self) -> "Tensor":
        return tanh(self)


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _node(
    data: Array, parents: tuple[Tensor, ...], backward: Callable[[Array], None]
) -> Tensor:
    requires = any(p.requires_grad for p in parents)
    return Tensor(
        data,
        requires_grad=requires,
        _parents=tuple(p for p in parents),
        _backward=backward if requires else None,
    )


# -- elementwise ---------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward(grad: Array) -> None:
        a._accumulate(grad)
        b._accumulate(grad)

    return _node(out_data, (a, b), backward)


def neg(a: Tensor) -> Tensor:
    def backward(grad: Array) -> None:
        a._accumulate(-grad, owned=True)

    return _node(-a.data, (a,), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward(grad: Array) -> None:
        a._accumulate(grad * b.data, owned=True)
        b._accumulate(grad * a.data, owned=True)

    return _node(out_data, (a, b), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    out_data = a.data**exponent

    def backward(grad: Array) -> None:
        a._accumulate(grad * exponent * a.data ** (exponent - 1), owned=True)

    return _node(out_data, (a,), backward)


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)

    def backward(grad: Array) -> None:
        a._accumulate(grad * out_data, owned=True)

    return _node(out_data, (a,), backward)


def log(a: Tensor) -> Tensor:
    def backward(grad: Array) -> None:
        a._accumulate(grad / a.data, owned=True)

    return _node(np.log(a.data), (a,), backward)


def relu(a: Tensor) -> Tensor:
    def backward(grad: Array) -> None:
        a._accumulate(grad * (a.data > 0), owned=True)

    return _node(np.maximum(a.data, 0.0), (a,), backward)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)

    def backward(grad: Array) -> None:
        a._accumulate(grad * (1.0 - out_data**2), owned=True)

    return _node(out_data, (a,), backward)


# -- linear algebra --------------------------------------------------------------


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix multiply with NumPy batching semantics."""
    out_data = a.data @ b.data

    def backward(grad: Array) -> None:
        a_data, b_data = a.data, b.data
        if b_data.ndim == 1:
            grad_a = np.multiply.outer(grad, b_data) if a_data.ndim > 1 else grad * b_data
            a._accumulate(_unbroadcast(np.asarray(grad_a), a_data.shape), owned=True)
            grad_b = (a_data * grad[..., None]).sum(axis=tuple(range(a_data.ndim - 1)))
            b._accumulate(grad_b, owned=True)
            return
        if a_data.ndim == 1:
            grad_a = grad @ np.swapaxes(b_data, -1, -2)
            a._accumulate(_unbroadcast(np.asarray(grad_a), a_data.shape), owned=True)
            grad_b = np.multiply.outer(a_data, grad)
            b._accumulate(_unbroadcast(np.asarray(grad_b), b_data.shape), owned=True)
            return
        grad_a = grad @ np.swapaxes(b_data, -1, -2)
        grad_b = np.swapaxes(a_data, -1, -2) @ grad
        a._accumulate(_unbroadcast(grad_a, a_data.shape), owned=True)
        b._accumulate(_unbroadcast(grad_b, b_data.shape), owned=True)

    return _node(out_data, (a, b), backward)


# -- reductions and shape ----------------------------------------------------------


def tensor_sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        if axis is None:
            a._accumulate(np.broadcast_to(g, a.data.shape))
            return
        if not keepdims:
            g = np.expand_dims(g, axis=axis)
        a._accumulate(np.broadcast_to(g, a.data.shape))

    return _node(out_data, (a,), backward)


def tensor_mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.data.shape[ax] for ax in axis]))
    else:
        count = a.data.shape[axis]
    summed = tensor_sum(a, axis=axis, keepdims=keepdims)
    return mul(summed, Tensor(1.0 / count))


def reshape(a: Tensor, shape) -> Tensor:
    original = a.data.shape

    def backward(grad: Array) -> None:
        a._accumulate(np.asarray(grad).reshape(original))

    return _node(a.data.reshape(shape), (a,), backward)


def transpose(a: Tensor, axes=None) -> Tensor:
    def backward(grad: Array) -> None:
        if axes is None:
            a._accumulate(np.asarray(grad).T)
        else:
            inverse = np.argsort(axes)
            a._accumulate(np.transpose(np.asarray(grad), inverse))

    return _node(np.transpose(a.data, axes), (a,), backward)


# -- fused nn ops --------------------------------------------------------------------


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        dot = (g * out_data).sum(axis=axis, keepdims=True)
        a._accumulate(out_data * (g - dot), owned=True)

    return _node(out_data, (a,), backward)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over rows of ``logits`` (labels are class ids).

    Supports ``(N, C)`` logits or ``(N, T, C)`` sequence logits with
    ``(N, T)`` labels; label id < 0 marks padding (ignored).
    """
    labels = np.asarray(labels)
    data = logits.data
    if data.ndim == 3:
        flat_logits = data.reshape(-1, data.shape[-1])
        flat_labels = labels.reshape(-1)
    else:
        flat_logits = data
        flat_labels = labels
    valid = flat_labels >= 0
    count = max(1, int(valid.sum()))
    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    rows = np.arange(flat_labels.size)
    picked = np.where(valid, log_probs[rows, np.where(valid, flat_labels, 0)], 0.0)
    loss_value = -picked.sum() / count
    probs = np.exp(log_probs)

    def backward(grad: Array) -> None:
        g = float(np.asarray(grad))
        dlogits = probs.copy()
        dlogits[rows[valid], flat_labels[valid]] -= 1.0
        dlogits[~valid] = 0.0
        dlogits *= g / count
        logits._accumulate(dlogits.reshape(data.shape), owned=True)

    return _node(np.asarray(loss_value), (logits,), backward)


def layer_norm(a: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mu = a.data.mean(axis=-1, keepdims=True)
    var = a.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    x_hat = (a.data - mu) * inv
    out_data = x_hat * gamma.data + beta.data
    dim = a.data.shape[-1]

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        gamma._accumulate((g * x_hat).sum(axis=tuple(range(g.ndim - 1))), owned=True)
        beta._accumulate(g.sum(axis=tuple(range(g.ndim - 1))), owned=True)
        gx = g * gamma.data
        term1 = gx
        term2 = gx.mean(axis=-1, keepdims=True)
        term3 = x_hat * (gx * x_hat).mean(axis=-1, keepdims=True)
        a._accumulate(inv * (term1 - term2 - term3), owned=True)

    return _node(out_data, (a, gamma, beta), backward)


def embedding(table: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup with scatter-add backward."""
    ids = np.asarray(ids)
    out_data = table.data[ids]

    def backward(grad: Array) -> None:
        g = np.asarray(grad)
        dtable = np.zeros_like(table.data)
        np.add.at(dtable, ids.reshape(-1), g.reshape(-1, table.data.shape[1]))
        table._accumulate(dtable, owned=True)

    return _node(out_data, (table,), backward)


# -- convolution (im2col) --------------------------------------------------------------

#: When True, conv2d runs the pre-vectorisation reference kernels
#: (einsum contractions + the kernel-position scatter loop).  Only the
#: perf baseline and kernel-parity tests flip this, via
#: :func:`legacy_conv_kernels`.
_LEGACY_CONV_KERNELS = False


@contextmanager
def legacy_conv_kernels():
    """Temporarily restore the pre-vectorisation conv2d kernels.

    The vectorised kernels (BLAS matmul contractions, transposed-conv
    input gradient, feature-major layout) change the floating-point
    accumulation *order*, so they are numerically equivalent but not
    bit-identical to the old einsum path.  Parity tests and the hot-path
    benchmark use this context to compare against the faithful original
    (models that adopt the feature-major layout also check
    :func:`legacy_kernels_active` to restore their original op chain).
    """
    global _LEGACY_CONV_KERNELS
    previous = _LEGACY_CONV_KERNELS
    _LEGACY_CONV_KERNELS = True
    try:
        yield
    finally:
        _LEGACY_CONV_KERNELS = previous


def legacy_kernels_active() -> bool:
    """Whether :func:`legacy_conv_kernels` is currently in force."""
    return _LEGACY_CONV_KERNELS


def _pad_nchw(x: Array, padding: int) -> Array:
    """Zero-pad the two spatial dims (faster than ``np.pad`` for 4-D)."""
    if not padding:
        return x
    n, c, h, w = x.shape
    out = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype)
    out[:, :, padding : padding + h, padding : padding + w] = x
    return out


def _im2col(x: Array, kernel: int, stride: int) -> tuple[Array, int, int]:
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    shape = (n, c, kernel, kernel, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    cols = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = cols.reshape(n, c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def _im2col_fm(x: Array, kernel: int, stride: int) -> tuple[Array, int, int]:
    """Feature-major im2col: ``(c * k * k, n * out_h * out_w)``.

    The batch axis folds into the GEMM's N dimension, so one large
    matrix multiply replaces ``n`` tiny per-sample GEMMs — the layout
    the vectorised conv kernels contract against.
    """
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    shape = (c, kernel, kernel, n, out_h, out_w)
    strides = (
        x.strides[1],
        x.strides[2],
        x.strides[3],
        x.strides[0],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    cols = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return (
        cols.reshape(c * kernel * kernel, n * out_h * out_w),
        out_h,
        out_w,
    )


def _conv_input_grad(
    g: Array,
    weight: Array,
    padded_shape: tuple[int, ...],
    kernel: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> Array:
    """Vectorised dL/d(padded input): a transposed convolution.

    The output gradient is dilated by ``stride``, zero-padded by
    ``kernel - 1``, and correlated with the spatially-flipped,
    channel-swapped weights — one im2col + one BLAS matmul instead of
    the ``kernel**2`` Python-loop scatter of the original.
    """
    n, in_c = padded_shape[0], padded_shape[1]
    out_c = weight.shape[0]
    dil_h = (out_h - 1) * stride + 1
    dil_w = (out_w - 1) * stride + 1
    g_dil = np.zeros(
        (n, out_c, dil_h + 2 * (kernel - 1), dil_w + 2 * (kernel - 1)),
        dtype=g.dtype,
    )
    g_dil[
        :,
        :,
        kernel - 1 : kernel - 1 + dil_h : stride,
        kernel - 1 : kernel - 1 + dil_w : stride,
    ] = g.reshape(n, out_c, out_h, out_w)
    cols_g, core_h, core_w = _im2col_fm(g_dil, kernel, 1)
    # (in_c, out_c * k * k): flip spatial taps, swap in/out channels.
    w_flip = (
        weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3).reshape(in_c, -1)
    )
    core = (
        (w_flip @ cols_g)
        .reshape(in_c, n, core_h, core_w)
        .transpose(1, 0, 2, 3)
    )
    # Rows/cols of the padded input beyond the last window (when
    # (H - kernel) % stride != 0) receive no gradient.
    if (core_h, core_w) == padded_shape[2:]:
        return np.ascontiguousarray(core)
    dpadded = np.zeros(padded_shape, dtype=g.dtype)
    dpadded[:, :, :core_h, :core_w] = core
    return dpadded


def conv2d(x: Tensor, weight: Tensor, stride: int = 1, padding: int = 0) -> Tensor:
    """NCHW convolution via im2col; ``weight`` is ``(out_c, in_c, k, k)``.

    The forward contraction and all three backward contractions run as
    BLAS matmuls (the original einsum kernels and the kernel-position
    double loop are kept behind :func:`legacy_conv_kernels` for
    baselining).
    """
    padded = _pad_nchw(x.data, padding)
    out_c, in_c, kernel, kernel2 = weight.data.shape
    if kernel != kernel2:
        raise ValueError("only square kernels supported")
    n = x.data.shape[0]
    w_mat = weight.data.reshape(out_c, -1)
    legacy = _LEGACY_CONV_KERNELS
    if legacy:
        cols, out_h, out_w = _im2col(padded, kernel, stride)
        out_data = np.einsum("of,nfl->nol", w_mat, cols).reshape(
            n, out_c, out_h, out_w
        )
    else:
        # Feature-major layout: the batch folds into the GEMM's N
        # dimension, so the forward contraction is ONE (out_c, f) x
        # (f, n*L) multiply instead of n per-sample GEMMs.
        cols, out_h, out_w = _im2col_fm(padded, kernel, stride)
        out_data = np.ascontiguousarray(
            (w_mat @ cols).reshape(out_c, n, out_h, out_w).transpose(1, 0, 2, 3)
        )

    def backward(grad: Array) -> None:
        if legacy:
            g = np.asarray(grad).reshape(n, out_c, -1)
            dw = np.einsum("nol,nfl->of", g, cols).reshape(weight.data.shape)
        else:
            g = np.asarray(grad).reshape(n, out_c, -1)
            g_fm = np.ascontiguousarray(g.transpose(1, 0, 2)).reshape(out_c, -1)
            dw = (g_fm @ cols.T).reshape(weight.data.shape)
        weight._accumulate(dw, owned=True)
        if not legacy and not x.requires_grad and x._backward is None:
            # The input is a leaf that nothing differentiates (the image
            # batch feeding the first conv): skip the transposed
            # convolution entirely instead of materialising a gradient
            # no one reads.
            return
        if not legacy:
            dpadded = _conv_input_grad(
                g, weight.data, padded.shape, kernel, stride, out_h, out_w
            )
        else:
            dcols = np.einsum("of,nol->nfl", w_mat, g)
            dpadded = np.zeros_like(padded)
            dcols = dcols.reshape(n, in_c, kernel, kernel, out_h, out_w)
            for i in range(kernel):
                for j in range(kernel):
                    dpadded[
                        :,
                        :,
                        i : i + out_h * stride : stride,
                        j : j + out_w * stride : stride,
                    ] += dcols[:, :, i, j]
        if padding:
            dpadded = dpadded[:, :, padding:-padding, padding:-padding]
        x._accumulate(dpadded, owned=True)

    return _node(out_data, (x, weight), backward)


def _im2col_cnhw(x: Array, kernel: int, stride: int) -> tuple[Array, int, int]:
    """Feature-major im2col over a channels-first ``(c, n, h, w)`` array."""
    c, n, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    shape = (c, kernel, kernel, n, out_h, out_w)
    strides = (
        x.strides[0],
        x.strides[2],
        x.strides[3],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
    )
    cols = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return (
        cols.reshape(c * kernel * kernel, n * out_h * out_w),
        out_h,
        out_w,
    )


def conv2d_cnhw(x: Tensor, weight: Tensor, stride: int = 1, padding: int = 0) -> Tensor:
    """Convolution over channel-major ``(c, n, h, w)`` activations.

    The zero-transpose variant of :func:`conv2d` for models that keep
    their activations channel-major end to end: the forward GEMM output
    ``(out_c, n * L)`` *is* the output layout, the incoming gradient
    reshapes to GEMM form as a view, and the transposed-convolution
    input gradient lands directly in ``(in_c, n, h, w)`` — three fewer
    full-tensor copies per conv than the NCHW path, which matters when
    the hot path is memory-bound.  Elementwise ops and spatial pooling
    are layout-agnostic (spatial dims stay last), so only the conv op
    needs this variant.
    """
    padded = _pad_nchw(x.data, padding)  # pads the trailing spatial dims
    out_c, in_c, kernel, kernel2 = weight.data.shape
    if kernel != kernel2:
        raise ValueError("only square kernels supported")
    if x.data.shape[0] != in_c:
        raise ValueError(
            f"channel-major input has {x.data.shape[0]} channels, weight expects {in_c}"
        )
    n = x.data.shape[1]
    w_mat = weight.data.reshape(out_c, -1)
    cols, out_h, out_w = _im2col_cnhw(padded, kernel, stride)
    out_data = (w_mat @ cols).reshape(out_c, n, out_h, out_w)

    def backward(grad: Array) -> None:
        g = np.ascontiguousarray(np.asarray(grad)).reshape(out_c, -1)
        dw = (g @ cols.T).reshape(weight.data.shape)
        weight._accumulate(dw, owned=True)
        if not x.requires_grad and x._backward is None:
            return
        # Input gradient: one GEMM back to column space, then k*k
        # strided-window accumulations.  At small spatial maps this
        # moves ~(out_c/in_c) * (core/L) times fewer bytes than the
        # dilated transposed convolution conv2d's NCHW path uses, which
        # is what matters on a memory-bound host.
        dcols = (w_mat.T @ g).reshape(in_c, kernel, kernel, n, out_h, out_w)
        dpadded = np.zeros_like(padded)
        for i in range(kernel):
            for j in range(kernel):
                dpadded[
                    :,
                    :,
                    i : i + out_h * stride : stride,
                    j : j + out_w * stride : stride,
                ] += dcols[:, i, j]
        if padding:
            dpadded = dpadded[:, :, padding:-padding, padding:-padding]
        x._accumulate(dpadded, owned=True)

    return _node(out_data, (x, weight), backward)


def softmax_cross_entropy_workers(
    logits: Tensor, labels: np.ndarray, workers: int
) -> tuple[Tensor, Array]:
    """Worker-blocked cross-entropy: per-worker mean losses, one tape node.

    ``logits`` is ``(W * B, C)`` (worker-major rows) with ``labels``
    ``(W * B,)``; returns the scalar tape node (sum of the per-worker
    means — its backward produces exactly the per-worker ``1/B``-scaled
    gradients the sequential path computes) plus the ``(W,)`` array of
    per-worker mean losses.  Padded labels (< 0) are not supported here;
    use :func:`softmax_cross_entropy` per worker for those workloads.
    """
    labels = np.asarray(labels).reshape(-1)
    data = logits.data
    if data.ndim != 2 or data.shape[0] != labels.size:
        raise ValueError(
            f"need flat (N, C) logits matching {labels.size} labels, got {data.shape}"
        )
    if data.shape[0] % workers:
        raise ValueError(f"{data.shape[0]} rows do not split over {workers} workers")
    if labels.size and labels.min() < 0:
        raise ValueError("softmax_cross_entropy_workers requires unpadded labels")
    local = data.shape[0] // workers
    shifted = data - data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    rows = np.arange(labels.size)
    picked = log_probs[rows, labels]
    count = max(1, local)
    losses = -picked.reshape(workers, local).sum(axis=1) / count
    probs = np.exp(log_probs)

    def backward(grad: Array) -> None:
        g = float(np.asarray(grad))
        dlogits = probs.copy()
        dlogits[rows, labels] -= 1.0
        dlogits *= g / count
        logits._accumulate(dlogits, owned=True)

    return _node(np.asarray(losses.sum()), (logits,), backward), losses


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling (NCHW)."""
    n, c, h, w = x.data.shape
    if h % kernel or w % kernel:
        raise ValueError(f"spatial dims {(h, w)} not divisible by kernel {kernel}")
    out_h, out_w = h // kernel, w // kernel
    reshaped = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out_data = reshaped.mean(axis=(3, 5))

    def backward(grad: Array) -> None:
        g = np.asarray(grad) / (kernel * kernel)
        # One broadcast + reshape instead of two repeat copies.  For
        # kernel == 1 the reshape stays a read-only view of the
        # broadcast (no copy happens), so only hand over ownership when
        # the reshape actually materialised a writable array.
        expanded = np.broadcast_to(
            g[:, :, :, None, :, None], (n, c, out_h, kernel, out_w, kernel)
        ).reshape(n, c, h, w)
        x._accumulate(expanded, owned=expanded.flags.writeable)

    return _node(out_data, (x,), backward)


__all__ = [
    "Tensor",
    "add",
    "neg",
    "mul",
    "power",
    "exp",
    "log",
    "relu",
    "tanh",
    "matmul",
    "tensor_sum",
    "tensor_mean",
    "reshape",
    "transpose",
    "softmax",
    "softmax_cross_entropy",
    "layer_norm",
    "embedding",
    "conv2d",
    "conv2d_cnhw",
    "softmax_cross_entropy_workers",
    "legacy_conv_kernels",
    "legacy_kernels_active",
    "avg_pool2d",
]
