"""repro — reproduction of *Towards Scalable Distributed Training of
Deep Learning on Public Cloud Clusters* (Shi et al., MLSys 2021).

The package implements the paper's system on a deterministic virtual
cluster substrate:

* :mod:`repro.compression` — **MSTopK**, the approximate GPU-friendly
  top-k operator (Algorithm 1), plus the exact/DGC baselines and error
  feedback;
* :mod:`repro.comm` — **CommLib**: HiTopKComm (Algorithm 2) and the
  dense/sparse aggregation baselines (TreeAR, 2DTAR, NaiveAG);
* :mod:`repro.data` — **DataCache**: the multi-level (NFS → local FS →
  memory KV) input pipeline;
* :mod:`repro.pto` — **PTO**: parallel tensor operators for LARS/LAMB;
* :mod:`repro.cluster` / :mod:`repro.collectives` — the virtual
  public-cloud cluster and functional collectives they all run on;
* :mod:`repro.train` / :mod:`repro.perf` / :mod:`repro.experiments` —
  end-to-end training, the calibrated performance model, and one
  harness per paper table/figure;
* :mod:`repro.elastic` — preemption-aware elastic training over the
  same substrate: churn schedules, membership epochs, checkpoint
  rollback, and spot-market cost accounting;
* :mod:`repro.sched` — multi-tenant scheduling of many jobs on one
  shared cluster: pluggable placement policies, NIC-contention-aware
  throughput, priority preemption and autoscaling through the elastic
  membership machinery.

Quickstart::

    from repro.cluster import make_cluster
    from repro.comm import HiTopKComm
    from repro.compression import MSTopK

    net = make_cluster(4, "tencent", gpus_per_node=8)
    scheme = HiTopKComm(net, density=0.01, compressor=MSTopK())
    result = scheme.aggregate(worker_gradients)
    print(result.breakdown.format())
"""

from repro.api import (
    RunConfig,
    RunReport,
    available,
    build_scheme,
    register_cluster,
    register_compressor,
    register_model,
    register_scheme,
    run,
)
from repro.cluster import ClusterTopology, NetworkModel, make_cluster, paper_testbed
from repro.comm import (
    HiTopKComm,
    NaiveAllGather,
    RingAllReduce,
    TimeBreakdown,
    Torus2DAllReduce,
    TreeAllReduce,
)
from repro.compression import (
    DGCTopK,
    ErrorFeedback,
    ExactTopK,
    MSTopK,
    RandomK,
    mstopk_select,
)
from repro.data import CachedDataLoader, DataCache, SyntheticImageDataset
from repro.elastic import ElasticTrainer, MembershipView, PoissonChurn
from repro.models import resnet50_profile, transformer_profile, vgg19_profile
from repro.sched import JobSpec, MultiTenantScheduler, register_policy
from repro.optim import LAMB, LARS, SGD
from repro.pto import ParallelTensorOperator, lars_learning_rates_pto
from repro.train import ConvergenceRunner, DistributedTrainer, make_scheme

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # api facade
    "RunConfig",
    "RunReport",
    "run",
    "available",
    "build_scheme",
    "register_scheme",
    "register_compressor",
    "register_model",
    "register_cluster",
    # cluster
    "ClusterTopology",
    "NetworkModel",
    "make_cluster",
    "paper_testbed",
    # compression
    "MSTopK",
    "mstopk_select",
    "ExactTopK",
    "DGCTopK",
    "RandomK",
    "ErrorFeedback",
    # comm
    "HiTopKComm",
    "NaiveAllGather",
    "TreeAllReduce",
    "Torus2DAllReduce",
    "RingAllReduce",
    "TimeBreakdown",
    # data
    "DataCache",
    "CachedDataLoader",
    "SyntheticImageDataset",
    # pto / optim
    "ParallelTensorOperator",
    "lars_learning_rates_pto",
    "SGD",
    "LARS",
    "LAMB",
    # train
    "DistributedTrainer",
    "ConvergenceRunner",
    "make_scheme",
    # elastic
    "ElasticTrainer",
    "MembershipView",
    "PoissonChurn",
    # sched
    "JobSpec",
    "MultiTenantScheduler",
    "register_policy",
    # models
    "resnet50_profile",
    "vgg19_profile",
    "transformer_profile",
]
