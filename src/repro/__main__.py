"""``python -m repro`` — run the full reproduction harness."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
