"""``python -m repro`` — the unified CLI (run / list / experiments)."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
