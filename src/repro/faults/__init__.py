"""Registry-pluggable fault injection and recovery drills (``repro.faults``).

The subsystem perturbs *live* simulation state mid-run — node crashes
without the two-minute warning, NIC degradation, persistent stragglers,
checkpoint corruption, AZ-wide spot reclaims — through the existing
elastic-membership and multi-tenant-scheduler machinery, never around
it.  Plans are seeded and deterministic; every injection/detection/
recovery step lands in a wall-clock-free :class:`~repro.faults.log.FaultLog`
so replay is bit-identical at any ``--jobs`` width.  See
``docs/faults.md``.
"""

from repro.faults.drill import drill_config, drills_payload, run_drills
from repro.faults.health import KIND_WEIGHTS, HealthPolicy, NodeHealthLedger
from repro.faults.injector import FaultInjector, RunContext
from repro.faults.log import PHASES, FaultLog
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.registry import (
    FAULT_TARGETS,
    FAULTS,
    JITTER_DISTS,
    Fault,
    FaultError,
    gray_jitter_draw,
    register_fault,
)
from repro.faults.sched_driver import SchedContext, SchedFaultDriver

__all__ = [
    "FAULTS",
    "FAULT_TARGETS",
    "JITTER_DISTS",
    "Fault",
    "FaultError",
    "register_fault",
    "gray_jitter_draw",
    "FaultEvent",
    "FaultPlan",
    "FaultLog",
    "PHASES",
    "FaultInjector",
    "RunContext",
    "SchedFaultDriver",
    "SchedContext",
    "KIND_WEIGHTS",
    "HealthPolicy",
    "NodeHealthLedger",
    "drill_config",
    "run_drills",
    "drills_payload",
]
