"""Recovery drills: a seeded fault storm against every aggregation scheme.

A *drill* runs the same elastic workload twice per scheme — once
fault-free (the baseline) and once under :data:`STORM_EVENTS`, a
composed storm of five fault kinds (NIC flap, persistent straggler,
unwarned node crash, checkpoint corruption, AZ-wide spot reclaim) — and
scores detection-to-recovery latency, goodput under the storm vs the
no-fault baseline, lost work, and $ cost.  Results emit as one
BENCH-schema payload (``BENCH_fault_drills.json``); the per-scheme fault
log digests pin bit-identical replay across hosts and ``--jobs`` widths.
"""

from __future__ import annotations

from repro.api.config import RunConfig
from repro.api.registry import SCHEMES
from repro.utils.tables import format_table

#: Keep in sync with ``benchmarks/conftest.py::BENCH_SCHEMA_VERSION``.
BENCH_SCHEMA_VERSION = 1

#: The composed storm (``at`` in wall iterations of an 80-iteration run):
#: a NIC flap and a straggler window overlap the early run, an unwarned
#: crash forces a rollback, the newest checkpoint is then corrupted so
#: the AZ-wide reclaim that follows must fall back through the CRC
#: detection path to the older slot.
STORM_EVENTS = (
    {"kind": "nic-degrade", "at": 14, "duration": 12, "scale": 0.35},
    {"kind": "straggler", "at": 24, "duration": 18, "stretch": 2.5},
    {"kind": "node-crash", "at": 44},
    {"kind": "checkpoint-corrupt", "at": 52},
    {"kind": "az-reclaim", "at": 60, "fraction": 0.5},
)

#: Columns of the ``BENCH_fault_drills.json`` rows.
DRILL_COLUMNS = [
    "scheme",
    "injected",
    "recovered",
    "absorbed",
    "detect_recover_s",
    "baseline_goodput",
    "storm_goodput",
    "goodput_ratio",
    "lost_iterations",
    "corrupt_checkpoints",
    "baseline_usd_per_kiter",
    "storm_usd_per_kiter",
    "log_digest",
]


def drill_config(
    scheme: str,
    *,
    storm: bool,
    seed: int = 7,
    iterations: int = 80,
    num_nodes: int = 4,
) -> RunConfig:
    """The drill workload for one scheme: small, fast, fault-heavy.

    ``schedule: none`` keeps churn out of the picture — every membership
    change in a storm run is fault-injected, so the baseline/storm delta
    is attributable entirely to the plan.
    """
    data = {
        "name": f"fault-drill-{scheme}" + ("" if storm else "-baseline"),
        "seed": seed,
        "cluster": {"instance": "tencent", "num_nodes": num_nodes, "gpus_per_node": 2},
        "comm": {"scheme": scheme, "density": 0.05},
        "train": {"model": "mlp-tiny", "num_samples": 256, "local_batch": 8},
        "elastic": {
            "iterations": iterations,
            "schedule": "none",
            "checkpoint_every": 20,
            "min_nodes": 1,
        },
    }
    if storm:
        data["faults"] = {"events": [dict(event) for event in STORM_EVENTS]}
    return RunConfig.from_dict(data)


def run_drills(schemes=None, *, seed: int = 7, sweeper=None) -> list[dict]:
    """Baseline + storm per scheme; returns one scored dict per scheme.

    ``sweeper`` is an optional
    :class:`~repro.exec.sweeper.ParallelSweeper`; results are
    bit-identical to the serial loop at any pool width (pinned by
    ``benchmarks/bench_fault_drills.py``).
    """
    names = (
        [SCHEMES.canonical(s) or s for s in schemes]
        if schemes
        else SCHEMES.available()
    )
    configs = []
    for scheme in names:
        configs.append(drill_config(scheme, storm=False, seed=seed))
        configs.append(drill_config(scheme, storm=True, seed=seed))
    if sweeper is not None:
        reports = sweeper.run_configs(configs)
    else:
        from repro.api.facade import run

        reports = [run(config) for config in configs]
    results = []
    for i, scheme in enumerate(names):
        baseline, storm = reports[2 * i], reports[2 * i + 1]
        fault_summary = storm.faults["summary"]
        baseline_goodput = baseline.summary["goodput_it_per_s"]
        storm_goodput = storm.summary["goodput_it_per_s"]
        results.append(
            {
                "scheme": scheme,
                "injected": fault_summary["injected"],
                "recovered": fault_summary["recovered"],
                "absorbed": fault_summary["absorbed"],
                "detect_recover_s": fault_summary["mean_detect_recover_s"],
                "baseline_goodput": round(baseline_goodput, 6),
                "storm_goodput": round(storm_goodput, 6),
                "goodput_ratio": (
                    round(storm_goodput / baseline_goodput, 6)
                    if baseline_goodput
                    else None
                ),
                "lost_iterations": storm.elastic_run.lost_iterations,
                "corrupt_checkpoints": storm.elastic_run.corrupt_checkpoints,
                "baseline_usd_per_kiter": round(
                    baseline.summary["usd_per_kilo_iter"], 6
                ),
                "storm_usd_per_kiter": round(storm.summary["usd_per_kilo_iter"], 6),
                "log_digest": fault_summary["digest"],
                # Full structured log, for callers that audit the replay
                # (stripped from the BENCH rows; digest pins it there).
                "entries": storm.faults["entries"],
            }
        )
    return results


def drills_payload(
    schemes=None, *, seed: int = 7, sweeper=None, bench: str = "fault_drills"
) -> dict:
    """One BENCH-schema payload covering a full drill matrix."""
    results = run_drills(schemes, seed=seed, sweeper=sweeper)
    rows = [[result[column] for column in DRILL_COLUMNS] for result in results]
    title = (
        f"{bench}: {len(results)} schemes x {len(STORM_EVENTS)}-fault storm "
        f"(seed {seed})"
    )
    text = format_table(DRILL_COLUMNS, rows, title=title)
    return {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "structured": True,
        "columns": list(DRILL_COLUMNS),
        "rows": rows,
        "text": text if text.endswith("\n") else text + "\n",
        "meta": {
            "seed": seed,
            "schemes": [result["scheme"] for result in results],
            "storm": [dict(event) for event in STORM_EVENTS],
            "digests": {
                result["scheme"]: result["log_digest"] for result in results
            },
        },
    }


__all__ = [
    "STORM_EVENTS",
    "DRILL_COLUMNS",
    "drill_config",
    "run_drills",
    "drills_payload",
]
