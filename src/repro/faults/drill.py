"""Recovery drills: a seeded fault storm against every aggregation scheme.

A *drill* runs the same elastic workload twice per scheme — once
fault-free (the baseline) and once under :data:`STORM_EVENTS`, a
composed storm of seven fault kinds (NIC flap, persistent straggler,
gray link, unwarned node crash, checkpoint corruption, fail-slow disk,
AZ-wide spot reclaim) — and scores detection-to-recovery latency,
goodput under the storm vs the no-fault baseline, lost work, and $
cost.  A second act, the *policy drill*, replays
:data:`GRAY_STORM_EVENTS` through the multi-tenant scheduler once per
placement policy and scores the health-ledger-driven ``fault-aware``
policy against the fault-blind built-ins.  Results emit as one
BENCH-schema payload (``BENCH_fault_drills.json``); the per-scheme fault
log digests pin bit-identical replay across hosts and ``--jobs`` widths.
"""

from __future__ import annotations

from repro.api.config import RunConfig, SchedConfig
from repro.api.registry import SCHEMES
from repro.utils.tables import format_table

#: Keep in sync with ``benchmarks/conftest.py::BENCH_SCHEMA_VERSION``.
BENCH_SCHEMA_VERSION = 1

#: The composed storm (``at`` in wall iterations of an 80-iteration run):
#: a NIC flap, a fail-slow disk, and a straggler window overlap the
#: early run — the disk window covers the iteration-20 and -40
#: checkpoint writes, blowing the ``checkpoint_timeout`` budget on each
#: (abandon + retry on the fallback slot) — a gray link adds stochastic
#: comm jitter, an unwarned crash forces a rollback through the
#: still-slow disk, the newest checkpoint is then corrupted so the
#: AZ-wide reclaim that follows must fall back through the CRC detection
#: path to the older slot.
STORM_EVENTS = (
    {"kind": "nic-degrade", "at": 14, "duration": 12, "scale": 0.35},
    {"kind": "disk-slow", "at": 15, "duration": 30, "stretch": 6.0},
    {"kind": "straggler", "at": 24, "duration": 18, "stretch": 2.5},
    {"kind": "gray-net", "at": 34, "duration": 10, "loss_rate": 0.05, "jitter": 0.4},
    {"kind": "node-crash", "at": 44},
    {"kind": "checkpoint-corrupt", "at": 52},
    {"kind": "az-reclaim", "at": 60, "fraction": 0.5},
)

#: Over-budget checkpoint writes are abandoned at this many seconds and
#: retried on the fallback slot (healthy writes cost 1 s; the disk-slow
#: window stretches them to 6 s, so the budget trips).
STORM_CHECKPOINT_TIMEOUT = 4.0

#: Columns of the ``BENCH_fault_drills.json`` rows.
DRILL_COLUMNS = [
    "scheme",
    "injected",
    "recovered",
    "absorbed",
    "detect_recover_s",
    "baseline_goodput",
    "storm_goodput",
    "goodput_ratio",
    "lost_iterations",
    "corrupt_checkpoints",
    "baseline_usd_per_kiter",
    "storm_usd_per_kiter",
    "log_digest",
]


def drill_config(
    scheme: str,
    *,
    storm: bool,
    seed: int = 7,
    iterations: int = 80,
    num_nodes: int = 4,
) -> RunConfig:
    """The drill workload for one scheme: small, fast, fault-heavy.

    ``schedule: none`` keeps churn out of the picture — every membership
    change in a storm run is fault-injected, so the baseline/storm delta
    is attributable entirely to the plan.
    """
    data = {
        "name": f"fault-drill-{scheme}" + ("" if storm else "-baseline"),
        "seed": seed,
        "cluster": {"instance": "tencent", "num_nodes": num_nodes, "gpus_per_node": 2},
        "comm": {"scheme": scheme, "density": 0.05},
        "train": {"model": "mlp-tiny", "num_samples": 256, "local_batch": 8},
        "elastic": {
            "iterations": iterations,
            "schedule": "none",
            "checkpoint_every": 20,
            "min_nodes": 1,
        },
    }
    if storm:
        data["faults"] = {
            "events": [dict(event) for event in STORM_EVENTS],
            "checkpoint_timeout": STORM_CHECKPOINT_TIMEOUT,
        }
    return RunConfig.from_dict(data)


def run_drills(schemes=None, *, seed: int = 7, sweeper=None) -> list[dict]:
    """Baseline + storm per scheme; returns one scored dict per scheme.

    ``sweeper`` is an optional
    :class:`~repro.exec.sweeper.ParallelSweeper`; results are
    bit-identical to the serial loop at any pool width (pinned by
    ``benchmarks/bench_fault_drills.py``).
    """
    names = (
        [SCHEMES.canonical(s) or s for s in schemes]
        if schemes
        else SCHEMES.available()
    )
    configs = []
    for scheme in names:
        configs.append(drill_config(scheme, storm=False, seed=seed))
        configs.append(drill_config(scheme, storm=True, seed=seed))
    if sweeper is not None:
        reports = sweeper.run_configs(configs)
    else:
        from repro.api.facade import run

        reports = [run(config) for config in configs]
    results = []
    for i, scheme in enumerate(names):
        baseline, storm = reports[2 * i], reports[2 * i + 1]
        fault_summary = storm.faults["summary"]
        baseline_goodput = baseline.summary["goodput_it_per_s"]
        storm_goodput = storm.summary["goodput_it_per_s"]
        results.append(
            {
                "scheme": scheme,
                "injected": fault_summary["injected"],
                "recovered": fault_summary["recovered"],
                "absorbed": fault_summary["absorbed"],
                "detect_recover_s": fault_summary["mean_detect_recover_s"],
                "baseline_goodput": round(baseline_goodput, 6),
                "storm_goodput": round(storm_goodput, 6),
                "goodput_ratio": (
                    round(storm_goodput / baseline_goodput, 6)
                    if baseline_goodput
                    else None
                ),
                "lost_iterations": storm.elastic_run.lost_iterations,
                "corrupt_checkpoints": storm.elastic_run.corrupt_checkpoints,
                "baseline_usd_per_kiter": round(
                    baseline.summary["usd_per_kilo_iter"], 6
                ),
                "storm_usd_per_kiter": round(storm.summary["usd_per_kilo_iter"], 6),
                "log_digest": fault_summary["digest"],
                # Full structured log, for callers that audit the replay
                # (stripped from the BENCH rows; digest pins it there).
                "entries": storm.faults["entries"],
            }
        )
    return results


# ---------------------------------------------------------------------------
# Policy drill: gray-failure storm through the multi-tenant scheduler
# ---------------------------------------------------------------------------

#: The gray-failure storm for the placement-policy drill (``at`` in
#: virtual seconds).  The storm opens on an *idle* cluster — the flaky
#: hardware shows its colours before the first job arrives, so the
#: health ledger has signal when placement decisions start.  The flaky
#: nodes sit at *low* ids on purpose: every fault-blind built-in breaks
#: ties toward ascending id, so it places (and re-places, after each
#: crash) work straight onto the hardware the ledger would have dodged.
#: Node 0 flaps (crash + repair, four times — quarantined at its second
#: flap and probed back after the cool-down), node 1 straggles for most
#: of the run, node 2 carries a gray link, and an AZ reclaim late in
#: the storm takes out a contiguous block.
GRAY_STORM_EVENTS = (
    {"kind": "node-crash", "at": 20, "duration": 30, "node": 0,
     "repeat": 4, "period": 90},
    {"kind": "straggler", "at": 25, "duration": 500, "stretch": 3.0, "node": 1,
     "repeat": 2, "period": 30},
    {"kind": "gray-net", "at": 30, "duration": 450, "loss_rate": 0.12,
     "jitter": 0.8, "node": 2, "repeat": 2, "period": 30},
    {"kind": "az-reclaim", "at": 240, "duration": 60, "fraction": 0.25},
)

#: Health-ledger knobs for the policy drill: the threshold is low enough
#: that node 0's second flap quarantines it, and the cool-down long
#: enough that it stays benched through the storm's worst stretch.
GRAY_STORM_HEALTH = {
    "quarantine_threshold": 1.5,
    "health_half_life": 240.0,
    "probe_cooldown": 240.0,
}

#: Placement policies the drill compares (fault-aware last, so the
#: fault-blind baselines read first in the table).
POLICY_DRILL_POLICIES = ("bin-pack", "spread", "network-aware", "fault-aware")

#: Columns of the ``meta.policy_drill`` rows.
POLICY_DRILL_COLUMNS = [
    "policy",
    "injected",
    "recovered",
    "requeues",
    "quarantines",
    "lost_iterations",
    "mean_recovery_s",
    "storm_goodput",
    "baseline_goodput",
    "goodput_ratio",
    "makespan_s",
    "usd_per_kiter",
    "log_digest",
]


def gray_storm_config(
    policies=None, *, storm: bool = True, seed: int = 7
) -> SchedConfig:
    """The policy-drill scenario: four tenants, eight nodes, gray storm.

    Demand leaves slack (peak demand is six of eight nodes), so a
    policy that *can* read the health ledger always has clean nodes to
    steer to, and every job arrives *after* the storm opens — placement
    happens with a warm ledger, which is exactly the regime the drill
    scores.  The deadline/priority jobs are the ones fault-aware keeps
    off suspect hardware.
    """
    data = {
        "name": "gray-storm" + ("" if storm else "-baseline"),
        "seed": seed,
        "cluster": {"instance": "tencent", "num_nodes": 8, "gpus_per_node": 2},
        "policies": list(policies) if policies else list(POLICY_DRILL_POLICIES),
        "jobs": [
            {
                "name": "resnet-prod",
                "profile": "resnet50",
                "scheme": "mstopk",
                "density": 0.01,
                "iterations": 800,
                "priority": 1,
                "arrival_seconds": 60.0,
                "min_nodes": 1,
                "max_nodes": 2,
            },
            {
                "name": "bert-deadline",
                "profile": "transformer",
                "scheme": "dense",
                "iterations": 300,
                "deadline_seconds": 900.0,
                "arrival_seconds": 70.0,
                "min_nodes": 1,
                "max_nodes": 2,
            },
            {
                "name": "vgg-batch",
                "profile": "vgg19",
                "scheme": "dense",
                "iterations": 200,
                "arrival_seconds": 80.0,
                "min_nodes": 1,
                "max_nodes": 1,
            },
            {
                "name": "resnet-scavenge",
                "profile": "resnet50",
                "scheme": "topk",
                "density": 0.01,
                "iterations": 150,
                "arrival_seconds": 90.0,
                "min_nodes": 1,
                "max_nodes": 1,
            },
        ],
    }
    if storm:
        data["faults"] = {
            "events": [dict(event) for event in GRAY_STORM_EVENTS],
            **GRAY_STORM_HEALTH,
        }
    return SchedConfig.from_dict(data)


def run_policy_drills(policies=None, *, seed: int = 7, sweeper=None) -> list[dict]:
    """Gray storm + fault-free baseline per policy; one scored dict each.

    Goodput-under-storm is the cluster goodput of the storm run; the
    ratio normalises it by the same policy's fault-free run, so the
    number isolates how much of the healthy schedule each policy keeps
    when the hardware turns gray.
    """
    storm_cfg = gray_storm_config(policies, seed=seed)
    base_cfg = gray_storm_config(policies, seed=seed, storm=False)
    if sweeper is not None:
        storm_reports = sweeper.run_sched_policies(storm_cfg)
        base_reports = sweeper.run_sched_policies(base_cfg)
    else:
        from repro.api.facade import run_sched

        storm_reports = run_sched(storm_cfg)
        base_reports = run_sched(base_cfg)
    results = []
    for policy, report in storm_reports.items():
        log = report.fault_log
        baseline = base_reports[policy]
        iters = sum(outcome.iterations for outcome in report.jobs)
        results.append(
            {
                "policy": policy,
                "injected": log["injected"],
                "recovered": log["recovered"],
                "requeues": log["requeues"],
                "quarantines": log["health"]["quarantines"],
                "lost_iterations": round(log["lost_iterations"], 6),
                "mean_recovery_s": (
                    round(log["mean_detect_recover_s"], 6)
                    if log["mean_detect_recover_s"] is not None
                    else None
                ),
                "storm_goodput": round(report.cluster_goodput_it_per_s, 6),
                "baseline_goodput": round(baseline.cluster_goodput_it_per_s, 6),
                "goodput_ratio": (
                    round(
                        report.cluster_goodput_it_per_s
                        / baseline.cluster_goodput_it_per_s,
                        6,
                    )
                    if baseline.cluster_goodput_it_per_s
                    else None
                ),
                "makespan_s": round(report.makespan_s, 3),
                "usd_per_kiter": (
                    round(report.total_cost_usd / (iters / 1000.0), 6)
                    if iters
                    else None
                ),
                "log_digest": log["digest"],
            }
        )
    return results


def drills_payload(
    schemes=None, *, seed: int = 7, sweeper=None, bench: str = "fault_drills"
) -> dict:
    """One BENCH-schema payload covering a full drill matrix.

    Rows are the per-scheme elastic drills; ``meta.policy_drill`` holds
    the scheduler-side gray-storm comparison (same columns/rows shape,
    nested because the BENCH schema keys rows by the scheme axis).
    """
    results = run_drills(schemes, seed=seed, sweeper=sweeper)
    rows = [[result[column] for column in DRILL_COLUMNS] for result in results]
    title = (
        f"{bench}: {len(results)} schemes x {len(STORM_EVENTS)}-fault storm "
        f"(seed {seed})"
    )
    text = format_table(DRILL_COLUMNS, rows, title=title)
    policy_results = run_policy_drills(seed=seed, sweeper=sweeper)
    return {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "structured": True,
        "columns": list(DRILL_COLUMNS),
        "rows": rows,
        "text": text if text.endswith("\n") else text + "\n",
        "meta": {
            "seed": seed,
            "schemes": [result["scheme"] for result in results],
            "storm": [dict(event) for event in STORM_EVENTS],
            "digests": {
                result["scheme"]: result["log_digest"] for result in results
            },
            "policy_drill": {
                "columns": list(POLICY_DRILL_COLUMNS),
                "rows": [
                    [result[column] for column in POLICY_DRILL_COLUMNS]
                    for result in policy_results
                ],
                "policies": [result["policy"] for result in policy_results],
                "storm": [dict(event) for event in GRAY_STORM_EVENTS],
                "health": dict(GRAY_STORM_HEALTH),
                "digests": {
                    result["policy"]: result["log_digest"]
                    for result in policy_results
                },
            },
        },
    }


__all__ = [
    "STORM_EVENTS",
    "STORM_CHECKPOINT_TIMEOUT",
    "DRILL_COLUMNS",
    "GRAY_STORM_EVENTS",
    "GRAY_STORM_HEALTH",
    "POLICY_DRILL_POLICIES",
    "POLICY_DRILL_COLUMNS",
    "drill_config",
    "gray_storm_config",
    "run_drills",
    "run_policy_drills",
    "drills_payload",
]
