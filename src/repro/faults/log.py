"""Structured, wall-clock-free fault event log.

Every injection, detection, and recovery step appends one entry:

``{"seq", "t", "phase", "kind", "fault_id", "target", "detail"?}``

``t`` is *virtual* simulation seconds (never host wall clock), ``seq``
is the append index, and ``detail`` holds JSON scalars only — so the
serialised log is byte-identical across hosts, repeat runs, and any
``--jobs`` width, and :meth:`FaultLog.digest` pins that in benchmark
payloads.
"""

from __future__ import annotations

import hashlib
import json

#: The lifecycle phases an entry can record.  ``quarantine`` and
#: ``probe`` are the health ledger's transitions (sched runs only).
PHASES = ("inject", "detect", "recover", "repair", "absorb", "quarantine", "probe")


class FaultLog:
    """Append-only event log with deterministic serialisation."""

    def __init__(self) -> None:
        self._entries: list[dict] = []

    def __len__(self) -> int:
        return len(self._entries)

    def append(
        self,
        phase: str,
        *,
        t: float,
        kind: str,
        fault_id: int,
        target: str,
        **detail,
    ) -> dict:
        """Record one lifecycle step; returns the entry."""
        if phase not in PHASES:
            raise ValueError(f"unknown log phase {phase!r}; expected one of {PHASES}")
        entry = {
            "seq": len(self._entries),
            "t": round(float(t), 9),
            "phase": phase,
            "kind": str(kind),
            "fault_id": int(fault_id),
            "target": str(target),
        }
        if detail:
            entry["detail"] = {
                key: _jsonable(value) for key, value in sorted(detail.items())
            }
        self._entries.append(entry)
        return entry

    def to_dicts(self) -> list[dict]:
        """A deep-enough copy safe to embed in payloads."""
        return [
            {**entry, **({"detail": dict(entry["detail"])} if "detail" in entry else {})}
            for entry in self._entries
        ]

    def to_json(self) -> str:
        """Canonical serialisation (sorted keys, no whitespace)."""
        return json.dumps(self._entries, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Short stable hash of the canonical serialisation."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]

    def phase_counts(self) -> dict[str, int]:
        counts = {phase: 0 for phase in PHASES}
        for entry in self._entries:
            counts[entry["phase"]] += 1
        return {phase: n for phase, n in counts.items() if n}

    def latencies(self, start: str = "inject", end: str = "recover") -> dict[int, float]:
        """Per-fault virtual latency from first ``start`` to last ``end``."""
        started: dict[int, float] = {}
        finished: dict[int, float] = {}
        for entry in self._entries:
            fid = entry["fault_id"]
            if entry["phase"] == start and fid not in started:
                started[fid] = entry["t"]
            elif entry["phase"] == end and fid in started:
                finished[fid] = entry["t"]
        return {
            fid: round(finished[fid] - started[fid], 9) for fid in sorted(finished)
        }

    def mean_latency(self, start: str = "inject", end: str = "recover") -> float | None:
        values = list(self.latencies(start, end).values())
        if not values:
            return None
        return round(sum(values) / len(values), 9)


def _jsonable(value):
    """Coerce a detail value to JSON scalars/lists (fail loudly otherwise)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    # numpy scalars and the like
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"fault log detail values must be JSON scalars, got {value!r}")


__all__ = ["PHASES", "FaultLog"]
