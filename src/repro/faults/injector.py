"""Fault injection into live :class:`~repro.elastic.elastic_trainer.ElasticTrainer` runs.

The injector owns all mutable fault state for one elastic simulation:
the pending half of the :class:`~repro.faults.plan.FaultPlan`, active
NIC-degradation and straggler windows, corrupted-checkpoint bookkeeping,
and the structured :class:`~repro.faults.log.FaultLog`.  The trainer
calls :meth:`on_iteration` at the top of every wall iteration; faults
flow through the *existing* machinery — crashes revoke nodes via
``MembershipView``, degradations rebuild the comm scheme on a
:meth:`~repro.cluster.network.NetworkModel.degraded` network, and
checkpoint corruption damages real bytes on disk so the CRC verifier in
:mod:`repro.train.checkpoint` performs the detection.

All randomness derives from ``plan.seed`` (never the trainer's RNGs), so
a fault plan neither perturbs the no-fault random streams nor varies
across ``--jobs`` widths.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass

from repro.api.registry import build_scheme
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.faults.registry import FAULTS, gray_jitter_draw
from repro.utils.seeding import derive_seed, new_rng

#: How many bytes :func:`_flip_bytes` inverts mid-file.
_FLIP_SPAN = 64


@dataclass
class RunContext:
    """Mutable view of the trainer's loop state passed to fault hooks."""

    trainer: object
    wall: int
    useful: int
    report: object
    x: object
    y: object


class FaultInjector:
    """Applies a :class:`FaultPlan` to one elastic training run."""

    def __init__(self, plan: FaultPlan, log: FaultLog | None = None) -> None:
        if plan.target != "run":
            raise ValueError(
                f"FaultInjector needs a 'run' plan, got target {plan.target!r}"
            )
        self.plan = plan
        self.log = log if log is not None else FaultLog()
        self.rng = new_rng(plan.seed)
        self._pending = deque(plan.events)  # already sorted by (at, fault_id)
        # Active windows: (until_wall_iteration, value, event).
        self._nic: list[tuple[float, float, object]] = []
        self._stragglers: dict[int, tuple[float, float, object]] = {}
        # Gray-link windows: (until, event, per-window jitter rng).
        self._gray: list[tuple[float, object, object]] = []
        # Fail-slow disk windows: (until, stretch, event).
        self._disk: list[tuple[float, float, object]] = []
        # str(path) -> (event, t_inject) for damaged-but-undetected files.
        self._corrupted: dict[str, tuple[object, float]] = {}
        # (membership epoch, scale, loss) -> degraded comm time breakdown.
        self._breakdown_cache: dict[tuple[int, float, float], object] = {}
        self.injected = 0
        self.recovered = 0
        self.absorbed = 0
        self.lost_iterations = 0
        self.checkpoint_retries = 0

    # -- trainer hooks ---------------------------------------------------------
    def on_iteration(self, trainer, wall, useful, report, x, y) -> int:
        """Fire due faults and expire ended windows; returns the new step."""
        self._expire(wall, report)
        ctx = RunContext(
            trainer=trainer, wall=wall, useful=useful, report=report, x=x, y=y
        )
        while self._pending and self._pending[0].at <= wall + 1e-12:
            event = self._pending.popleft()
            FAULTS.get(event.kind)().apply_run(self, event, ctx)
        return ctx.useful

    def on_checkpoint_saved(self, path) -> None:
        """A slot was overwritten: any damage it carried is gone."""
        self._corrupted.pop(str(path), None)

    def on_corrupt_detected(self, path, report) -> None:
        """The CRC verifier rejected ``path`` during a rollback."""
        t = report.total_seconds
        record = self._corrupted.pop(str(path), None)
        if record is None:
            # Damage we did not inject (never expected in simulation;
            # logged rather than dropped so drills stay auditable).
            self.log.append(
                "detect",
                t=t,
                kind="checkpoint-corrupt",
                fault_id=-1,
                target="run",
                path=os.path.basename(str(path)),
                attributed=False,
            )
            return
        event, t_inject = record
        self.recovered += 1
        self.log.append(
            "detect",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            path=os.path.basename(str(path)),
            checksum="crc32-mismatch",
        )
        self.log.append(
            "recover",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            latency_s=round(t - t_inject, 9),
            action="fell back to previous checkpoint",
        )

    # -- fault application helpers (called by Fault subclasses) ----------------
    def crash(self, event, ctx, nodes) -> None:
        """Unwarned loss of ``nodes``; rollback + rebuild via the trainer."""
        report = ctx.report
        t0 = report.total_seconds
        self.injected += 1
        self.log.append(
            "inject",
            t=t0,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            iteration=ctx.wall,
            nodes=[int(n) for n in nodes],
        )
        restored, lost, victims = ctx.trainer.apply_fault_revocation(
            nodes, report, ctx.x, ctx.y, ctx.useful
        )
        if not victims:
            self.absorbed += 1
            self.log.append(
                "absorb",
                t=report.total_seconds,
                kind=event.kind,
                fault_id=event.fault_id,
                target="run",
                reason="at min_nodes floor or nodes not live",
            )
            return
        # Synchronous training notices the dead peer on the very next
        # collective, so detection is immediate in virtual time.
        self.log.append(
            "detect",
            t=t0,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            victims=victims,
        )
        self.lost_iterations += lost
        t1 = report.total_seconds
        self.recovered += 1
        self.log.append(
            "recover",
            t=t1,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            latency_s=round(t1 - t0, 9),
            lost_iterations=lost,
            world_size=ctx.trainer.membership.world_size,
        )
        ctx.useful = restored

    def degrade_nic(self, event, ctx) -> None:
        """Open a bandwidth-degradation window (duration=0 -> permanent)."""
        t = ctx.report.total_seconds
        self.injected += 1
        self._nic.append((event.until, float(event.scale), event))
        self.log.append(
            "inject",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            iteration=ctx.wall,
            scale=float(event.scale),
        )
        # Bandwidth telemetry flags the slow link as soon as a step
        # runs over it.
        self.log.append(
            "detect",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            source="per-step bandwidth telemetry",
        )

    def add_straggler(self, event, ctx) -> None:
        """Pin a compute-stretch factor on one node for a window."""
        t = ctx.report.total_seconds
        live = ctx.trainer.membership.live_nodes
        if event.node is not None:
            node = int(event.node)
        else:
            node = int(self.rng.choice(live))
        self.injected += 1
        if node not in live:
            self.absorbed += 1
            self.log.append(
                "absorb",
                t=t,
                kind=event.kind,
                fault_id=event.fault_id,
                target="run",
                reason=f"node {node} not live",
            )
            return
        self._stragglers[node] = (event.until, float(event.stretch), event)
        self.log.append(
            "inject",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            iteration=ctx.wall,
            node=node,
            stretch=float(event.stretch),
        )
        self.log.append(
            "detect",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            source="per-step straggler telemetry",
        )

    def gray_net(self, event, ctx) -> None:
        """Open a gray-link window: packet loss + per-iteration jitter."""
        t = ctx.report.total_seconds
        self.injected += 1
        # Each window owns its jitter stream, derived from the plan seed
        # and the fault id — independent of pool width and of every
        # other random stream in the run.
        rng = new_rng(derive_seed(self.plan.seed, "gray-net", event.fault_id))
        self._gray.append((event.until, event, rng))
        self.log.append(
            "inject",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            iteration=ctx.wall,
            loss_rate=float(event.loss_rate),
            jitter=float(event.jitter),
            jitter_dist=event.jitter_dist,
        )
        self.log.append(
            "detect",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            source="per-link loss/latency telemetry",
        )

    def slow_disk(self, event, ctx) -> None:
        """Open a fail-slow-disk window stretching checkpoint IO."""
        t = ctx.report.total_seconds
        self.injected += 1
        self._disk.append((event.until, float(event.stretch), event))
        self.log.append(
            "inject",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            iteration=ctx.wall,
            stretch=float(event.stretch),
        )
        self.log.append(
            "detect",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            source="checkpoint write latency telemetry",
        )

    def corrupt_checkpoint(self, event, ctx) -> None:
        """Flip bytes in the newest checkpoint file on disk."""
        t = ctx.report.total_seconds
        self.injected += 1
        stack = ctx.trainer.checkpoint_stack()
        if not stack:
            self.absorbed += 1
            self.log.append(
                "absorb",
                t=t,
                kind=event.kind,
                fault_id=event.fault_id,
                target="run",
                reason="no checkpoint on disk",
            )
            return
        path, ckpt_useful = stack[-1]
        _flip_bytes(path)
        self._corrupted[str(path)] = (event, t)
        # No detect entry yet: corruption is latent until the next
        # rollback actually reads the file through the CRC verifier.
        self.log.append(
            "inject",
            t=t,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            iteration=ctx.wall,
            path=os.path.basename(str(path)),
            checkpoint_useful=int(ckpt_useful),
        )

    # -- step-time perturbations ----------------------------------------------
    def nic_scale(self) -> float:
        """The strongest active degradation (1.0 when links are healthy)."""
        if not self._nic:
            return 1.0
        return min(scale for _, scale, _ in self._nic)

    def gray_loss(self) -> float:
        """Combined packet-loss rate across active gray-net windows."""
        survival = 1.0
        for _, event, _ in self._gray:
            survival *= 1.0 - event.loss_rate
        return 1.0 - survival

    def comm_jitter(self) -> float:
        """Stochastic comm stretch for *this* step (>= 1).

        Draws once per active gray-net window from that window's seeded
        stream — the jittery half of a gray link, on top of the clean
        retransmission cost :meth:`comm_breakdown` prices.
        """
        if not self._gray:
            return 1.0
        stretch = 1.0
        for _, event, rng in self._gray:
            stretch *= 1.0 + gray_jitter_draw(event, rng)
        return stretch

    def comm_breakdown(self, trainer):
        """Comm time breakdown for the current step, degradation-aware.

        Covers the deterministic link effects: NIC bandwidth scaling
        and gray-net retransmission loss (jitter is applied separately
        per iteration via :meth:`comm_jitter`).
        """
        scale = self.nic_scale()
        loss = self.gray_loss()
        if scale >= 1.0 and loss <= 0.0:
            return trainer.trainer.scheme.time_model(trainer.timing_d)
        key = (trainer.membership.epoch, scale, loss)
        breakdown = self._breakdown_cache.get(key)
        if breakdown is None:
            network = trainer.membership.network()
            if scale < 1.0:
                network = network.degraded(inter_scale=scale)
            if loss > 0.0:
                network = network.lossy(loss)
            degraded = build_scheme(
                trainer.scheme_name,
                network,
                density=trainer.density,
                wire_bytes=trainer.wire_bytes,
                n_samplings=trainer.n_samplings,
                compressor=trainer.compressor,
            )
            breakdown = degraded.time_model(trainer.timing_d)
            self._breakdown_cache[key] = breakdown
        return breakdown

    def straggled_factors(self, factors, membership):
        """Stretch per-node compute factors for active stragglers."""
        if not self._stragglers:
            return factors
        live = membership.live_nodes
        factors = factors.copy()
        for node in sorted(self._stragglers):
            if node in live:
                _, stretch, _ = self._stragglers[node]
                factors[membership.node_index(node)] *= stretch
        return factors

    # -- checkpoint IO pricing -------------------------------------------------
    def disk_stretch(self) -> float:
        """Worst active fail-slow-disk stretch (1.0 when disks are healthy)."""
        if not self._disk:
            return 1.0
        return max(stretch for _, stretch, _ in self._disk)

    def checkpoint_write_seconds(self, base: float, report) -> float:
        """Virtual cost of one checkpoint write on the (possibly sick) disk.

        Healthy disks pay ``base``.  Under a disk-slow window the write
        stretches; when the stretched cost would exceed the plan's
        ``checkpoint_timeout`` budget, the write is abandoned at the
        budget, backed off for half a healthy write, and retried on the
        fallback slot (a healthy device) — both steps logged under the
        window's fault id.
        """
        stretch = self.disk_stretch()
        if stretch <= 1.0:
            return base
        cost = base * stretch
        timeout = self.plan.checkpoint_timeout
        if timeout <= 0 or cost <= timeout + 1e-12:
            return cost
        _, _, event = max(self._disk, key=lambda rec: (rec[1], -rec[2].fault_id))
        t0 = report.total_seconds
        backoff = 0.5 * base
        total = timeout + backoff + base
        self.checkpoint_retries += 1
        self.log.append(
            "detect",
            t=t0 + timeout,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            action="checkpoint write exceeded budget; abandoned",
            timeout_s=round(float(timeout), 9),
            stretch=float(event.stretch),
        )
        self.log.append(
            "recover",
            t=t0 + total,
            kind=event.kind,
            fault_id=event.fault_id,
            target="run",
            action="retried on fallback slot",
            latency_s=round(float(total), 9),
        )
        return total

    def checkpoint_read_seconds(self, base: float) -> float:
        """Rollback-restore cost: reads stretch like writes, no budget."""
        return base * self.disk_stretch()

    # -- window expiry ---------------------------------------------------------
    def _expire(self, wall: int, report) -> None:
        t = report.total_seconds
        still_degraded = []
        for until, scale, event in self._nic:
            if until <= wall:
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=t,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="run",
                    action="bandwidth restored",
                )
            else:
                still_degraded.append((until, scale, event))
        self._nic = still_degraded
        for node in sorted(self._stragglers):
            until, _, event = self._stragglers[node]
            if until <= wall:
                del self._stragglers[node]
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=t,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="run",
                    node=node,
                    action="compute speed restored",
                )
        still_gray = []
        for until, event, rng in self._gray:
            if until <= wall:
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=t,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="run",
                    action="link health restored",
                )
            else:
                still_gray.append((until, event, rng))
        self._gray = still_gray
        still_slow = []
        for until, stretch, event in self._disk:
            if until <= wall:
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=t,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="run",
                    action="disk speed restored",
                )
            else:
                still_slow.append((until, stretch, event))
        self._disk = still_slow

    # -- reporting -------------------------------------------------------------
    def metrics(self) -> dict:
        """Summary counters + the log digest, JSON-ready."""
        return {
            "injected": self.injected,
            "recovered": self.recovered,
            "absorbed": self.absorbed,
            "lost_iterations": self.lost_iterations,
            "checkpoint_retries": self.checkpoint_retries,
            "mean_detect_recover_s": self.log.mean_latency(),
            "events": len(self.log),
            "digest": self.log.digest(),
        }


def _flip_bytes(path, span: int = _FLIP_SPAN) -> None:
    """Invert ``span`` bytes in the middle of ``path`` (real disk damage)."""
    size = os.path.getsize(path)
    if size == 0:
        return
    span = min(span, size)
    offset = max(0, size // 2 - span // 2)
    with open(path, "r+b") as handle:
        handle.seek(offset)
        chunk = handle.read(span)
        handle.seek(offset)
        handle.write(bytes(b ^ 0xFF for b in chunk))


__all__ = ["FaultInjector", "RunContext"]
