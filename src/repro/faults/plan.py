"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is the fully-resolved form of a
:class:`repro.api.config.FaultsConfig`: plan files loaded, flap trains
(``repeat``/``period``) expanded into concrete events, every kind
checked against the :data:`~repro.faults.registry.FAULTS` registry and
the target surface, and every parameter validated — so a typo fails at
config-load time with one clear :class:`~repro.faults.registry.FaultError`
instead of mid-simulation.

The same plan drives an :class:`~repro.faults.injector.FaultInjector`
(elastic runs, ``at`` in wall iterations) or a
:class:`~repro.faults.sched_driver.SchedFaultDriver` (scheduler runs,
``at`` in virtual seconds); both derive all randomness from
``plan.seed``, so replay is bit-identical at any ``--jobs`` width.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from dataclasses import dataclass

from repro.faults.registry import FAULT_TARGETS, FAULTS, FaultError
from repro.utils.seeding import derive_seed


@dataclass(frozen=True)
class FaultEvent:
    """One concrete, validated fault occurrence."""

    fault_id: int
    kind: str  # canonical registry name
    at: float
    duration: float = 0.0
    scale: float = 0.5
    stretch: float = 2.0
    fraction: float = 0.5
    node: int | None = None
    loss_rate: float = 0.05
    jitter: float = 0.5
    jitter_dist: str = "exp"

    @property
    def until(self) -> float:
        """End of the effect window (``inf`` for permanent effects)."""
        return self.at + self.duration if self.duration > 0 else math.inf


@dataclass(frozen=True)
class FaultPlan:
    """A resolved, sorted, seeded sequence of :class:`FaultEvent`."""

    seed: int
    target: str
    events: tuple[FaultEvent, ...] = ()
    checkpoint_iterations: int = 25
    checkpoint_timeout: float = 0.0
    quarantine_threshold: float = 2.0
    health_half_life: float = 300.0
    probe_cooldown: float = 180.0

    @classmethod
    def from_config(cls, faults, *, seed: int, target: str) -> "FaultPlan":
        """Resolve a ``FaultsConfig`` (or equivalent dict) into a plan.

        ``seed`` is the *run* seed; the plan seed derives from it unless
        the config pins its own.  Raises :class:`FaultError` on any
        invalid kind, parameter, or plan file.
        """
        if target not in FAULT_TARGETS:
            raise FaultError(
                f"unknown fault target {target!r}; expected one of {FAULT_TARGETS}"
            )
        from repro.api.config import FaultConfig, FaultsConfig

        if isinstance(faults, dict):
            from repro.api.config import _faults_from_dict

            faults = _faults_from_dict(faults)
        if not isinstance(faults, FaultsConfig):
            raise FaultError(
                f"'faults' must be a FaultsConfig or mapping, "
                f"got {type(faults).__name__}"
            )
        entries = list(faults.events)
        if faults.plan is not None:
            if entries:
                raise FaultError(
                    "faults 'events' and 'plan' are mutually exclusive: a plan "
                    "file IS the event list"
                )
            entries = _load_plan_file(faults.plan, FaultConfig)
        if faults.checkpoint_iterations < 1:
            raise FaultError(
                "faults checkpoint_iterations must be >= 1, "
                f"got {faults.checkpoint_iterations}"
            )
        if faults.checkpoint_timeout < 0:
            raise FaultError(
                "faults checkpoint_timeout must be >= 0 (0 disables the "
                f"write budget), got {faults.checkpoint_timeout}"
            )
        if faults.quarantine_threshold <= 0:
            raise FaultError(
                "faults quarantine_threshold must be > 0, "
                f"got {faults.quarantine_threshold}"
            )
        if faults.health_half_life <= 0:
            raise FaultError(
                "faults health_half_life must be > 0, "
                f"got {faults.health_half_life}"
            )
        if faults.probe_cooldown < 0:
            raise FaultError(
                "faults probe_cooldown must be >= 0, "
                f"got {faults.probe_cooldown}"
            )
        plan_seed = (
            int(faults.seed)
            if faults.seed is not None
            else derive_seed(seed, "faults")
        )
        events: list[FaultEvent] = []
        for index, entry in enumerate(entries):
            events.extend(_expand(index, entry, target))
        events.sort(key=lambda e: (e.at, e.fault_id))
        return cls(
            seed=plan_seed,
            target=target,
            events=tuple(events),
            checkpoint_iterations=int(faults.checkpoint_iterations),
            checkpoint_timeout=float(faults.checkpoint_timeout),
            quarantine_threshold=float(faults.quarantine_threshold),
            health_half_life=float(faults.health_half_life),
            probe_cooldown=float(faults.probe_cooldown),
        )

    def to_dicts(self) -> list[dict]:
        return [dataclasses.asdict(event) for event in self.events]

    @property
    def kinds(self) -> list[str]:
        """Sorted distinct canonical kinds in this plan."""
        return sorted({event.kind for event in self.events})


def _expand(index: int, entry, target: str) -> list[FaultEvent]:
    """Validate one config entry and expand its repeat train."""
    label = f"faults.events[{index}]"
    kind = FAULTS.canonical(str(entry.kind))
    if kind is None:
        raise FaultError(
            f"{label}: unknown fault {entry.kind!r}; "
            f"registered: {', '.join(FAULTS.available())}"
        )
    fault = FAULTS.get(kind)()
    if target not in fault.targets:
        raise FaultError(
            f"{label}: fault {kind!r} cannot target {target!r} "
            f"(targets: {', '.join(sorted(fault.targets))})"
        )
    try:
        at = float(entry.at)
        duration = float(entry.duration)
        scale = float(entry.scale)
        stretch = float(entry.stretch)
        fraction = float(entry.fraction)
        repeat = int(entry.repeat)
        period = float(entry.period)
        node = None if entry.node is None else int(entry.node)
        loss_rate = float(entry.loss_rate)
        jitter = float(entry.jitter)
    except (TypeError, ValueError) as exc:
        raise FaultError(f"{label}: non-numeric parameter: {exc}") from exc
    jitter_dist = str(entry.jitter_dist)
    if at < 0:
        raise FaultError(f"{label}: at must be >= 0, got {at}")
    if duration < 0:
        raise FaultError(f"{label}: duration must be >= 0, got {duration}")
    if repeat < 1:
        raise FaultError(f"{label}: repeat must be >= 1, got {repeat}")
    if repeat > 1 and period <= 0:
        raise FaultError(
            f"{label}: repeat > 1 needs a positive period, got {period}"
        )
    if period < 0:
        raise FaultError(f"{label}: period must be >= 0, got {period}")
    events = []
    for occurrence in range(repeat):
        event = FaultEvent(
            fault_id=index * 1000 + occurrence,
            kind=kind,
            at=at + occurrence * period,
            duration=duration,
            scale=scale,
            stretch=stretch,
            fraction=fraction,
            node=node,
            loss_rate=loss_rate,
            jitter=jitter,
            jitter_dist=jitter_dist,
        )
        try:
            fault.check(event)
        except FaultError as exc:
            raise FaultError(f"{label}: {exc}") from exc
        events.append(event)
    return events


def _load_plan_file(path_str: str, fault_config_cls) -> list:
    """Load ``{"events": [...]}`` (or a bare list) from a JSON plan file."""
    path = pathlib.Path(path_str)
    if not path.exists():
        raise FaultError(f"fault plan file not found: {path}")
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FaultError(f"fault plan file {path} is not valid JSON: {exc}") from exc
    if isinstance(data, dict):
        if set(data) - {"events"}:
            raise FaultError(
                f"fault plan file {path} has unknown top-level key(s) "
                f"{sorted(set(data) - {'events'})}; expected 'events'"
            )
        data = data.get("events", [])
    if not isinstance(data, list):
        raise FaultError(
            f"fault plan file {path} must hold a list of fault mappings"
        )
    allowed = {f.name for f in dataclasses.fields(fault_config_cls)}
    entries = []
    for i, item in enumerate(data):
        if not isinstance(item, dict):
            raise FaultError(
                f"fault plan file {path} entry {i} must be a mapping, "
                f"got {type(item).__name__}"
            )
        unknown = sorted(set(item) - allowed)
        if unknown:
            raise FaultError(
                f"fault plan file {path} entry {i} has unknown key(s) "
                f"{', '.join(map(repr, unknown))}; accepted: "
                f"{', '.join(sorted(allowed))}"
            )
        entries.append(fault_config_cls(**item))
    return entries


__all__ = ["FaultEvent", "FaultPlan"]
