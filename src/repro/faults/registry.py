"""Registry of injectable faults — the pluggable failure vocabulary.

Like schemes, models, and policies, faults are registered by name in a
:class:`repro.api.registry.Registry` (``python -m repro list faults``
prints them).  A fault class declares which simulation targets it can
perturb (``"run"`` — an :class:`~repro.elastic.elastic_trainer.ElasticTrainer`
simulation; ``"sched"`` — a :class:`~repro.sched.scheduler.MultiTenantScheduler`
cluster), validates its plan parameters, and implements ``apply_run`` /
``apply_sched`` against the injector/driver helper APIs.  Built-ins
cover the cloud failure modes the paper's setting implies but never
measures:

============================ ======= ==============================================
name                         targets effect
============================ ======= ==============================================
``node-crash``               both    one node revoked with **no** two-minute warning
``az-reclaim``               both    correlated spot reclaim of a contiguous block
``nic-degrade``              both    inter-node bandwidth scaled down for a window
``straggler``                both    persistent compute stretch on one node
``checkpoint-corrupt``       run     bytes of the newest checkpoint file flipped
``gray-net``                 both    lossy link: packet loss + stochastic latency jitter
``disk-slow``                run     fail-slow disk stretching checkpoint writes/loads
============================ ======= ==============================================

Registering a new fault is a decorator away::

    from repro.faults import Fault, register_fault

    @register_fault("clock-skew")
    class ClockSkew(Fault):
        targets = frozenset({"run"})

        def apply_run(self, injector, event, ctx):
            ...
"""

from __future__ import annotations

from typing import Iterable

from repro.api.registry import Registry

#: Simulation surfaces a fault can perturb.
FAULT_TARGETS = ("run", "sched")

FAULTS = Registry("fault")


class FaultError(ValueError):
    """A fault plan is invalid (unknown kind, bad parameters, bad file)."""


def register_fault(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register a :class:`Fault` subclass under ``name``."""
    return FAULTS.register(name, aliases=aliases, overwrite=overwrite)


class Fault:
    """Base class for injectable faults.

    Subclasses are stateless; all mutable state lives in the injector
    (elastic runs) or driver (sched runs) that applies them, so one plan
    can be replayed any number of times.
    """

    #: Which simulation surfaces this fault supports.
    targets: frozenset[str] = frozenset(FAULT_TARGETS)
    #: Instantaneous faults ignore ``duration``; windowed ones honour it
    #: (``duration=0`` means permanent).
    instantaneous: bool = True
    #: One-line effect description (``repro list faults`` + docs table).
    summary: str = ""

    @staticmethod
    def check(event) -> None:
        """Validate one resolved :class:`~repro.faults.plan.FaultEvent`.

        Raise :class:`FaultError` on bad parameters; the generic bounds
        (``at >= 0``, ``duration >= 0``, repeat/period sanity) are
        enforced by the plan before this hook runs.
        """

    def apply_run(self, injector, event, ctx) -> None:
        raise FaultError(
            f"fault {event.kind!r} cannot target elastic runs "
            f"(targets: {', '.join(sorted(self.targets))})"
        )

    def apply_sched(self, driver, event, ctx) -> None:
        raise FaultError(
            f"fault {event.kind!r} cannot target the scheduler "
            f"(targets: {', '.join(sorted(self.targets))})"
        )


@register_fault("node-crash", aliases=("crash",))
class NodeCrash(Fault):
    """One node fails instantly — no two-minute warning, no checkpoint.

    The elastic trainer rolls back to its last checkpoint and replays;
    the scheduler marks the node down, shrinks or requeues its tenants,
    and (with ``duration > 0``) repairs the node later.
    """

    summary = "unwarned single-node failure (optional repair after `duration`)"

    @staticmethod
    def check(event) -> None:
        if event.node is not None and event.node < 0:
            raise FaultError(f"node-crash: node must be >= 0, got {event.node}")

    def apply_run(self, injector, event, ctx) -> None:
        live = ctx.trainer.membership.live_nodes
        if event.node is not None:
            nodes = [int(event.node)]
        else:
            nodes = [int(injector.rng.choice(live))]
        injector.crash(event, ctx, nodes)

    def apply_sched(self, driver, event, ctx) -> None:
        if event.node is not None:
            nodes = [int(event.node)]
        else:
            nodes = driver.pick_up_nodes(ctx, 1)
        driver.crash(event, ctx, nodes)


@register_fault("az-reclaim", aliases=("az", "spot-storm"))
class AzReclaim(Fault):
    """Correlated AZ-wide spot reclaim: a contiguous block of nodes, unwarned.

    ``fraction`` of the live/up nodes (at least one) vanish in the same
    instant — the failure mode one availability zone losing spot
    capacity produces, which uncorrelated Poisson churn never exercises.
    """

    summary = "correlated unwarned loss of a contiguous `fraction` of nodes"

    @staticmethod
    def check(event) -> None:
        if not 0 < event.fraction <= 1:
            raise FaultError(
                f"az-reclaim: fraction must be in (0, 1], got {event.fraction}"
            )

    def apply_run(self, injector, event, ctx) -> None:
        live = ctx.trainer.membership.live_nodes
        nodes = _contiguous_block(live, event.fraction, injector.rng)
        injector.crash(event, ctx, nodes)

    def apply_sched(self, driver, event, ctx) -> None:
        up = driver.up_nodes(ctx)
        nodes = _contiguous_block(up, event.fraction, driver.rng)
        driver.crash(event, ctx, nodes)


def _contiguous_block(nodes, fraction: float, rng) -> list[int]:
    """A seeded contiguous slice of ``nodes`` sized ``fraction`` (>= 1)."""
    nodes = list(nodes)
    if not nodes:
        return []
    k = max(1, int(round(fraction * len(nodes))))
    start = int(rng.integers(0, len(nodes) - k + 1))
    return [int(n) for n in nodes[start:start + k]]


@register_fault("nic-degrade", aliases=("nic", "nic-flap"))
class NicDegrade(Fault):
    """Inter-node bandwidth drops to ``scale`` of healthy for a window.

    Models a sick NIC or congested top-of-rack switch via
    :meth:`repro.cluster.network.NetworkModel.degraded`.  ``repeat`` +
    ``period`` turn one event into a flap train; ``duration=0`` makes
    the degradation permanent.
    """

    instantaneous = False
    summary = "inter-node bandwidth at `scale` for `duration` (flap via repeat/period)"

    @staticmethod
    def check(event) -> None:
        if not 0 < event.scale < 1:
            raise FaultError(
                f"nic-degrade: scale must be in (0, 1), got {event.scale}"
            )

    def apply_run(self, injector, event, ctx) -> None:
        injector.degrade_nic(event, ctx)

    def apply_sched(self, driver, event, ctx) -> None:
        driver.degrade_nic(event, ctx)


@register_fault("straggler", aliases=("slow-node",))
class Straggler(Fault):
    """One node computes ``stretch`` times slower for a window.

    Synchronous training runs at the pace of the slowest worker, so a
    single persistent straggler stalls the whole job — the paper's
    variability model covers transient jitter; this is the stuck-host
    case.
    """

    instantaneous = False
    summary = "per-node compute stretched `stretch`x for `duration`"

    @staticmethod
    def check(event) -> None:
        if event.stretch <= 1:
            raise FaultError(
                f"straggler: stretch must be > 1, got {event.stretch}"
            )
        if event.node is not None and event.node < 0:
            raise FaultError(f"straggler: node must be >= 0, got {event.node}")

    def apply_run(self, injector, event, ctx) -> None:
        injector.add_straggler(event, ctx)

    def apply_sched(self, driver, event, ctx) -> None:
        driver.add_straggler(event, ctx)


#: Distributions gray-net's per-iteration latency jitter can draw from.
JITTER_DISTS = ("exp", "lognormal")


def gray_jitter_draw(event, rng) -> float:
    """One jitter sample (>= 0) for a gray-net event.

    ``exp`` draws with mean ``event.jitter``; ``lognormal`` has median
    ``event.jitter`` and a heavier tail — the occasional multi-RTT
    stall a gray link produces.  The caller supplies the seeded
    generator, so replay is deterministic.
    """
    if event.jitter <= 0:
        return 0.0
    if event.jitter_dist == "lognormal":
        return float(event.jitter * rng.lognormal(0.0, 0.75))
    return float(event.jitter * rng.exponential(1.0))


@register_fault("gray-net", aliases=("gray", "packet-loss"))
class GrayNet(Fault):
    """A gray link: alive, but lossy and jittery — not cleanly degraded.

    ``loss_rate`` retransmissions stretch effective bandwidth by
    ``1 / (1 - loss_rate)`` (via
    :meth:`repro.cluster.network.NetworkModel.lossy`), and on top of
    that every iteration in the window draws a *stochastic* latency
    jitter from ``jitter_dist`` scaled by ``jitter`` — the noisy
    signature that distinguishes a gray failure from ``nic-degrade``'s
    clean bandwidth scale.  Scheduler runs pin the window to one node
    (explicit ``node`` or a seeded pick) and realise one seeded jitter
    draw for the closed form.
    """

    instantaneous = False
    summary = "lossy link: `loss_rate` retransmits + stochastic `jitter` per step"

    @staticmethod
    def check(event) -> None:
        if not 0 <= event.loss_rate < 1:
            raise FaultError(
                f"gray-net: loss_rate must be in [0, 1), got {event.loss_rate}"
            )
        if event.jitter < 0:
            raise FaultError(
                f"gray-net: jitter must be >= 0, got {event.jitter}"
            )
        if event.jitter_dist not in JITTER_DISTS:
            raise FaultError(
                f"gray-net: unknown jitter distribution {event.jitter_dist!r}; "
                f"accepted: {', '.join(JITTER_DISTS)}"
            )
        if event.node is not None and event.node < 0:
            raise FaultError(f"gray-net: node must be >= 0, got {event.node}")

    def apply_run(self, injector, event, ctx) -> None:
        injector.gray_net(event, ctx)

    def apply_sched(self, driver, event, ctx) -> None:
        driver.gray_net(event, ctx)


@register_fault("disk-slow", aliases=("slow-disk", "fail-slow"))
class DiskSlow(Fault):
    """A fail-slow checkpoint disk: writes and loads stretch ``stretch``x.

    While the window is open every checkpoint write (and rollback read)
    costs ``stretch`` times its healthy latency; with a
    ``faults.checkpoint_timeout`` budget set, a write that would exceed
    it is abandoned at the budget and retried on the fallback slot —
    both steps land in the :class:`~repro.faults.log.FaultLog`.
    Elastic runs only: the scheduler's closed form has no checkpoint
    writes to slow down.
    """

    targets = frozenset({"run"})
    instantaneous = False
    summary = "fail-slow disk: checkpoint writes/loads stretched `stretch`x"

    @staticmethod
    def check(event) -> None:
        if event.stretch <= 1:
            raise FaultError(
                f"disk-slow: stretch must be > 1, got {event.stretch}"
            )

    def apply_run(self, injector, event, ctx) -> None:
        injector.slow_disk(event, ctx)


@register_fault("checkpoint-corrupt", aliases=("ckpt-corrupt",))
class CheckpointCorrupt(Fault):
    """Flip bytes in the newest on-disk checkpoint.

    Exercises the *real* detection path: the next rollback hits
    :class:`repro.train.checkpoint.CheckpointCorruptError` from the
    checksum verifier and falls back to the previous (double-buffered)
    checkpoint — or restarts from scratch when none survives.
    Elastic runs only; the scheduler's closed form has no checkpoint
    files to damage.
    """

    targets = frozenset({"run"})
    summary = "newest checkpoint file damaged; detected on next rollback"

    def apply_run(self, injector, event, ctx) -> None:
        injector.corrupt_checkpoint(event, ctx)


__all__ = [
    "FAULTS",
    "FAULT_TARGETS",
    "JITTER_DISTS",
    "gray_jitter_draw",
    "Fault",
    "FaultError",
    "register_fault",
    "NodeCrash",
    "AzReclaim",
    "NicDegrade",
    "Straggler",
    "CheckpointCorrupt",
    "GrayNet",
    "DiskSlow",
]
