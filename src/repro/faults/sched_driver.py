"""Fault injection into the closed-form multi-tenant scheduler.

The driver owns all mutable fault state for one
:class:`~repro.sched.scheduler.MultiTenantScheduler` run: pending
:class:`~repro.faults.plan.FaultPlan` events (``at`` in virtual
seconds), downed nodes awaiting repair, active NIC-degradation and
straggler windows, and the structured :class:`~repro.faults.log.FaultLog`.

The scheduler consults :meth:`next_boundary` when picking its
piecewise-constant horizon (so a fault lands exactly on a scheduler
event), calls :meth:`apply_due` at the top of every event, and prices
running jobs with :meth:`active_nic_scale` / :meth:`stretch_for`.
Crashes evict tenants through the normal ``ClusterState`` release path
and roll their progress back to the last implied checkpoint
(``plan.checkpoint_iterations``); a victim pushed below ``min_nodes``
requeues through the ordinary admission queue, and its
detection-to-recovery latency is the virtual time until the scheduler
re-places it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.faults.health import HealthPolicy, NodeHealthLedger
from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.faults.registry import FAULTS, gray_jitter_draw
from repro.utils.seeding import new_rng


@dataclass
class SchedContext:
    """Mutable view of the scheduler event loop passed to fault hooks."""

    scheduler: object
    now: float
    state: object
    queued: object
    running: list


class SchedFaultDriver:
    """Applies a :class:`FaultPlan` to one scheduler simulation."""

    def __init__(self, plan: FaultPlan, log: FaultLog | None = None) -> None:
        if plan.target != "sched":
            raise ValueError(
                f"SchedFaultDriver needs a 'sched' plan, got target {plan.target!r}"
            )
        self.plan = plan
        self.log = log if log is not None else FaultLog()
        self.rng = new_rng(plan.seed)
        self.checkpoint_iterations = plan.checkpoint_iterations
        self._pending = deque(plan.events)  # already sorted by (at, fault_id)
        #: node -> (repair time or inf, event).
        self._down: dict[int, tuple[float, object]] = {}
        self._nic: list[tuple[float, float, object]] = []
        self._stragglers: dict[int, tuple[float, float, object]] = {}
        #: node -> (window end, realised comm stretch, event) gray links.
        self._gray: dict[int, tuple[float, float, object]] = {}
        #: job name -> (event, t_detect) for requeued jobs awaiting re-placement.
        self._awaiting_replace: dict[str, tuple[object, float]] = {}
        #: Per-node suspicion scores the fault-aware policy reads; its
        #: timeline depends only on the plan, never on placement, so it
        #: is identical under every policy compared against one storm.
        self.health = NodeHealthLedger(
            HealthPolicy(
                quarantine_threshold=plan.quarantine_threshold,
                half_life_s=plan.health_half_life,
                probe_cooldown_s=plan.probe_cooldown,
            )
        )
        self.injected = 0
        self.recovered = 0
        self.absorbed = 0
        self.requeues = 0
        self.lost_iterations = 0.0

    # -- scheduler hooks -------------------------------------------------------
    def next_boundary(self, now: float) -> float | None:
        """Earliest future fault-timeline point, or ``None``."""
        times: list[float] = []
        if self._pending:
            times.append(self._pending[0].at)
        times.extend(t for t, _ in self._down.values() if not math.isinf(t))
        times.extend(until for until, _, _ in self._nic if not math.isinf(until))
        times.extend(
            until for until, _, _ in self._stragglers.values() if not math.isinf(until)
        )
        times.extend(
            until for until, _, _ in self._gray.values() if not math.isinf(until)
        )
        probe_at = self.health.next_boundary(now)
        if probe_at is not None:
            times.append(probe_at)
        future = [t for t in times if t > now + 1e-12]
        return min(future) if future else None

    def apply_due(self, ctx: SchedContext) -> None:
        """Probe, repair, expire, and inject everything due at ``ctx.now``."""
        now = ctx.now
        for node in self.health.due_probes(now):
            score = self.health.probe(node, now)
            self.log.append(
                "probe",
                t=now,
                kind="health",
                fault_id=-1,
                target="sched",
                node=node,
                suspicion=round(score, 9),
                action="cool-down elapsed; node returned to candidate pool",
            )
        for node in sorted(self._down):
            repair_at, event = self._down[node]
            if repair_at <= now + 1e-12:
                del self._down[node]
                ctx.state.set_up(node)
                self.log.append(
                    "repair",
                    t=now,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="sched",
                    node=node,
                )
        still_degraded = []
        for until, scale, event in self._nic:
            if until <= now + 1e-12:
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=now,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="sched",
                    action="bandwidth restored",
                )
            else:
                still_degraded.append((until, scale, event))
        self._nic = still_degraded
        for node in sorted(self._stragglers):
            until, _, event = self._stragglers[node]
            if until <= now + 1e-12:
                del self._stragglers[node]
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=now,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="sched",
                    node=node,
                    action="compute speed restored",
                )
        for node in sorted(self._gray):
            until, _, event = self._gray[node]
            if until <= now + 1e-12:
                del self._gray[node]
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=now,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="sched",
                    node=node,
                    action="link health restored",
                )
        while self._pending and self._pending[0].at <= now + 1e-12:
            event = self._pending.popleft()
            FAULTS.get(event.kind)().apply_sched(self, event, ctx)

    def note_replacements(self, ctx: SchedContext) -> None:
        """Close the recovery loop for requeued jobs the scheduler re-placed."""
        if not self._awaiting_replace:
            return
        running_names = {record.spec.name for record in ctx.running}
        for name in sorted(self._awaiting_replace):
            if name not in running_names:
                continue
            event, t_detect = self._awaiting_replace.pop(name)
            self.recovered += 1
            self.log.append(
                "recover",
                t=ctx.now,
                kind=event.kind,
                fault_id=event.fault_id,
                target="sched",
                job=name,
                latency_s=round(ctx.now - t_detect, 9),
                action="requeued job re-placed",
            )

    # -- fault application helpers (called by Fault subclasses) ----------------
    def up_nodes(self, ctx: SchedContext) -> list[int]:
        return [n for n in range(ctx.state.num_nodes) if ctx.state.is_up(n)]

    def pick_up_nodes(self, ctx: SchedContext, k: int) -> list[int]:
        """Seeded choice of ``k`` distinct up nodes (fewer if scarce)."""
        up = self.up_nodes(ctx)
        if not up:
            return []
        k = min(k, len(up))
        chosen = self.rng.choice(len(up), size=k, replace=False)
        return sorted(int(up[i]) for i in chosen)

    def crash(self, event, ctx: SchedContext, nodes) -> None:
        """Take ``nodes`` down unwarned; shrink or requeue their tenants."""
        now = ctx.now
        self.injected += 1
        victims = [int(n) for n in nodes if ctx.state.is_up(int(n))]
        self.log.append(
            "inject",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            nodes=[int(n) for n in nodes],
        )
        if not victims:
            self.absorbed += 1
            self.log.append(
                "absorb",
                t=now,
                kind=event.kind,
                fault_id=event.fault_id,
                target="sched",
                reason="no targeted node is up",
            )
            return
        until = event.until
        affected: dict[str, list[int]] = {}
        for node in victims:
            for job in ctx.state.occupants_of(node):
                affected.setdefault(job, []).append(node)
        # Evict tenants first, then mark the nodes down.
        by_name = {record.spec.name: record for record in ctx.running}
        for name in sorted(affected):
            record = by_name[name]
            dropped = affected[name]
            ctx.state.release(name, dropped)
            for node in dropped:
                record.nodes.remove(node)
                if (
                    record.membership is not None
                    and record.membership.num_nodes > record.membership.min_nodes
                ):
                    record.membership.revoke()
        for node in victims:
            ctx.state.set_down(node)
            self._down[node] = (until, event)
        self.log.append(
            "detect",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            victims=victims,
            jobs=sorted(affected),
        )
        for node in victims:
            self._observe_health(event, now, node)
        # An unwarned crash kills the synchronous step: every affected
        # job rolls back to its last implied checkpoint.
        scheduler = ctx.scheduler
        ckpt = self.checkpoint_iterations
        for name in sorted(affected):
            record = by_name[name]
            lost = record.progress - math.floor(record.progress / ckpt) * ckpt
            record.progress -= lost
            self.lost_iterations += lost
            if record.nodes and len(record.nodes) >= record.spec.min_nodes:
                record.shrinks += len(affected[name])
                record.mark_waypoint()
                ctx.state.set_comm_intensity(
                    name,
                    scheduler.comm_intensity(record.spec, nodes=len(record.nodes)),
                )
                self.recovered += 1
                self.log.append(
                    "recover",
                    t=now,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="sched",
                    job=name,
                    lost_iterations=round(lost, 6),
                    action="shrunk to surviving nodes",
                )
            else:
                # Below the elastic floor: back to the admission queue.
                if record.nodes:
                    ctx.state.release(name, list(record.nodes))
                    record.nodes.clear()
                from repro.sched.job import QUEUED

                record.status = QUEUED
                ctx.running.remove(record)
                ctx.queued.add(record, scheduler._job_gpus(record.spec))
                self.requeues += 1
                self._awaiting_replace[name] = (event, now)
                self.log.append(
                    "detect",
                    t=now,
                    kind=event.kind,
                    fault_id=event.fault_id,
                    target="sched",
                    job=name,
                    lost_iterations=round(lost, 6),
                    action="below min_nodes; requeued",
                )

    def degrade_nic(self, event, ctx: SchedContext) -> None:
        now = ctx.now
        self.injected += 1
        self._nic.append((event.until, float(event.scale), event))
        self.log.append(
            "inject",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            scale=float(event.scale),
        )
        self.log.append(
            "detect",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            source="per-event bandwidth repricing",
        )

    def add_straggler(self, event, ctx: SchedContext) -> None:
        now = ctx.now
        self.injected += 1
        if event.node is not None:
            node = int(event.node)
        else:
            picked = self.pick_up_nodes(ctx, 1)
            node = picked[0] if picked else -1
        if node < 0 or node >= ctx.state.num_nodes or not ctx.state.is_up(node):
            self.absorbed += 1
            self.log.append(
                "absorb",
                t=now,
                kind=event.kind,
                fault_id=event.fault_id,
                target="sched",
                reason=f"node {node} not up",
            )
            return
        self._stragglers[node] = (event.until, float(event.stretch), event)
        self.log.append(
            "inject",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            node=node,
            stretch=float(event.stretch),
        )
        self.log.append(
            "detect",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            source="per-event straggler repricing",
        )
        self._observe_health(event, now, node)

    def gray_net(self, event, ctx: SchedContext) -> None:
        """Pin a gray-link window — loss + realised jitter — on one node.

        The closed-form scheduler cannot redraw jitter per iteration, so
        one seeded draw realises the window's expected stretch:
        ``1 / (1 - loss_rate)`` retransmissions times ``1 + jitter``.
        """
        now = ctx.now
        self.injected += 1
        if event.node is not None:
            node = int(event.node)
        else:
            picked = self.pick_up_nodes(ctx, 1)
            node = picked[0] if picked else -1
        if node < 0 or node >= ctx.state.num_nodes or not ctx.state.is_up(node):
            self.absorbed += 1
            self.log.append(
                "absorb",
                t=now,
                kind=event.kind,
                fault_id=event.fault_id,
                target="sched",
                reason=f"node {node} not up",
            )
            return
        stretch = (1.0 / (1.0 - event.loss_rate)) * (
            1.0 + gray_jitter_draw(event, self.rng)
        )
        self._gray[node] = (event.until, stretch, event)
        self.log.append(
            "inject",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            node=node,
            loss_rate=float(event.loss_rate),
            jitter=float(event.jitter),
            jitter_dist=event.jitter_dist,
            stretch=round(stretch, 9),
        )
        self.log.append(
            "detect",
            t=now,
            kind=event.kind,
            fault_id=event.fault_id,
            target="sched",
            source="per-link loss/latency telemetry",
        )
        self._observe_health(event, now, node)

    def _observe_health(self, event, now: float, node: int) -> None:
        """Feed one fault observation to the ledger; log new quarantines."""
        if self.health.observe(node, now, event.kind):
            self.log.append(
                "quarantine",
                t=now,
                kind=event.kind,
                fault_id=event.fault_id,
                target="sched",
                node=node,
                suspicion=round(self.health.suspicion(node, now), 9),
                probe_at=round(now + self.health.policy.probe_cooldown_s, 9),
            )

    # -- pricing inputs --------------------------------------------------------
    def active_nic_scale(self) -> float:
        """The strongest active degradation (1.0 when links are healthy)."""
        if not self._nic:
            return 1.0
        return min(scale for _, scale, _ in self._nic)

    def stretch_for(self, nodes) -> float:
        """Worst straggler stretch across an allocation (>= 1)."""
        if not self._stragglers:
            return 1.0
        stretch = 1.0
        for node in nodes:
            record = self._stragglers.get(node)
            if record is not None:
                stretch = max(stretch, record[1])
        return stretch

    def jitter_for(self, nodes) -> float:
        """Worst gray-link comm stretch across an allocation (>= 1).

        Synchronous collectives cross every member's NIC, so one gray
        node jitters the whole job — rounded so the scheduler's memo
        key stays platform-stable.
        """
        if not self._gray:
            return 1.0
        jitter = 1.0
        for node in nodes:
            record = self._gray.get(node)
            if record is not None:
                jitter = max(jitter, record[1])
        return round(jitter, 9)

    # -- reporting -------------------------------------------------------------
    def summary(self) -> dict:
        """Counters + log digest + the full entry list, JSON/pickle-safe."""
        return {
            "injected": self.injected,
            "recovered": self.recovered,
            "absorbed": self.absorbed,
            "requeues": self.requeues,
            "lost_iterations": round(self.lost_iterations, 6),
            "nodes_down_end": sorted(self._down),
            "health": self.health.summary(),
            "mean_detect_recover_s": self.log.mean_latency(),
            "events": len(self.log),
            "digest": self.log.digest(),
            "entries": self.log.to_dicts(),
        }


__all__ = ["SchedContext", "SchedFaultDriver"]
