"""Deterministic per-node health ledger (``repro.faults.health``).

Production control planes (IBM DLS-style health checking) keep a
running opinion of every node and steer placement away from repeat
offenders.  :class:`NodeHealthLedger` reproduces that signal from the
:class:`~repro.faults.log.FaultLog` event stream alone: each observed
fault adds a per-kind suspicion weight, the score decays
phi-accrual-style with a configurable half-life, and a node whose score
crosses ``quarantine_threshold`` is quarantined until a probe —
``probe_cooldown`` virtual seconds later — halves its score and returns
it to the candidate pool.  A node that re-offends after a probe starts
half-suspect and crosses the threshold faster: repeat-offender memory.

Everything is pure arithmetic on virtual timestamps — no RNG, no wall
clock — so the ledger timeline is identical across policies, repeat
runs, and any ``--jobs`` width.  The ``fault-aware`` placement policy
(:mod:`repro.sched.policies`) reads it through ``ClusterState.health``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Suspicion added per observed fault, by kind.  Hard failures weigh
#: more than performance gray-ness; unknown kinds use ``_DEFAULT_WEIGHT``.
KIND_WEIGHTS = {
    "node-crash": 1.0,
    "az-reclaim": 0.8,
    "gray-net": 0.7,
    "straggler": 0.6,
    "disk-slow": 0.6,
    "nic-degrade": 0.4,
}

_DEFAULT_WEIGHT = 0.5


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs of the ledger (see ``FaultsConfig``)."""

    quarantine_threshold: float = 2.0
    half_life_s: float = 300.0
    probe_cooldown_s: float = 180.0


class NodeHealthLedger:
    """Per-node suspicion scores with decay, quarantine, and probes."""

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        if self.policy.quarantine_threshold <= 0:
            raise ValueError(
                f"quarantine_threshold must be > 0, "
                f"got {self.policy.quarantine_threshold}"
            )
        if self.policy.half_life_s <= 0:
            raise ValueError(
                f"half_life_s must be > 0, got {self.policy.half_life_s}"
            )
        if self.policy.probe_cooldown_s < 0:
            raise ValueError(
                f"probe_cooldown_s must be >= 0, got {self.policy.probe_cooldown_s}"
            )
        self._score: dict[int, float] = {}
        self._updated: dict[int, float] = {}
        #: node -> virtual time its health probe is due.
        self._probe_at: dict[int, float] = {}
        self.quarantines = 0
        self.probes = 0

    # -- queries ---------------------------------------------------------------
    def suspicion(self, node: int, now: float) -> float:
        """The decayed suspicion score of ``node`` at virtual time ``now``."""
        score = self._score.get(node)
        if score is None:
            return 0.0
        dt = max(0.0, now - self._updated[node])
        return score * 0.5 ** (dt / self.policy.half_life_s)

    def is_quarantined(self, node: int) -> bool:
        return node in self._probe_at

    def quarantined_nodes(self) -> list[int]:
        return sorted(self._probe_at)

    def due_probes(self, now: float) -> list[int]:
        """Quarantined nodes whose cool-down has elapsed at ``now``."""
        return sorted(n for n, t in self._probe_at.items() if t <= now + 1e-12)

    def next_boundary(self, now: float) -> float | None:
        """Earliest future probe time, or ``None``."""
        future = [t for t in self._probe_at.values() if t > now + 1e-12]
        return min(future) if future else None

    # -- transitions -----------------------------------------------------------
    def observe(self, node: int, now: float, kind: str) -> bool:
        """Record one fault on ``node``; True when this quarantines it."""
        node = int(node)
        score = self.suspicion(node, now) + KIND_WEIGHTS.get(kind, _DEFAULT_WEIGHT)
        self._score[node] = score
        self._updated[node] = now
        if node in self._probe_at or score < self.policy.quarantine_threshold:
            return False
        self._probe_at[node] = now + self.policy.probe_cooldown_s
        self.quarantines += 1
        return True

    def probe(self, node: int, now: float) -> float:
        """Probe ``node`` back to service; returns its halved score."""
        self._probe_at.pop(node, None)
        score = self.suspicion(node, now) / 2.0
        self._score[node] = score
        self._updated[node] = now
        self.probes += 1
        return score

    # -- reporting -------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready counters for the driver's fault summary."""
        return {
            "quarantines": self.quarantines,
            "probes": self.probes,
            "quarantined_end": self.quarantined_nodes(),
            "suspects": sorted(self._score),
        }


__all__ = ["KIND_WEIGHTS", "HealthPolicy", "NodeHealthLedger"]
