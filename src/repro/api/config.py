"""Declarative run configuration — one JSON file fully specifies a run.

:class:`RunConfig` nests :class:`ClusterConfig` (where), :class:`CommConfig`
(how gradients move), :class:`TrainConfig` (what trains) and an optional
:class:`ElasticConfig` (churn).  It round-trips losslessly through
``to_dict``/``from_dict`` and ``to_json``/``from_json``, rejects unknown
keys with the list of accepted ones, and validates every component name
against the :mod:`repro.api.registry` registries — a typo fails at load
time, not an hour into a sweep.

``apply_overrides`` implements the CLI's ``--set section.key=value``
(values parsed as JSON, falling back to strings).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field, fields
from typing import Any, Sequence


class ConfigError(ValueError):
    """A malformed or unresolvable run configuration."""


def _check_keys(section: str, data: dict, cls) -> None:
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in {section!r}; "
            f"accepted keys: {', '.join(sorted(allowed))}"
        )


def _from_dict(section: str, data: Any, cls):
    if not isinstance(data, dict):
        raise ConfigError(f"{section!r} must be a mapping, got {type(data).__name__}")
    _check_keys(section, data, cls)
    return cls(**data)


@dataclass(frozen=True)
class ClusterConfig:
    """Virtual cluster shape: a registered instance preset and node count."""

    instance: str = "tencent"
    num_nodes: int = 2
    gpus_per_node: int = 2


@dataclass(frozen=True)
class CommConfig:
    """Gradient aggregation: registered scheme (+ optional compressor)."""

    scheme: str = "mstopk"
    density: float = 0.05
    wire_bytes: int = 4
    n_samplings: int = 30
    #: Optional registered compressor name overriding the scheme default.
    compressor: str | None = None


@dataclass(frozen=True)
class TrainConfig:
    """Workload and optimisation hyperparameters.

    Deliberately explicit: unlike ``ConvergenceRunner`` (whose
    ``_WORKLOAD_HP`` table nudges lr/density per workload), a config
    applies exactly the values written in it.
    """

    model: str = "mlp"
    epochs: int = 5
    num_samples: int = 512
    local_batch: int = 16
    lr: float = 0.05
    momentum: float = 0.9
    #: Seed for dataset synthesis; defaults to the run seed, so one seed
    #: fixes everything while sweeps can pin the data and vary the rest.
    data_seed: int | None = None


@dataclass(frozen=True)
class ElasticConfig:
    """Churn schedule + recovery constants for an elastic run.

    Present ⇒ the run uses :class:`~repro.elastic.ElasticTrainer`
    (iteration-driven, so ``train.epochs`` is unused — ``iterations``
    governs run length); absent ⇒ the synchronous epoch-driven trainer.
    """

    iterations: int = 120
    schedule: str = "poisson"  # "poisson" | "none"
    rate: float = 0.01
    warned_fraction: float = 0.5
    rejoin_delay: int = 20
    min_nodes: int = 1
    checkpoint_every: int = 25
    compute_seconds: float = 0.05
    checkpoint_seconds: float = 1.0
    restart_seconds: float = 15.0
    warning_seconds: float = 120.0
    #: Gradient size for the analytic comm-time model (None = actual).
    timing_d: int | None = None
    #: Straggler lognormal sigma (0 disables the variability model).
    sigma: float = 0.0


#: Schedules ElasticConfig understands (kept next to the dataclass, not
#: in the registry: they are modes of one subsystem, not plugins).
ELASTIC_SCHEDULES = ("poisson", "none")


@dataclass(frozen=True)
class RunConfig:
    """Everything one run needs, serializable and seed-complete."""

    name: str = "run"
    seed: int = 0
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    comm: CommConfig = field(default_factory=CommConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    elastic: ElasticConfig | None = None

    # -- construction ------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict, *, validate: bool = True) -> "RunConfig":
        if not isinstance(data, dict):
            raise ConfigError(f"run config must be a mapping, got {type(data).__name__}")
        _check_keys("run", data, cls)
        kwargs: dict[str, Any] = {
            k: data[k] for k in ("name", "seed") if k in data
        }
        if "cluster" in data:
            kwargs["cluster"] = _from_dict("cluster", data["cluster"], ClusterConfig)
        if "comm" in data:
            kwargs["comm"] = _from_dict("comm", data["comm"], CommConfig)
        if "train" in data:
            kwargs["train"] = _from_dict("train", data["train"], TrainConfig)
        if data.get("elastic") is not None:
            kwargs["elastic"] = _from_dict("elastic", data["elastic"], ElasticConfig)
        config = cls(**kwargs)
        if validate:
            config.validate()
        return config

    @classmethod
    def from_json(cls, text: str, *, validate: bool = True) -> "RunConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON run config: {exc}") from exc
        return cls.from_dict(data, validate=validate)

    @classmethod
    def from_file(cls, path: str | pathlib.Path, *, validate: bool = True) -> "RunConfig":
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigError(f"config file not found: {path}")
        return cls.from_json(path.read_text(), validate=validate)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "seed": self.seed,
            "cluster": dataclasses.asdict(self.cluster),
            "comm": dataclasses.asdict(self.comm),
            "train": dataclasses.asdict(self.train),
        }
        if self.elastic is not None:
            data["elastic"] = dataclasses.asdict(self.elastic)
        return data

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    # -- validation --------------------------------------------------------
    def validate(self) -> "RunConfig":
        """Check names against the registries and values for sanity."""
        from repro.api import registry

        if not self.name:
            raise ConfigError("run 'name' must be a non-empty string")
        if self.cluster.instance not in registry.CLUSTERS:
            raise ConfigError(
                f"unknown cluster instance {self.cluster.instance!r}; "
                f"registered: {', '.join(registry.CLUSTERS.available())}"
            )
        if self.comm.scheme not in registry.SCHEMES:
            raise ConfigError(
                f"unknown comm scheme {self.comm.scheme!r}; "
                f"registered: {', '.join(registry.SCHEMES.available())}"
            )
        if self.comm.compressor is not None and self.comm.compressor not in registry.COMPRESSORS:
            raise ConfigError(
                f"unknown compressor {self.comm.compressor!r}; "
                f"registered: {', '.join(registry.COMPRESSORS.available())}"
            )
        if self.train.model not in registry.MODELS:
            raise ConfigError(
                f"unknown model {self.train.model!r}; "
                f"registered: {', '.join(registry.MODELS.available())}"
            )
        if self.cluster.num_nodes < 1 or self.cluster.gpus_per_node < 1:
            raise ConfigError("cluster num_nodes and gpus_per_node must be >= 1")
        if not 0 < self.comm.density <= 1:
            raise ConfigError(f"comm density must be in (0, 1], got {self.comm.density}")
        if self.train.epochs < 1 or self.train.local_batch < 1 or self.train.num_samples < 1:
            raise ConfigError("train epochs, local_batch and num_samples must be >= 1")
        if self.elastic is not None:
            if self.elastic.schedule not in ELASTIC_SCHEDULES:
                raise ConfigError(
                    f"unknown elastic schedule {self.elastic.schedule!r}; "
                    f"accepted: {', '.join(ELASTIC_SCHEDULES)}"
                )
            if self.elastic.iterations < 1:
                raise ConfigError("elastic iterations must be >= 1")
            if self.elastic.rate < 0:
                raise ConfigError("elastic rate must be >= 0")
            if self.elastic.min_nodes < 1 or self.elastic.min_nodes > self.cluster.num_nodes:
                raise ConfigError(
                    "elastic min_nodes must be in [1, cluster.num_nodes]"
                )
        return self


def _parse_override_value(raw: str) -> Any:
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw  # bare strings need no quoting: --set comm.scheme=dense


def apply_overrides(config: RunConfig, overrides: Sequence[str]) -> RunConfig:
    """Apply ``section.key=value`` overrides and re-validate.

    ``--set elastic.rate=0.02`` on a non-elastic config materialises a
    default :class:`ElasticConfig` first, so any run can be made elastic
    from the command line.
    """
    data = config.to_dict()
    for item in overrides:
        if "=" not in item:
            raise ConfigError(f"override {item!r} is not of the form key=value")
        path, raw = item.split("=", 1)
        keys = path.strip().split(".")
        if not all(keys):
            raise ConfigError(f"override {item!r} has an empty key path")
        node: Any = data
        for i, key in enumerate(keys[:-1]):
            if key == "elastic" and node is data and data.get("elastic") is None:
                data["elastic"] = {}
            if not isinstance(node.get(key), dict):
                raise ConfigError(
                    f"override {item!r}: {'.'.join(keys[: i + 1])!r} is not a section"
                )
            node = node[key]
        node[keys[-1]] = _parse_override_value(raw.strip())
    return RunConfig.from_dict(data)


__all__ = [
    "ConfigError",
    "ClusterConfig",
    "CommConfig",
    "TrainConfig",
    "ElasticConfig",
    "ELASTIC_SCHEDULES",
    "RunConfig",
    "apply_overrides",
]
