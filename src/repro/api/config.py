"""Declarative run configuration — one JSON file fully specifies a run.

:class:`RunConfig` nests :class:`ClusterConfig` (where), :class:`CommConfig`
(how gradients move), :class:`TrainConfig` (what trains) and an optional
:class:`ElasticConfig` (churn).  It round-trips losslessly through
``to_dict``/``from_dict`` and ``to_json``/``from_json``, rejects unknown
keys with the list of accepted ones, and validates every component name
against the :mod:`repro.api.registry` registries — a typo fails at load
time, not an hour into a sweep.

``apply_overrides`` implements the CLI's ``--set section.key=value``
(values parsed as JSON, falling back to strings).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field, fields
from typing import Any, Sequence


class ConfigError(ValueError):
    """A malformed or unresolvable run configuration."""


def _check_keys(section: str, data: dict, cls) -> None:
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in {section!r}; "
            f"accepted keys: {', '.join(sorted(allowed))}"
        )


def _from_dict(section: str, data: Any, cls):
    if not isinstance(data, dict):
        raise ConfigError(f"{section!r} must be a mapping, got {type(data).__name__}")
    _check_keys(section, data, cls)
    return cls(**data)


@dataclass(frozen=True)
class ClusterConfig:
    """Virtual cluster shape: a registered instance preset and node count."""

    #: Registered cluster preset name or alias (``python -m repro list
    #: clusters``); built-ins: ``aws`` / ``aliyun`` / ``tencent``.
    instance: str = "tencent"
    #: Number of nodes (whole cloud instances), >= 1.
    num_nodes: int = 2
    #: GPUs per node, >= 1 (overrides the preset's count — presets model
    #: 8xV100 instances, small simulations usually want 2).
    gpus_per_node: int = 2


@dataclass(frozen=True)
class CommConfig:
    """Gradient aggregation: registered scheme (+ optional compressor)."""

    #: Registered comm-scheme name or alias (``python -m repro list
    #: schemes``); built-ins: ``dense`` / ``dense-ring`` / ``2dtar`` /
    #: ``topk`` / ``gtopk`` / ``mstopk`` / ``naiveag-mstopk``.
    scheme: str = "mstopk"
    #: Top-k sparsity rho in (0, 1] (fraction of gradient entries sent);
    #: ignored by the dense schemes.
    density: float = 0.05
    #: Bytes per wire element for dense traffic (4 = FP32, 2 = FP16).
    wire_bytes: int = 4
    #: MSTopK sampling iterations (Algorithm 1's threshold search).
    n_samplings: int = 30
    #: Optional registered compressor name (``python -m repro list
    #: compressors``) overriding the scheme default; dense schemes
    #: reject one at build time.
    compressor: str | None = None


@dataclass(frozen=True)
class TrainConfig:
    """Workload and optimisation hyperparameters.

    Deliberately explicit: unlike ``ConvergenceRunner`` (whose
    ``_WORKLOAD_HP`` table nudges lr/density per workload), a config
    applies exactly the values written in it.
    """

    #: Registered model workload name or alias (``python -m repro list
    #: models``); built-ins: ``mlp`` / ``mlp-tiny`` / ``cnn`` /
    #: ``resnet`` / ``transformer``.
    model: str = "mlp"
    #: Training epochs (synchronous runs only; elastic runs are
    #: iteration-driven via ``elastic.iterations``), >= 1.
    epochs: int = 5
    #: Synthetic dataset size in samples, >= 1.
    num_samples: int = 512
    #: Per-worker batch size, >= 1 (global batch = local_batch x world).
    local_batch: int = 16
    #: SGD learning rate.
    lr: float = 0.05
    #: SGD momentum coefficient in [0, 1).
    momentum: float = 0.9
    #: Seed for dataset synthesis; defaults to the run seed, so one seed
    #: fixes everything while sweeps can pin the data and vary the rest.
    data_seed: int | None = None


@dataclass(frozen=True)
class ElasticConfig:
    """Churn schedule + recovery constants for an elastic run.

    Present ⇒ the run uses :class:`~repro.elastic.ElasticTrainer`
    (iteration-driven, so ``train.epochs`` is unused — ``iterations``
    governs run length); absent ⇒ the synchronous epoch-driven trainer.
    """

    #: Useful training iterations to complete, >= 1.
    iterations: int = 120
    #: Churn schedule: ``poisson`` (memoryless spot revocations) or
    #: ``none`` (static cluster); see :data:`ELASTIC_SCHEDULES`.
    schedule: str = "poisson"
    #: Expected revocations per node per iteration, >= 0.
    rate: float = 0.01
    #: Share of revocations arriving with the advance warning, in [0, 1].
    warned_fraction: float = 0.5
    #: Mean iterations until a replacement node arrives (0 = no backfill).
    rejoin_delay: int = 20
    #: Floor the cluster never shrinks below, in [1, cluster.num_nodes].
    min_nodes: int = 1
    #: Useful iterations between periodic rollback checkpoints, >= 1.
    checkpoint_every: int = 25
    #: Virtual forward+backward seconds per iteration at spec speed.
    compute_seconds: float = 0.05
    #: Virtual seconds to write one checkpoint.
    checkpoint_seconds: float = 1.0
    #: Virtual seconds for a rescale/restore cycle.
    restart_seconds: float = 15.0
    #: Advance-warning window in seconds (the two-minute warning).
    warning_seconds: float = 120.0
    #: Gradient size (elements) for the analytic comm-time model
    #: (None = the model's actual parameter count).
    timing_d: int | None = None
    #: Straggler lognormal sigma (0 disables the variability model).
    sigma: float = 0.0


#: Schedules ElasticConfig understands (kept next to the dataclass, not
#: in the registry: they are modes of one subsystem, not plugins).
ELASTIC_SCHEDULES = ("poisson", "none")


@dataclass(frozen=True)
class ExecConfig:
    """Where compute runs: execution backend + pool width.

    Never changes *what* is computed — every backend is bit-identical to
    ``serial`` (results are pinned by the parity and invariance suites),
    so this section is pure wall-clock policy.
    """

    #: Registered execution backend (:data:`repro.exec.BACKENDS`);
    #: built-ins: ``serial`` (inline, the default) / ``process``
    #: (shared-memory worker pool on real CPU cores).
    backend: str = "serial"
    #: Pool width for parallel backends: worker processes for the
    #: trainer's per-worker compute and for sweep fan-out (0 = all
    #: usable cores; ignored by ``serial``).
    jobs: int = 1
    #: Multiprocessing start method (``fork`` / ``spawn`` /
    #: ``forkserver``; None = platform preference — ``fork`` where
    #: available, else ``spawn``).
    start_method: str | None = None


@dataclass(frozen=True)
class FaultConfig:
    """One planned fault event (see ``python -m repro list faults``).

    Only the parameters a kind reads matter; the rest keep their
    defaults.  ``at`` is in *wall iterations* for elastic runs and in
    *virtual seconds* for scheduler runs — the natural clock of each
    simulation.
    """

    #: Registered fault kind or alias (``python -m repro list faults``).
    kind: str = "node-crash"
    #: Injection time (wall iterations for runs, seconds for sched).
    at: float = 0.0
    #: Window length for windowed kinds; 0 = permanent.  For sched
    #: crashes, a nonzero duration schedules the node's repair.
    duration: float = 0.0
    #: nic-degrade: remaining fraction of inter-node bandwidth, (0, 1).
    scale: float = 0.5
    #: straggler: compute slow-down factor, > 1.
    stretch: float = 2.0
    #: az-reclaim: fraction of live nodes reclaimed, (0, 1].
    fraction: float = 0.5
    #: Explicit victim node id (None = seeded pick among live nodes).
    node: int | None = None
    #: Flap support: total occurrences (>= 1) spaced ``period`` apart.
    repeat: int = 1
    #: Spacing between repeats (same unit as ``at``); required > 0 when
    #: ``repeat`` > 1.
    period: float = 0.0
    #: gray-net: packet-loss probability on the sick link, [0, 1);
    #: retransmissions stretch effective bandwidth by 1 / (1 - loss).
    loss_rate: float = 0.05
    #: gray-net: latency-jitter amplitude (>= 0); scales the seeded
    #: per-iteration stochastic comm stretch.
    jitter: float = 0.5
    #: gray-net: distribution the per-iteration jitter draws from
    #: (``exp`` or ``lognormal``).
    jitter_dist: str = "exp"


@dataclass(frozen=True)
class FaultsConfig:
    """The fault plan of a run: seeded, deterministic, replayable.

    Present ⇒ the run (elastic) or scenario (sched) is perturbed by the
    listed events through :mod:`repro.faults`; absent ⇒ every code path
    is bit-identical to a build without the subsystem.
    """

    #: Seed for the plan's victim picks (None = derived from the run
    #: seed, so one master seed still fixes everything).
    seed: int | None = None
    #: Planned fault events (each a :class:`FaultConfig`).
    events: tuple = ()
    #: Path to a JSON plan file (``{"events": [...]}`` or a bare list);
    #: mutually exclusive with inline ``events``.
    plan: str | None = None
    #: Iterations between the *implied* checkpoints the scheduler's
    #: closed form rolls surprise-hit jobs back to (elastic runs use
    #: their real ``elastic.checkpoint_every`` instead).
    checkpoint_iterations: int = 25
    #: Virtual-seconds budget for one checkpoint write (elastic runs);
    #: a disk-slow-stretched write exceeding it is abandoned and retried
    #: on the fallback slot.  0 = unlimited (the pre-gray behaviour).
    checkpoint_timeout: float = 0.0
    #: Node suspicion score at which the health ledger quarantines a
    #: repeat offender (> 0); read by the ``fault-aware`` policy.
    quarantine_threshold: float = 2.0
    #: Suspicion half-life in virtual seconds (> 0): how fast the
    #: phi-accrual-style score decays between fault observations.
    health_half_life: float = 300.0
    #: Virtual seconds a quarantined node sits out before a probe
    #: halves its score and returns it to the candidate pool (>= 0).
    probe_cooldown: float = 180.0


def _faults_from_dict(data: Any) -> FaultsConfig:
    if not isinstance(data, dict):
        raise ConfigError(f"'faults' must be a mapping, got {type(data).__name__}")
    _check_keys("faults", data, FaultsConfig)
    kwargs: dict[str, Any] = {k: v for k, v in data.items() if k != "events"}
    events = data.get("events", ())
    if not isinstance(events, (list, tuple)):
        raise ConfigError("'faults.events' must be a list of fault mappings")
    parsed = []
    for i, event in enumerate(events):
        if isinstance(event, FaultConfig):
            parsed.append(event)
        else:
            parsed.append(_from_dict(f"faults.events[{i}]", event, FaultConfig))
    kwargs["events"] = tuple(parsed)
    return FaultsConfig(**kwargs)


def _faults_to_dict(faults: FaultsConfig) -> dict:
    data = dataclasses.asdict(faults)
    # Lists, not tuples, so JSON round-trips and --set can index them.
    data["events"] = [dict(event) for event in data["events"]]
    return data


def _validate_faults(faults: FaultsConfig, *, seed: int, target: str) -> None:
    """Resolve the plan (kinds, params, plan file) so typos fail at load."""
    from repro.faults.plan import FaultPlan

    FaultPlan.from_config(faults, seed=seed, target=target)


@dataclass(frozen=True)
class BrainConfig:
    """The autotuning brain of a sched scenario (``repro.brain``).

    Present ⇒ the named :class:`~repro.brain.Autotuner` observes every
    policy run and issues migrate/shrink/grow decisions at each tick;
    absent — or ``static`` — ⇒ every code path is byte-identical to a
    build without the subsystem.
    """

    #: Registered brain name or alias (``python -m repro list brains``);
    #: built-ins: ``static`` / ``throughput`` / ``health-migrate``.
    name: str = "static"
    #: Virtual seconds between decision ticks, > 0.
    interval: float = 60.0
    #: Seconds a just-rescaled job (and its vacated node) is frozen
    #: against autoscale reversal, >= 0.
    min_dwell: float = 120.0
    #: Suspicion fraction of the quarantine threshold at which a node
    #: reads as *gray* (migration candidate), in (0, 1].
    migrate_suspicion: float = 0.5
    #: Minimum marginal-node scaling efficiency (net of rollback risk)
    #: required to grow, in (0, 1].
    grow_efficiency: float = 0.7
    #: Marginal efficiency below which the last node is shed, in [0, 1).
    shrink_efficiency: float = 0.25
    #: Weight of the suspicion-priced expected rollback cost subtracted
    #: from a scale-up's efficiency, >= 0.
    rollback_weight: float = 1.0
    #: Applied decisions per tick across all jobs, >= 1.
    max_actions: int = 2


def _validate_brain(brain: BrainConfig) -> None:
    from repro.brain.base import BRAINS

    if brain.name not in BRAINS:
        raise ConfigError(
            f"unknown brain {brain.name!r}; "
            f"registered: {', '.join(BRAINS.available())}"
        )
    if brain.interval <= 0:
        raise ConfigError(f"brain interval must be > 0, got {brain.interval}")
    if brain.min_dwell < 0:
        raise ConfigError(f"brain min_dwell must be >= 0, got {brain.min_dwell}")
    if not 0 < brain.migrate_suspicion <= 1:
        raise ConfigError(
            f"brain migrate_suspicion must be in (0, 1], got {brain.migrate_suspicion}"
        )
    if not 0 < brain.grow_efficiency <= 1:
        raise ConfigError(
            f"brain grow_efficiency must be in (0, 1], got {brain.grow_efficiency}"
        )
    if not 0 <= brain.shrink_efficiency < 1:
        raise ConfigError(
            f"brain shrink_efficiency must be in [0, 1), got {brain.shrink_efficiency}"
        )
    if brain.rollback_weight < 0:
        raise ConfigError(
            f"brain rollback_weight must be >= 0, got {brain.rollback_weight}"
        )
    if brain.max_actions < 1:
        raise ConfigError(f"brain max_actions must be >= 1, got {brain.max_actions}")


@dataclass(frozen=True)
class RunConfig:
    """Everything one run needs, serializable and seed-complete."""

    #: Run label (non-empty); becomes the ``run_<name>`` bench id.
    name: str = "run"
    #: Master seed fixing data synthesis, init, sampling and churn.
    seed: int = 0
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    comm: CommConfig = field(default_factory=CommConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    elastic: ElasticConfig | None = None
    #: Optional fault plan (requires ``elastic``); see ``docs/faults.md``.
    faults: FaultsConfig | None = None
    exec: ExecConfig = field(default_factory=ExecConfig)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict, *, validate: bool = True) -> "RunConfig":
        if not isinstance(data, dict):
            raise ConfigError(f"run config must be a mapping, got {type(data).__name__}")
        _check_keys("run", data, cls)
        kwargs: dict[str, Any] = {
            k: data[k] for k in ("name", "seed") if k in data
        }
        if "cluster" in data:
            kwargs["cluster"] = _from_dict("cluster", data["cluster"], ClusterConfig)
        if "comm" in data:
            kwargs["comm"] = _from_dict("comm", data["comm"], CommConfig)
        if "train" in data:
            kwargs["train"] = _from_dict("train", data["train"], TrainConfig)
        if data.get("elastic") is not None:
            kwargs["elastic"] = _from_dict("elastic", data["elastic"], ElasticConfig)
        if data.get("faults") is not None:
            kwargs["faults"] = _faults_from_dict(data["faults"])
        if "exec" in data:
            kwargs["exec"] = _from_dict("exec", data["exec"], ExecConfig)
        config = cls(**kwargs)
        if validate:
            config.validate()
        return config

    @classmethod
    def from_json(cls, text: str, *, validate: bool = True) -> "RunConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON run config: {exc}") from exc
        return cls.from_dict(data, validate=validate)

    @classmethod
    def from_file(cls, path: str | pathlib.Path, *, validate: bool = True) -> "RunConfig":
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigError(f"config file not found: {path}")
        return cls.from_json(path.read_text(), validate=validate)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "seed": self.seed,
            "cluster": dataclasses.asdict(self.cluster),
            "comm": dataclasses.asdict(self.comm),
            "train": dataclasses.asdict(self.train),
            "exec": dataclasses.asdict(self.exec),
        }
        if self.elastic is not None:
            data["elastic"] = dataclasses.asdict(self.elastic)
        if self.faults is not None:
            data["faults"] = _faults_to_dict(self.faults)
        return data

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    # -- validation --------------------------------------------------------
    def validate(self) -> "RunConfig":
        """Check names against the registries and values for sanity."""
        from repro.api import registry

        if not self.name:
            raise ConfigError("run 'name' must be a non-empty string")
        if self.cluster.instance not in registry.CLUSTERS:
            raise ConfigError(
                f"unknown cluster instance {self.cluster.instance!r}; "
                f"registered: {', '.join(registry.CLUSTERS.available())}"
            )
        if self.comm.scheme not in registry.SCHEMES:
            raise ConfigError(
                f"unknown comm scheme {self.comm.scheme!r}; "
                f"registered: {', '.join(registry.SCHEMES.available())}"
            )
        if self.comm.compressor is not None and self.comm.compressor not in registry.COMPRESSORS:
            raise ConfigError(
                f"unknown compressor {self.comm.compressor!r}; "
                f"registered: {', '.join(registry.COMPRESSORS.available())}"
            )
        if self.train.model not in registry.MODELS:
            raise ConfigError(
                f"unknown model {self.train.model!r}; "
                f"registered: {', '.join(registry.MODELS.available())}"
            )
        if self.cluster.num_nodes < 1 or self.cluster.gpus_per_node < 1:
            raise ConfigError("cluster num_nodes and gpus_per_node must be >= 1")
        if not 0 < self.comm.density <= 1:
            raise ConfigError(f"comm density must be in (0, 1], got {self.comm.density}")
        if self.train.epochs < 1 or self.train.local_batch < 1 or self.train.num_samples < 1:
            raise ConfigError("train epochs, local_batch and num_samples must be >= 1")
        _validate_exec(self.exec)
        if self.elastic is not None:
            if self.elastic.schedule not in ELASTIC_SCHEDULES:
                raise ConfigError(
                    f"unknown elastic schedule {self.elastic.schedule!r}; "
                    f"accepted: {', '.join(ELASTIC_SCHEDULES)}"
                )
            if self.elastic.iterations < 1:
                raise ConfigError("elastic iterations must be >= 1")
            if self.elastic.rate < 0:
                raise ConfigError("elastic rate must be >= 0")
            if self.elastic.min_nodes < 1 or self.elastic.min_nodes > self.cluster.num_nodes:
                raise ConfigError(
                    "elastic min_nodes must be in [1, cluster.num_nodes]"
                )
        if self.faults is not None:
            if self.elastic is None:
                raise ConfigError(
                    "faults require an 'elastic' section: fault drills perturb "
                    "the elastic trainer (add \"elastic\": {} or "
                    "--set elastic.schedule=none)"
                )
            _validate_faults(self.faults, seed=self.seed, target="run")
        return self


# ---------------------------------------------------------------------------
# Multi-tenant scheduling configs (repro.sched)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobConfig:
    """One schedulable job of a :class:`SchedConfig` scenario.

    The scalar mirror of :class:`repro.sched.JobSpec`; see that class
    for full semantics.  Validation happens by constructing the spec.
    """

    #: Unique job identifier within the scenario.
    name: str = "job"
    #: Workload profile: ``resnet50`` / ``vgg19`` / ``transformer``
    #: (:data:`repro.models.profiles.PROFILES`).
    profile: str = "resnet50"
    #: Registered comm-scheme name or alias (``python -m repro list
    #: schemes``); timed via its Table 3 archetype.
    scheme: str = "mstopk"
    #: Top-k sparsity rho in (0, 1] for the sparse schemes.
    density: float = 0.01
    #: Input resolution in pixels (None = 224 when calibrated, else the
    #: profile's reference; 0 for the Transformer).
    resolution: int | None = None
    #: Per-GPU batch (None = the profile's default).
    local_batch: int | None = None
    #: Iterations of work to complete, >= 1.
    iterations: int = 200
    #: Placement priority; higher may shrink strictly-lower ones.
    priority: int = 0
    #: Completion deadline in seconds after arrival (None = none).
    deadline_seconds: float | None = None
    #: Billing: ``spot`` (discounted) or ``on-demand`` (full price).
    preference: str = "spot"
    #: Elastic allocation window in whole nodes, 1 <= min <= max.
    min_nodes: int = 1
    max_nodes: int = 2
    #: GPUs used on each allocated node (None = the whole node); smaller
    #: slices let jobs co-locate and contend for the NIC.
    gpus_per_node: int | None = None
    #: Submission time on the virtual clock, seconds >= 0.
    arrival_seconds: float = 0.0
    #: Optional training payload (:class:`repro.sched.TrainPayload`
    #: fields as a mapping, e.g. ``{"model": "mlp-tiny", "seed": 3}``);
    #: payload jobs replay their scheduler-decided allocation history
    #: through the real ElasticTrainer after the simulation.
    payload: dict | None = None

    def to_spec(self):
        """Build the runtime :class:`repro.sched.JobSpec` (validates)."""
        from repro.sched.job import JobSpec, TrainPayload

        data = dataclasses.asdict(self)
        payload = data.pop("payload", None)
        try:
            if payload is not None:
                if not isinstance(payload, dict):
                    raise ValueError(
                        f"payload must be a mapping, got {type(payload).__name__}"
                    )
                data["payload"] = TrainPayload(**payload)
            return JobSpec(**data)
        except (TypeError, ValueError, KeyError) as exc:
            raise ConfigError(f"job {self.name!r}: {exc}") from exc


@dataclass(frozen=True)
class SchedConfig:
    """A multi-tenant scheduling scenario: shared cluster + job queue.

    ``python -m repro sched --config <file>`` runs the scenario once per
    entry in ``policies`` and emits one combined BENCH payload, so a
    single config file is a policy comparison.
    """

    #: Scenario label (non-empty); becomes the ``sched_<name>`` bench id.
    name: str = "sched"
    #: Recorded for provenance; the simulation is deterministic.
    seed: int = 0
    #: The shared cluster all jobs contend for.
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    #: Registered placement policies to compare (``python -m repro list
    #: policies``); built-ins: ``bin-pack`` / ``spread`` /
    #: ``network-aware``.
    policies: tuple = ("bin-pack",)
    #: The job queue (>= 1 job; names unique).  Ignored when ``trace``
    #: is set (the two are mutually exclusive in config files).
    jobs: tuple = (JobConfig(),)
    #: Path to a cluster trace (``.jsonl`` file or PAI-style CSV
    #: directory; see ``docs/traces.md``).  When set, the job queue is
    #: loaded from the trace instead of ``jobs`` and the CLI reports
    #: JCT/queue-wait distributions instead of per-job rows.
    trace: str | None = None
    #: Optional fault plan perturbing the shared cluster (node crashes,
    #: AZ reclaims, NIC degradation, stragglers); see ``docs/faults.md``.
    faults: FaultsConfig | None = None
    #: Optional autotuning brain re-planning per-job resources online
    #: (migrate/shrink/grow); see ``docs/brain.md``.
    brain: BrainConfig | None = None
    #: Where the per-policy simulations run: the ``process`` backend
    #: fans the policy grid across cores (results identical to serial).
    exec: ExecConfig = field(default_factory=ExecConfig)

    @classmethod
    def from_dict(cls, data: dict, *, validate: bool = True) -> "SchedConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"sched config must be a mapping, got {type(data).__name__}"
            )
        _check_keys("sched", data, cls)
        kwargs: dict[str, Any] = {k: data[k] for k in ("name", "seed") if k in data}
        if "cluster" in data:
            kwargs["cluster"] = _from_dict("cluster", data["cluster"], ClusterConfig)
        if "policies" in data:
            policies = data["policies"]
            if isinstance(policies, str):
                policies = [policies]
            if not isinstance(policies, (list, tuple)):
                raise ConfigError("'policies' must be a list of policy names")
            kwargs["policies"] = tuple(policies)
        if "jobs" in data and "trace" in data and data["trace"] is not None:
            raise ConfigError(
                "'jobs' and 'trace' are mutually exclusive: a trace IS the "
                "job queue"
            )
        if "jobs" in data:
            jobs = data["jobs"]
            if not isinstance(jobs, (list, tuple)):
                raise ConfigError("'jobs' must be a list of job mappings")
            kwargs["jobs"] = tuple(
                _from_dict(f"jobs[{i}]", job, JobConfig) for i, job in enumerate(jobs)
            )
        if "trace" in data and data["trace"] is not None:
            if not isinstance(data["trace"], str) or not data["trace"]:
                raise ConfigError("'trace' must be a non-empty path string")
            kwargs["trace"] = data["trace"]
        if data.get("faults") is not None:
            kwargs["faults"] = _faults_from_dict(data["faults"])
        if data.get("brain") is not None:
            kwargs["brain"] = _from_dict("brain", data["brain"], BrainConfig)
        if "exec" in data:
            kwargs["exec"] = _from_dict("exec", data["exec"], ExecConfig)
        config = cls(**kwargs)
        if validate:
            config.validate()
        return config

    @classmethod
    def from_json(cls, text: str, *, validate: bool = True) -> "SchedConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON sched config: {exc}") from exc
        return cls.from_dict(data, validate=validate)

    @classmethod
    def from_file(
        cls, path: str | pathlib.Path, *, validate: bool = True
    ) -> "SchedConfig":
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigError(f"config file not found: {path}")
        return cls.from_json(path.read_text(), validate=validate)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "cluster": dataclasses.asdict(self.cluster),
            "policies": list(self.policies),
            # jobs/trace are mutually exclusive; emit whichever is live
            # so the dict survives a from_dict round trip.
            **(
                {"trace": self.trace}
                if self.trace is not None
                else {"jobs": [dataclasses.asdict(job) for job in self.jobs]}
            ),
            **(
                {"faults": _faults_to_dict(self.faults)}
                if self.faults is not None
                else {}
            ),
            **(
                {"brain": dataclasses.asdict(self.brain)}
                if self.brain is not None
                else {}
            ),
            "exec": dataclasses.asdict(self.exec),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def validate(self) -> "SchedConfig":
        from repro.api import registry

        if not self.name:
            raise ConfigError("sched 'name' must be a non-empty string")
        if self.cluster.instance not in registry.CLUSTERS:
            raise ConfigError(
                f"unknown cluster instance {self.cluster.instance!r}; "
                f"registered: {', '.join(registry.CLUSTERS.available())}"
            )
        if self.cluster.num_nodes < 1 or self.cluster.gpus_per_node < 1:
            raise ConfigError("cluster num_nodes and gpus_per_node must be >= 1")
        if not self.policies:
            raise ConfigError("sched 'policies' must name at least one policy")
        from repro.sched.policies import POLICIES

        for policy in self.policies:
            if policy not in POLICIES:
                raise ConfigError(
                    f"unknown policy {policy!r}; "
                    f"registered: {', '.join(POLICIES.available())}"
                )
        canonical = [POLICIES.canonical(p) for p in self.policies]
        duplicates = sorted({p for p in canonical if canonical.count(p) > 1})
        if duplicates:
            raise ConfigError(
                f"policies resolve to duplicate entries: {', '.join(duplicates)}"
            )
        if self.faults is not None:
            _validate_faults(self.faults, seed=self.seed, target="sched")
        if self.brain is not None:
            _validate_brain(self.brain)
        if self.trace is not None:
            if not isinstance(self.trace, str) or not self.trace:
                raise ConfigError("'trace' must be a non-empty path string")
            # Trace contents (existence, referential integrity, workload
            # names) are validated when the trace is loaded at run time;
            # the inline-jobs checks below do not apply.
            _validate_exec(self.exec)
            return self
        if not self.jobs:
            raise ConfigError("sched 'jobs' must contain at least one job")
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise ConfigError(f"job names must be unique, got {sorted(names)}")
        for job in self.jobs:
            spec = job.to_spec()  # field-level validation
            if spec.min_nodes > self.cluster.num_nodes:
                raise ConfigError(
                    f"job {job.name!r} needs {spec.min_nodes} nodes, cluster "
                    f"has {self.cluster.num_nodes}"
                )
            gpus = spec.gpus_per_node
            if gpus is not None and gpus > self.cluster.gpus_per_node:
                raise ConfigError(
                    f"job {job.name!r} wants {gpus} GPUs/node on "
                    f"{self.cluster.gpus_per_node}-GPU nodes"
                )
        _validate_exec(self.exec)
        return self


@dataclass(frozen=True)
class ServeConfig:
    """The always-on scheduler daemon (``python -m repro serve``).

    Unlike :class:`SchedConfig` — one pre-declared batch, one policy
    *comparison* — a serve config describes a single live service: one
    placement policy, jobs submitted while the clock runs, durable state
    under ``--state-dir``.  See ``docs/serve.md``.
    """

    #: Service label (non-empty); becomes the ``serve_<name>`` bench id.
    name: str = "serve"
    #: Seeds the fault plan; the service itself is deterministic.
    seed: int = 0
    #: The shared cluster the daemon schedules onto.
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    #: The single placement policy the live service runs.
    policy: str = "bin-pack"
    #: Optional fault plan perturbing the live cluster.
    faults: FaultsConfig | None = None
    #: Optional autotuning brain re-planning resources online.
    brain: BrainConfig | None = None
    #: Admission backlog bound (pending + queued); submissions beyond it
    #: are shed with a structured ``queue full`` rejection.
    queue_limit: int = 64
    #: Snapshot cadence: persist engine state every N applied ops
    #: (bounds journal-replay length on recovery).
    snapshot_every: int = 8
    #: Virtual seconds one ``tick`` op advances when no ``until`` given.
    tick_seconds: float = 300.0
    #: Event-loop iterations allowed per tick/drain (runaway guard).
    max_events_per_tick: int = 10_000

    @classmethod
    def from_dict(cls, data: dict, *, validate: bool = True) -> "ServeConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"serve config must be a mapping, got {type(data).__name__}"
            )
        _check_keys("serve", data, cls)
        kwargs: dict[str, Any] = {
            k: data[k]
            for k in (
                "name", "seed", "policy", "queue_limit", "snapshot_every",
                "tick_seconds", "max_events_per_tick",
            )
            if k in data
        }
        if "cluster" in data:
            kwargs["cluster"] = _from_dict("cluster", data["cluster"], ClusterConfig)
        if data.get("faults") is not None:
            kwargs["faults"] = _faults_from_dict(data["faults"])
        if data.get("brain") is not None:
            kwargs["brain"] = _from_dict("brain", data["brain"], BrainConfig)
        config = cls(**kwargs)
        if validate:
            config.validate()
        return config

    @classmethod
    def from_json(cls, text: str, *, validate: bool = True) -> "ServeConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON serve config: {exc}") from exc
        return cls.from_dict(data, validate=validate)

    @classmethod
    def from_file(
        cls, path: str | pathlib.Path, *, validate: bool = True
    ) -> "ServeConfig":
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigError(f"config file not found: {path}")
        return cls.from_json(path.read_text(), validate=validate)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "cluster": dataclasses.asdict(self.cluster),
            "policy": self.policy,
            **(
                {"faults": _faults_to_dict(self.faults)}
                if self.faults is not None
                else {}
            ),
            **(
                {"brain": dataclasses.asdict(self.brain)}
                if self.brain is not None
                else {}
            ),
            "queue_limit": self.queue_limit,
            "snapshot_every": self.snapshot_every,
            "tick_seconds": self.tick_seconds,
            "max_events_per_tick": self.max_events_per_tick,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def validate(self) -> "ServeConfig":
        from repro.api import registry

        if not self.name:
            raise ConfigError("serve 'name' must be a non-empty string")
        if self.cluster.instance not in registry.CLUSTERS:
            raise ConfigError(
                f"unknown cluster instance {self.cluster.instance!r}; "
                f"registered: {', '.join(registry.CLUSTERS.available())}"
            )
        if self.cluster.num_nodes < 1 or self.cluster.gpus_per_node < 1:
            raise ConfigError("cluster num_nodes and gpus_per_node must be >= 1")
        from repro.sched.policies import POLICIES

        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; "
                f"registered: {', '.join(POLICIES.available())}"
            )
        if self.queue_limit < 1:
            raise ConfigError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.snapshot_every < 1:
            raise ConfigError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if not self.tick_seconds > 0:
            raise ConfigError(
                f"tick_seconds must be > 0, got {self.tick_seconds}"
            )
        if self.max_events_per_tick < 1:
            raise ConfigError(
                f"max_events_per_tick must be >= 1, got {self.max_events_per_tick}"
            )
        if self.faults is not None:
            _validate_faults(self.faults, seed=self.seed, target="sched")
        if self.brain is not None:
            _validate_brain(self.brain)
        return self


def apply_serve_overrides(
    config: ServeConfig, overrides: Sequence[str]
) -> ServeConfig:
    """Apply dotted overrides to a serve config and re-validate."""
    return ServeConfig.from_dict(_apply_overrides_data(config.to_dict(), overrides))


def _validate_exec(config: ExecConfig) -> None:
    """Shared exec-section validation for run and sched configs."""
    from repro.exec.backend import BACKENDS, START_METHODS

    if config.backend not in BACKENDS:
        raise ConfigError(
            f"unknown exec backend {config.backend!r}; "
            f"registered: {', '.join(BACKENDS.available())}"
        )
    if config.jobs < 0:
        raise ConfigError(f"exec jobs must be >= 0 (0 = all cores), got {config.jobs}")
    if config.start_method is not None and config.start_method not in START_METHODS:
        raise ConfigError(
            f"unknown exec start_method {config.start_method!r}; "
            f"accepted: {', '.join(START_METHODS)}"
        )


def _parse_override_value(raw: str) -> Any:
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw  # bare strings need no quoting: --set comm.scheme=dense


def _apply_overrides_data(data: dict, overrides: Sequence[str]) -> dict:
    """Apply dotted-path overrides to a config dict (shared helper).

    Numeric path segments index into lists (``--set jobs.0.priority=5``);
    ``elastic``, ``faults`` and ``brain`` materialise as empty sections
    on first touch so any config can opt into churn, fault drills or an
    autotuning brain from the command line.
    """
    for item in overrides:
        if "=" not in item:
            raise ConfigError(f"override {item!r} is not of the form key=value")
        path, raw = item.split("=", 1)
        keys = path.strip().split(".")
        if not all(keys):
            raise ConfigError(f"override {item!r} has an empty key path")
        node: Any = data
        for i, key in enumerate(keys[:-1]):
            if (
                key in ("elastic", "faults", "brain")
                and node is data
                and data.get(key) is None
            ):
                data[key] = {}
            if isinstance(node, list):
                if not key.isdigit() or int(key) >= len(node):
                    raise ConfigError(
                        f"override {item!r}: {'.'.join(keys[: i + 1])!r} is not a "
                        f"valid list index (list has {len(node)} entries)"
                    )
                node = node[int(key)]
                continue
            if not isinstance(node, dict) or not isinstance(node.get(key), (dict, list)):
                raise ConfigError(
                    f"override {item!r}: {'.'.join(keys[: i + 1])!r} is not a section"
                )
            node = node[key]
        last = keys[-1]
        value = _parse_override_value(raw.strip())
        if isinstance(node, list):
            if not last.isdigit() or int(last) >= len(node):
                raise ConfigError(
                    f"override {item!r}: {last!r} is not a valid list index "
                    f"(list has {len(node)} entries)"
                )
            node[int(last)] = value
        else:
            node[last] = value
    return data


def apply_overrides(config: RunConfig, overrides: Sequence[str]) -> RunConfig:
    """Apply ``section.key=value`` overrides and re-validate.

    ``--set elastic.rate=0.02`` on a non-elastic config materialises a
    default :class:`ElasticConfig` first, so any run can be made elastic
    from the command line.
    """
    return RunConfig.from_dict(_apply_overrides_data(config.to_dict(), overrides))


def apply_sched_overrides(
    config: SchedConfig, overrides: Sequence[str]
) -> SchedConfig:
    """Apply dotted overrides to a sched config and re-validate.

    List entries address by index: ``--set jobs.0.priority=5``,
    ``--set policies.1=spread``.
    """
    return SchedConfig.from_dict(_apply_overrides_data(config.to_dict(), overrides))


__all__ = [
    "ConfigError",
    "ClusterConfig",
    "CommConfig",
    "TrainConfig",
    "ElasticConfig",
    "ELASTIC_SCHEDULES",
    "ExecConfig",
    "FaultConfig",
    "FaultsConfig",
    "BrainConfig",
    "RunConfig",
    "JobConfig",
    "SchedConfig",
    "ServeConfig",
    "apply_overrides",
    "apply_sched_overrides",
    "apply_serve_overrides",
]
