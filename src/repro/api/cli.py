"""``python -m repro`` — the command-line face of the facade.

Subcommands::

    repro run --config cfg.json [--set key=value ...] [--json] [--out PATH]
              [--backend NAME] [--jobs N]
    repro sched (--config cfg.json | --trace PATH) [--set key=value ...]
              [--json] [--out PATH] [--backend NAME] [--jobs N]
    repro trace gen --out PATH [--num-jobs N] [--seed S] [--duration-hours H]
              [--payload-fraction F] [--format jsonl|csv]
    repro trace validate PATH [--json]
    repro serve --config cfg.json [--state-dir DIR] [--script PATH | --trace PATH
              | --socket PATH] [--drill] [--kill-at POINT] [--set key=value ...]
    repro submit --socket PATH (--job JSON | --op JSON | --file PATH)
              [--retries N] [--timeout S] [--backoff S]
    repro list [schemes|compressors|models|clusters|policies|backends|experiments]
    repro experiments [--only SUBSTR] [--fast] [--backend NAME] [--jobs N]

``serve`` runs the crash-safe always-on scheduler daemon (write-ahead
journal + snapshots under ``--state-dir``; see ``docs/serve.md``) and
``submit`` is its unix-socket client;
``run`` executes one declarative :class:`~repro.api.config.RunConfig`;
``sched`` simulates a multi-tenant
:class:`~repro.api.config.SchedConfig` scenario (one run per configured
placement policy) — with ``--trace`` the job queue comes from a cluster
trace (``docs/traces.md``) and the payload reports JCT / queue-wait /
slowdown *distributions* instead of per-job rows; ``trace gen`` /
``trace validate`` create and check traces; ``list`` enumerates the
registries (and the experiment harnesses); ``experiments`` delegates to
:mod:`repro.experiments.runner`.  ``--backend``/``--jobs`` pick the
:mod:`repro.exec` execution backend (``--set exec.backend=...``
shorthand): ``process`` fans work across CPU cores, bit-identical to
serial.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys

from repro.api import registry
from repro.api.config import (
    RunConfig,
    SchedConfig,
    ServeConfig,
    apply_overrides,
    apply_sched_overrides,
    apply_serve_overrides,
)
from repro.api.facade import preflight, run_sched
from repro.api.facade import run as run_facade

LIST_GROUPS = (
    "schemes",
    "compressors",
    "models",
    "clusters",
    "policies",
    "backends",
    "faults",
    "brains",
    "experiments",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'Towards Scalable Distributed Training of "
        "Deep Learning on Public Cloud Clusters' — declarative run facade.",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="execute one declarative run config")
    run_p.add_argument("--config", required=True, help="path to a RunConfig JSON file")
    run_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a config entry, e.g. --set comm.density=0.01 "
        "(repeatable; dotted paths; JSON values)",
    )
    run_p.add_argument(
        "--json",
        action="store_true",
        help="print the BENCH-schema JSON payload instead of the table",
    )
    run_p.add_argument(
        "--out", default=None, metavar="PATH", help="also write the JSON payload here"
    )
    _add_exec_flags(run_p)

    sched_p = sub.add_parser(
        "sched", help="simulate a multi-tenant scheduling scenario"
    )
    sched_p.add_argument(
        "--config", default=None, help="path to a SchedConfig JSON file"
    )
    sched_p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="replay a cluster trace (.jsonl file or CSV directory, see "
        "docs/traces.md) instead of the config's inline jobs; without "
        "--config the scenario defaults to 16 8-GPU tencent nodes",
    )
    sched_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a config entry, e.g. --set jobs.0.priority=5 "
        "(repeatable; dotted paths; numeric segments index lists)",
    )
    sched_p.add_argument(
        "--json",
        action="store_true",
        help="print the BENCH-schema JSON payload instead of the table",
    )
    sched_p.add_argument(
        "--out", default=None, metavar="PATH", help="also write the JSON payload here"
    )
    _add_exec_flags(sched_p)

    trace_p = sub.add_parser(
        "trace", help="generate or validate cluster traces (docs/traces.md)"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command")
    gen_p = trace_sub.add_parser(
        "gen", help="generate a seeded synthetic trace"
    )
    gen_p.add_argument(
        "--out", required=True, metavar="PATH",
        help="output path (.jsonl file, or a directory with --format csv)",
    )
    gen_p.add_argument(
        "--num-jobs", type=int, default=1000, metavar="N",
        help="exact job count (default: 1000)",
    )
    gen_p.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    gen_p.add_argument(
        "--duration-hours", type=float, default=24.0, metavar="H",
        help="trace horizon in hours (default: 24)",
    )
    gen_p.add_argument(
        "--payload-fraction", type=float, default=0.0, metavar="F",
        help="fraction of jobs carrying a real training payload "
        "(default: 0 = pure closed-form replay)",
    )
    gen_p.add_argument(
        "--format", choices=("jsonl", "csv"), default="jsonl",
        help="on-disk layout (default: jsonl)",
    )
    val_p = trace_sub.add_parser(
        "validate", help="parse a trace, resolve workloads, print stats"
    )
    val_p.add_argument("path", help="trace path (.jsonl file or CSV directory)")
    val_p.add_argument(
        "--json", action="store_true", help="print the stats as JSON"
    )

    serve_p = sub.add_parser(
        "serve", help="run the crash-safe always-on scheduler daemon"
    )
    serve_p.add_argument(
        "--config", required=True, help="path to a ServeConfig JSON file"
    )
    serve_p.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable state directory (journal + snapshots); restarting "
        "against the same directory recovers; default: a fresh temp dir",
    )
    serve_p.add_argument(
        "--script",
        default=None,
        metavar="PATH",
        help="JSON-lines op script to drive the daemon with ('-' = stdin; "
        "the default input mode)",
    )
    serve_p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="derive the op stream from a cluster trace (tick to each "
        "arrival, submit, final drain)",
    )
    serve_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="with --trace: only the first N jobs",
    )
    serve_p.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve JSON-lines ops on a unix socket instead of a script "
        "(clients: `repro submit --socket PATH`)",
    )
    serve_p.add_argument(
        "--drill",
        action="store_true",
        help="run the kill-anywhere recovery drill over the op stream: "
        "crash at each injection point, restart, require the recovered "
        "payload byte-identical with zero acknowledged submissions lost",
    )
    serve_p.add_argument(
        "--kill-at",
        action="append",
        default=[],
        metavar="POINT",
        help="injection point(s) like tick:2 / snapshot:1 / append:3 — "
        "with --drill the points to drill; without it, crash the daemon "
        "there (restart with the same --state-dir to recover)",
    )
    serve_p.add_argument(
        "--kill-mode",
        choices=("raise", "sigkill"),
        default="sigkill",
        help="how --kill-at dies: a real SIGKILL (default) or a Python "
        "exception (in-process harnesses)",
    )
    serve_p.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="override the admission backlog bound (--set queue_limit=N)",
    )
    serve_p.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="override the snapshot cadence in ops (--set snapshot_every=N)",
    )
    serve_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a config entry, e.g. --set cluster.num_nodes=4",
    )
    serve_p.add_argument(
        "--json",
        action="store_true",
        help="print the BENCH-schema JSON payload instead of the table",
    )
    serve_p.add_argument(
        "--out", default=None, metavar="PATH", help="also write the JSON payload here"
    )

    submit_p = sub.add_parser(
        "submit", help="submit jobs/ops to a running serve daemon"
    )
    submit_p.add_argument(
        "--socket", required=True, metavar="PATH", help="the daemon's unix socket"
    )
    submit_p.add_argument(
        "--job",
        action="append",
        default=[],
        metavar="JSON",
        help="inline job mapping to submit (repeatable), e.g. "
        '\'{"name": "j1", "iterations": 50}\'',
    )
    submit_p.add_argument(
        "--op",
        action="append",
        default=[],
        metavar="JSON",
        help="raw op mapping (repeatable), e.g. '{\"op\": \"tick\"}'",
    )
    submit_p.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help="JSON-lines file of ops (or bare job mappings, auto-wrapped "
        "in submit ops)",
    )
    submit_p.add_argument(
        "--retries",
        type=int,
        default=5,
        metavar="N",
        help="connect attempts before giving up (default: 5)",
    )
    submit_p.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="S",
        help="per-op socket timeout in seconds (default: 5)",
    )
    submit_p.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        metavar="S",
        help="base connect-retry backoff in seconds, doubled per attempt "
        "with jitter (default: 0.05)",
    )
    submit_p.add_argument(
        "--json", action="store_true", help="print each ack as JSON (default)"
    )

    list_p = sub.add_parser("list", help="enumerate registered components")
    list_p.add_argument(
        "group", nargs="?", default=None, choices=LIST_GROUPS,
        help="one group (default: all)",
    )

    exp_p = sub.add_parser("experiments", help="run the paper experiment harnesses")
    exp_p.add_argument("--only", default=None, help="substring filter on experiment names")
    exp_p.add_argument(
        "--fast",
        action="store_true",
        help="trim the expensive sweeps (Fig. 6, Fig. 10, elastic churn)",
    )
    _add_exec_flags(exp_p)
    return parser


def _add_exec_flags(parser: argparse.ArgumentParser) -> None:
    """``--backend`` / ``--jobs``: execution-backend shorthand.

    Equivalent to ``--set exec.backend=... --set exec.jobs=...`` (and
    overriding them, since they apply last); ``experiments`` has no
    config file, so there they are the only spelling.
    """
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend (see `python -m repro list backends`); "
        "'process' fans work across CPU cores, bit-identical to serial",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for parallel backends (0 = all cores); "
        "implies --backend process when no backend is named",
    )


def _exec_overrides(args: argparse.Namespace) -> list[str]:
    """Translate --backend/--jobs into ``--set exec.*`` overrides."""
    overrides = []
    if args.backend is not None:
        overrides.append(f"exec.backend={args.backend}")
    if args.jobs is not None:
        if args.backend is None:
            overrides.append("exec.backend=process")
        overrides.append(f"exec.jobs={args.jobs}")
    return overrides


def _registry_lines(reg: registry.Registry) -> list[str]:
    lines = []
    for name in reg.available():
        aliases = reg.aliases_of(name)
        suffix = f"  (aliases: {', '.join(aliases)})" if aliases else ""
        lines.append(f"  {name}{suffix}")
    return lines


def _cmd_list(group: str | None) -> int:
    from repro.brain import BRAINS
    from repro.exec.backend import BACKENDS
    from repro.faults.registry import FAULTS
    from repro.sched.policies import POLICIES

    registries = {
        "schemes": registry.SCHEMES,
        "compressors": registry.COMPRESSORS,
        "models": registry.MODELS,
        "clusters": registry.CLUSTERS,
        "policies": POLICIES,
        "backends": BACKENDS,
        "faults": FAULTS,
        "brains": BRAINS,
    }
    groups = (group,) if group else LIST_GROUPS
    for i, name in enumerate(groups):
        if len(groups) > 1:
            print(("" if i == 0 else "\n") + f"{name}:")
        if name == "experiments":
            from repro.experiments.runner import EXPERIMENTS

            for exp_name, _ in EXPERIMENTS:
                print(f"  {exp_name}")
        else:
            print("\n".join(_registry_lines(registries[name])))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    # Everything a user can get wrong fails here (clean exit 2 from
    # main); errors past this point are real bugs and keep their
    # traceback.
    try:
        config = RunConfig.from_file(args.config)
        overrides = list(args.overrides) + _exec_overrides(args)
        if overrides:
            config = apply_overrides(config, overrides)
        preflight(config)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_facade(config)
    payload = report.bench_payload()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(payload["text"], end="")
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if not args.json:
            print(f"[payload written to {out}]")
    return 0


def _cmd_sched(args: argparse.Namespace) -> int:
    # Same error contract as `run`: user mistakes exit 2 with one line,
    # anything past validation is a real bug and keeps its traceback.
    from repro.sched import payload_for_reports
    from repro.sched.traces import payload_for_trace_reports

    try:
        if args.config is None and args.trace is None:
            raise ValueError("sched needs --config and/or --trace")
        if args.config is not None:
            config = SchedConfig.from_file(args.config)
        else:
            # Trace-only invocation: a production-ish default scenario.
            config = SchedConfig.from_dict(
                {
                    "name": "trace",
                    "cluster": {
                        "instance": "tencent",
                        "num_nodes": 16,
                        "gpus_per_node": 8,
                    },
                    "trace": args.trace,
                },
                validate=False,
            )
        if args.trace is not None:
            config = dataclasses.replace(config, trace=args.trace)
        overrides = list(args.overrides) + _exec_overrides(args)
        if overrides:
            config = apply_sched_overrides(config, overrides)
        config.validate()
        reports = run_sched(config)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if config.trace is not None:
        payload = payload_for_trace_reports(
            list(reports.values()),
            bench=f"trace_{config.name}",
            trace=config.trace,
        )
    else:
        payload = payload_for_reports(
            list(reports.values()), bench=f"sched_{config.name}"
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(payload["text"], end="")
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if not args.json:
            print(f"[payload written to {out}]")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    # Same error contract as `run`/`sched`: malformed input exits 2 with
    # one line (TraceError subclasses ValueError).
    from repro.sched.traces import (
        SyntheticTraceConfig,
        generate_trace,
        load_trace,
        trace_stats,
        trace_to_specs,
        write_trace,
        write_trace_csv,
    )

    if args.trace_command == "gen":
        try:
            config = SyntheticTraceConfig(
                num_jobs=args.num_jobs,
                seed=args.seed,
                duration_seconds=args.duration_hours * 3600.0,
                payload_fraction=args.payload_fraction,
            )
            trace = generate_trace(config)
            if args.format == "csv":
                out = write_trace_csv(trace, args.out)
            else:
                out = write_trace(trace, args.out)
        except (ValueError, KeyError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"wrote {len(trace.jobs)} jobs "
            f"({sum(1 for t in trace.tasks if t.payload is not None)} with "
            f"payloads, seed {args.seed}) to {out}"
        )
        return 0
    if args.trace_command == "validate":
        try:
            trace = load_trace(args.path)
            specs = trace_to_specs(trace)  # resolves workloads/schemes
            stats = trace_stats(trace)
        except (ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            for key, value in stats.items():
                print(f"{key}: {value}")
            print(f"ok: {len(specs)} schedulable jobs")
        return 0
    print("error: trace needs a subcommand (gen | validate)", file=sys.stderr)
    return 2


def _serve_ops(args: argparse.Namespace) -> list[dict]:
    """The op stream for a scripted/drilled serve invocation."""
    from repro.serve import ops_from_script, ops_from_trace

    if args.trace is not None and args.script is not None:
        raise ValueError("--trace and --script are mutually exclusive")
    if args.trace is not None:
        return ops_from_trace(args.trace, limit=args.limit)
    if args.script is not None and args.script != "-":
        path = pathlib.Path(args.script)
        if not path.exists():
            raise ValueError(f"ops script not found: {path}")
        return ops_from_script(path.read_text().splitlines())
    return ops_from_script(sys.stdin.read().splitlines())


def _emit_payload(payload: dict, args: argparse.Namespace) -> None:
    """Shared --json/--out emission (same contract as run/sched)."""
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(payload["text"], end="")
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        if not args.json:
            print(f"[payload written to {out}]")


def _cmd_serve(args: argparse.Namespace) -> int:
    # Same error contract as `run`/`sched`: user mistakes (bad config,
    # malformed ops, rejected submissions in scripted mode) exit 2 with
    # one line; anything past that is a real bug and keeps its traceback.
    import signal
    import tempfile

    from repro.serve import (
        DEFAULT_POINTS,
        RecoveryDrill,
        ServeRuntime,
        parse_kill_spec,
        run_script,
        serve_socket,
    )
    from repro.serve.journal import canonical_json

    try:
        config = ServeConfig.from_file(args.config)
        overrides = list(args.overrides)
        if args.queue_limit is not None:
            overrides.append(f"queue_limit={args.queue_limit}")
        if args.snapshot_every is not None:
            overrides.append(f"snapshot_every={args.snapshot_every}")
        if overrides:
            config = apply_serve_overrides(config, overrides)
        for point in args.kill_at:
            parse_kill_spec(point)
        if args.socket is not None and (args.drill or args.kill_at):
            raise ValueError("--socket cannot be combined with --drill/--kill-at")
        if len(args.kill_at) > 1 and not args.drill:
            raise ValueError("without --drill, give at most one --kill-at point")
        state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-serve-")

        if args.drill:
            ops = _serve_ops(args)
            points = tuple(args.kill_at) or DEFAULT_POINTS
            drill = RecoveryDrill(config, ops, work_dir=state_dir, points=points)
            result = drill.run()
        else:
            runtime = ServeRuntime(
                config,
                state_dir,
                kill_plan=(args.kill_at[0] if args.kill_at else None),
                kill_mode=args.kill_mode,
            )
            try:
                previous = signal.signal(signal.SIGTERM, runtime.request_drain)
            except ValueError:  # pragma: no cover - non-main-thread harness
                previous = None
            try:
                if args.socket is not None:
                    serve_socket(runtime, args.socket)
                else:
                    run_script(runtime, (canonical_json(op) for op in _serve_ops(args)))
            finally:
                if previous is not None:
                    signal.signal(signal.SIGTERM, previous)
            payload = runtime.finalize()
            runtime.close()
            _emit_payload(payload, args)
            return 0
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Drill output: one verdict line per injection point, machine tail.
    for outcome in result["points"]:
        status = "ok" if outcome["payload_match"] and not outcome["lost_acked"] else "FAIL"
        print(
            f"{status}: kill at {outcome['point']}: payload_match="
            f"{outcome['payload_match']} lost_acked={outcome['lost_acked']} "
            f"replayed={outcome['replayed']} dedup={outcome['deduplicated']} "
            f"recovery_s={outcome['recovery_s']:.3f}"
        )
    print(
        f"drill: {len(result['points'])} point(s), all_match={result['all_match']}, "
        f"lost_acked_total={result['lost_acked_total']}"
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    if args.out:
        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"[drill report written to {out}]")
    return 0 if result["all_match"] and result["lost_acked_total"] == 0 else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    # Client-side user errors (bad JSON, unreachable daemon, rejected
    # submissions) all exit 2 with one line.
    from repro.serve import SubmitError, send_ops

    try:
        ops: list[dict] = []
        for raw in args.job:
            try:
                job = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"--job is not valid JSON: {exc}") from exc
            if not isinstance(job, dict):
                raise ValueError(f"--job must be a JSON object, got {raw!r}")
            ops.append({"op": "submit", "job": job})
        if args.file is not None:
            path = pathlib.Path(args.file)
            if not path.exists():
                raise ValueError(f"ops file not found: {path}")
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path} line {lineno}: invalid JSON: {exc}"
                    ) from exc
                if not isinstance(entry, dict):
                    raise ValueError(
                        f"{path} line {lineno}: each line must be a JSON object"
                    )
                # Bare job mappings are sugar for submit ops.
                ops.append(entry if "op" in entry else {"op": "submit", "job": entry})
        for raw in args.op:
            try:
                op = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"--op is not valid JSON: {exc}") from exc
            if not isinstance(op, dict):
                raise ValueError(f"--op must be a JSON object, got {raw!r}")
            ops.append(op)
        if not ops:
            raise ValueError("submit needs at least one --job, --op, or --file")
        acks = send_ops(
            args.socket,
            ops,
            retries=args.retries,
            backoff=args.backoff,
            timeout=args.timeout,
        )
        for ack in acks:
            if not ack.get("ok"):
                raise ValueError(ack.get("error", "op rejected"))
    except (SubmitError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for ack in acks:
        print(json.dumps(ack, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sched":
        return _cmd_sched(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "list":
        return _cmd_list(args.group)
    if args.command == "experiments":
        from repro.experiments.runner import main as runner_main

        runner_argv = []
        if args.only:
            runner_argv += ["--only", args.only]
        if args.fast:
            runner_argv += ["--fast"]
        if args.backend:
            runner_argv += ["--backend", args.backend]
        if args.jobs is not None:
            runner_argv += ["--jobs", str(args.jobs)]
        return runner_main(runner_argv)
    return 0  # pragma: no cover - unreachable


if __name__ == "__main__":
    sys.exit(main())
