"""repro.api — the unified public facade.

Three layers, composable or usable alone:

* **registries** (:mod:`repro.api.registry`) — decorator-based
  ``register_scheme`` / ``register_compressor`` / ``register_model`` /
  ``register_cluster`` with ``available()`` discovery; the single source
  of component names;
* **RunConfig** (:mod:`repro.api.config`) — a nested, JSON-round-tripping
  dataclass that fully specifies a run (cluster, comm, train, optional
  elastic, seed) and validates against the registries;
* **run()** (:mod:`repro.api.facade`) — executes a config through the
  legacy-identical wiring and returns a :class:`RunReport` with a
  ``BENCH_*.json``-compatible payload.

The CLI (``python -m repro``) is a thin shell over these::

    from repro.api import RunConfig, run

    report = run(RunConfig.from_file("examples/configs/smoke.json"))
    print(report.format())
"""

from repro.api.config import (
    ClusterConfig,
    CommConfig,
    ConfigError,
    ElasticConfig,
    ExecConfig,
    JobConfig,
    RunConfig,
    SchedConfig,
    TrainConfig,
    apply_overrides,
    apply_sched_overrides,
)
from repro.api.facade import RunReport, preflight, run, run_sched
from repro.api.registry import (
    CLUSTERS,
    COMPRESSORS,
    CONVERGENCE_ALGORITHMS,
    MODELS,
    SCHEMES,
    Registry,
    Workload,
    available,
    build_cluster,
    build_compressor,
    build_scheme,
    build_workload,
    register_cluster,
    register_compressor,
    register_model,
    register_scheme,
)

__all__ = [
    # config
    "RunConfig",
    "ClusterConfig",
    "CommConfig",
    "TrainConfig",
    "ElasticConfig",
    "ExecConfig",
    "JobConfig",
    "SchedConfig",
    "ConfigError",
    "apply_overrides",
    "apply_sched_overrides",
    # facade
    "run",
    "run_sched",
    "preflight",
    "RunReport",
    # registry
    "Registry",
    "Workload",
    "SCHEMES",
    "COMPRESSORS",
    "MODELS",
    "CLUSTERS",
    "CONVERGENCE_ALGORITHMS",
    "register_scheme",
    "register_compressor",
    "register_model",
    "register_cluster",
    "available",
    "build_scheme",
    "build_compressor",
    "build_workload",
    "build_cluster",
]
