"""Component registries — the single source of truth for names.

Every pluggable piece of the system registers here under a canonical
name (plus aliases): communication *schemes*, gradient *compressors*,
trainable *model workloads*, and cloud *cluster* presets.  The
registries replace the string-keyed if/elif ladders that used to live in
``train/algorithms.py`` and ``cluster/cloud_presets.py``; those modules
are now thin shims over this one.

Extending the system is a decorator away::

    from repro.api import register_compressor

    @register_compressor("ema")
    def _build_ema(*, n_samplings=30):
        return EmaThresholdTopK()

    cfg = RunConfig.from_dict({"comm": {"scheme": "mstopk", "compressor": "ema"}})

Discovery is first-class: ``SCHEMES.available()`` (and friends) is what
``python -m repro list`` prints, and what config validation checks
against — no hard-coded name lists anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.cluster.cloud_presets import CLOUD_INSTANCES, CloudInstance, make_cluster
from repro.cluster.network import NetworkModel
from repro.comm.base import CommScheme
from repro.comm.dense import RingAllReduce, Torus2DAllReduce, TreeAllReduce
from repro.comm.gtopk import GlobalTopK
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.compression.base import TopKCompressor
from repro.compression.dgc import DGCTopK
from repro.compression.exact_topk import ExactTopK
from repro.compression.mstopk import MSTopK
from repro.compression.randomk import RandomK
from repro.utils.seeding import RandomState


class Registry:
    """A name → factory mapping with aliases and discovery.

    ``register`` works both as a decorator and as a direct call
    (``registry.register("name")(value)``); values need not be callables
    (cluster presets register :class:`CloudInstance` objects).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._aliases: dict[str, str] = {}

    def register(
        self, name: str, *, aliases: Iterable[str] = (), overwrite: bool = False
    ) -> Callable[[Any], Any]:
        key = name.lower()

        alias_keys = [alias.lower() for alias in aliases]

        def _add(value: Any) -> Any:
            # Validate everything before mutating, so a collision leaves
            # the registry untouched and the registration retryable.
            if not overwrite:
                # canonical() also catches a new name shadowing an
                # existing alias (e.g. registering "topk" over the
                # exact-topk alias), not just exact-name collisions.
                if self.canonical(key) is not None:
                    raise KeyError(f"{self.kind} {name!r} is already registered")
                for alias_key in alias_keys:
                    if self.canonical(alias_key) is not None:
                        raise KeyError(
                            f"{self.kind} alias {alias_key!r} is already registered"
                        )
            self._entries[key] = value
            for alias_key in alias_keys:
                self._aliases[alias_key] = key
            return value

        return _add

    def canonical(self, name: str) -> str | None:
        """Resolve a name/alias to its canonical name (``None`` if unknown)."""
        key = name.lower()
        if key in self._entries:
            return key
        return self._aliases.get(key)

    def get(self, name: str) -> Any:
        key = self.canonical(name)
        if key is None:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.available())}"
            )
        return self._entries[key]

    def available(self) -> list[str]:
        """Sorted canonical names."""
        return sorted(self._entries)

    def aliases_of(self, name: str) -> list[str]:
        key = self.canonical(name)
        return sorted(a for a, target in self._aliases.items() if target == key)

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind}, {len(self._entries)} entries)"


SCHEMES = Registry("scheme")
COMPRESSORS = Registry("compressor")
MODELS = Registry("model")
CLUSTERS = Registry("cluster")


def register_scheme(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register a scheme builder ``f(network, **options) -> CommScheme``."""
    return SCHEMES.register(name, aliases=aliases, overwrite=overwrite)


def register_compressor(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register a compressor builder ``f(*, n_samplings) -> TopKCompressor``."""
    return COMPRESSORS.register(name, aliases=aliases, overwrite=overwrite)


def register_model(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register a workload builder ``f(*, num_samples, rng) -> Workload``."""
    return MODELS.register(name, aliases=aliases, overwrite=overwrite)


def register_cluster(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register a :class:`CloudInstance` preset."""
    return CLUSTERS.register(name, aliases=aliases, overwrite=overwrite)


def available(group: str | None = None) -> dict[str, list[str]] | list[str]:
    """Names per registry; pass a group for one flat list."""
    groups = {
        "schemes": SCHEMES.available(),
        "compressors": COMPRESSORS.available(),
        "models": MODELS.available(),
        "clusters": CLUSTERS.available(),
    }
    if group is None:
        return groups
    if group not in groups:
        raise KeyError(f"unknown group {group!r}; available: {', '.join(sorted(groups))}")
    return groups[group]


# ---------------------------------------------------------------------------
# Compressors
# ---------------------------------------------------------------------------

@register_compressor("exact-topk", aliases=("exact", "topk", "nn.topk"))
def _build_exact_topk(*, n_samplings: int = 30) -> TopKCompressor:
    return ExactTopK()


@register_compressor("mstopk")
def _build_mstopk(*, n_samplings: int = 30) -> TopKCompressor:
    return MSTopK(n_samplings=n_samplings)


@register_compressor("dgc")
def _build_dgc(*, n_samplings: int = 30) -> TopKCompressor:
    return DGCTopK()


@register_compressor("randomk", aliases=("random-k",))
def _build_randomk(*, n_samplings: int = 30) -> TopKCompressor:
    return RandomK()


def build_compressor(name: str, *, n_samplings: int = 30) -> TopKCompressor:
    """Build a registered compressor by name."""
    return COMPRESSORS.get(name)(n_samplings=n_samplings)


# ---------------------------------------------------------------------------
# Communication schemes
# ---------------------------------------------------------------------------
# Builder contract: f(network, *, density, wire_bytes, n_samplings,
# compressor) -> CommScheme.  Dense builders reject a custom compressor
# so a config typo fails loudly instead of silently training dense.

def _reject_compressor(scheme: str, compressor: TopKCompressor | None) -> None:
    if compressor is not None:
        raise ValueError(
            f"scheme {scheme!r} aggregates dense gradients and does not "
            "accept a compressor"
        )


@register_scheme("dense", aliases=("dense-tree", "tree", "trear"))
def _build_dense_tree(network: NetworkModel, *, wire_bytes: int = 4,
                      compressor: TopKCompressor | None = None, **_: Any) -> CommScheme:
    _reject_compressor("dense", compressor)
    return TreeAllReduce(network, wire_bytes=wire_bytes)


@register_scheme("dense-ring", aliases=("ring",))
def _build_dense_ring(network: NetworkModel, *, wire_bytes: int = 4,
                      compressor: TopKCompressor | None = None, **_: Any) -> CommScheme:
    _reject_compressor("dense-ring", compressor)
    return RingAllReduce(network, wire_bytes=wire_bytes)


@register_scheme("2dtar", aliases=("torus", "dense-2dtar"))
def _build_dense_2dtar(network: NetworkModel, *, wire_bytes: int = 4,
                       compressor: TopKCompressor | None = None, **_: Any) -> CommScheme:
    _reject_compressor("2dtar", compressor)
    return Torus2DAllReduce(network, wire_bytes=wire_bytes)


@register_scheme("topk", aliases=("topk-sgd", "naiveag"))
def _build_topk(network: NetworkModel, *, density: float = 0.001,
                compressor: TopKCompressor | None = None, **_: Any) -> CommScheme:
    return NaiveAllGather(
        network,
        density=density,
        compressor=compressor if compressor is not None else ExactTopK(),
        error_feedback=True,
    )


@register_scheme("gtopk", aliases=("gtopk-sgd", "globaltopk"))
def _build_gtopk(network: NetworkModel, *, density: float = 0.001,
                 compressor: TopKCompressor | None = None, **_: Any) -> CommScheme:
    kwargs: dict[str, Any] = {"density": density, "error_feedback": True}
    if compressor is not None:
        kwargs["compressor"] = compressor
    return GlobalTopK(network, **kwargs)


@register_scheme("mstopk", aliases=("mstopk-sgd", "hitopk", "hitopkcomm"))
def _build_mstopk_scheme(network: NetworkModel, *, density: float = 0.001,
                         n_samplings: int = 30,
                         compressor: TopKCompressor | None = None, **_: Any) -> CommScheme:
    return HiTopKComm(
        network,
        density=density,
        compressor=compressor if compressor is not None else MSTopK(n_samplings=n_samplings),
        error_feedback=True,
    )


@register_scheme("naiveag-mstopk")
def _build_naiveag_mstopk(network: NetworkModel, *, density: float = 0.001,
                          n_samplings: int = 30,
                          compressor: TopKCompressor | None = None, **_: Any) -> CommScheme:
    return NaiveAllGather(
        network,
        density=density,
        compressor=compressor if compressor is not None else MSTopK(n_samplings=n_samplings),
        error_feedback=True,
    )


def build_scheme(
    name: str,
    network: NetworkModel,
    *,
    density: float = 0.001,
    wire_bytes: int = 4,
    n_samplings: int = 30,
    compressor: str | TopKCompressor | None = None,
) -> CommScheme:
    """Build a registered :class:`CommScheme` by name.

    ``compressor`` may be a registered compressor name or an instance;
    sparse schemes default to their paper operator when it is ``None``.
    """
    if isinstance(compressor, str):
        compressor = build_compressor(compressor, n_samplings=n_samplings)
    builder = SCHEMES.get(name)
    return builder(
        network,
        density=density,
        wire_bytes=wire_bytes,
        n_samplings=n_samplings,
        compressor=compressor,
    )


#: Canonical algorithm triple of the convergence experiments (Fig. 10).
CONVERGENCE_ALGORITHMS = ("dense", "topk", "mstopk")


# ---------------------------------------------------------------------------
# Model workloads
# ---------------------------------------------------------------------------

@dataclass
class Workload:
    """A trainable model plus its synthetic dataset and metric."""

    name: str
    model: Any
    x: np.ndarray
    y: np.ndarray
    metric_name: str
    evaluate: Callable[..., float]


@register_model("mlp")
def _build_mlp(*, num_samples: int, rng: RandomState) -> Workload:
    from repro.models.nn.mlp import MLPClassifier
    from repro.train.synthetic import make_spiral_classification

    x, y = make_spiral_classification(num_samples, num_classes=4, rng=rng)
    model = MLPClassifier(input_dim=2, hidden=(48, 48), num_classes=4)
    return Workload(
        "mlp", model, x, y, "top-1 accuracy",
        lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1),
    )


@register_model("mlp-tiny")
def _build_mlp_tiny(*, num_samples: int, rng: RandomState) -> Workload:
    from repro.models.nn.mlp import MLPClassifier
    from repro.train.synthetic import make_spiral_classification

    x, y = make_spiral_classification(num_samples, num_classes=4, rng=rng)
    model = MLPClassifier(input_dim=2, hidden=(12,), num_classes=4)
    return Workload(
        "mlp-tiny", model, x, y, "top-1 accuracy",
        lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1),
    )


@register_model("cnn", aliases=("convnet",))
def _build_cnn(*, num_samples: int, rng: RandomState) -> Workload:
    from repro.models.nn.convnet import SmallConvNet
    from repro.train.synthetic import make_synthetic_images

    x, y = make_synthetic_images(num_samples, num_classes=4, image_size=12, rng=rng)
    model = SmallConvNet(in_channels=3, channels=(6, 12), num_classes=4, image_size=12)
    return Workload(
        "cnn", model, x, y, "top-1 accuracy",
        lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1),
    )


@register_model("resnet", aliases=("resnet-tiny",))
def _build_resnet(*, num_samples: int, rng: RandomState) -> Workload:
    from repro.models.nn.resnet_tiny import TinyResNet
    from repro.train.synthetic import make_synthetic_images

    x, y = make_synthetic_images(num_samples, num_classes=4, image_size=8, rng=rng)
    model = TinyResNet(width=6, num_classes=4, image_size=8)
    return Workload(
        "resnet", model, x, y, "top-1 accuracy",
        lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1),
    )


@register_model("transformer", aliases=("attention",))
def _build_transformer(*, num_samples: int, rng: RandomState) -> Workload:
    from repro.models.nn.transformer import TinyTransformer, make_copy_task

    x, y = make_copy_task(rng, num_samples=num_samples, vocab_size=32, seq_len=10)
    model = TinyTransformer(vocab_size=32, d_model=24, d_ff=48, max_len=10)
    return Workload(
        "transformer", model, x, y, "token accuracy (BLEU proxy)", model.evaluate
    )


def build_workload(name: str, *, num_samples: int, rng: RandomState) -> Workload:
    """Build a registered model workload (model + data + metric)."""
    return MODELS.get(name)(num_samples=num_samples, rng=rng)


# ---------------------------------------------------------------------------
# Cluster presets
# ---------------------------------------------------------------------------

for _key, _instance in CLOUD_INSTANCES.items():
    CLUSTERS.register(_key, aliases=(_instance.instance,))(_instance)


def get_cluster(name: str) -> CloudInstance:
    """Resolve a registered cluster preset by name."""
    return CLUSTERS.get(name)


def build_cluster(
    name: str, num_nodes: int, *, gpus_per_node: int | None = None
) -> NetworkModel:
    """Build a :class:`NetworkModel` from a registered cluster preset."""
    return make_cluster(num_nodes, get_cluster(name), gpus_per_node=gpus_per_node)


__all__ = [
    "Registry",
    "Workload",
    "SCHEMES",
    "COMPRESSORS",
    "MODELS",
    "CLUSTERS",
    "register_scheme",
    "register_compressor",
    "register_model",
    "register_cluster",
    "available",
    "build_scheme",
    "build_compressor",
    "build_workload",
    "build_cluster",
    "get_cluster",
    "CONVERGENCE_ALGORITHMS",
]
