"""The run facade: ``run(RunConfig) -> RunReport``.

One call composes the pieces every experiment used to hand-wire —
cluster preset → :class:`NetworkModel` → comm scheme → trainer — and
returns a structured report.  The wiring deliberately mirrors the legacy
paths step for step (:class:`~repro.train.convergence.ConvergenceRunner`
for synchronous runs, :mod:`repro.experiments.elastic_churn` for elastic
ones), so a fixed seed produces *bit-identical* results either way;
``tests/api/test_facade.py`` pins that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.api.config import RunConfig
from repro.api.registry import (
    CLUSTERS,
    SCHEMES,
    build_cluster,
    build_scheme,
    build_workload,
)
from repro.utils.seeding import new_rng
from repro.utils.tables import format_table

#: Keep in sync with ``benchmarks/conftest.py::BENCH_SCHEMA_VERSION``
#: (the CI schema gate checks both producers).
BENCH_SCHEMA_VERSION = 1


@dataclass
class RunReport:
    """Structured result of one facade run.

    ``summary`` holds the headline scalars (keys differ between the two
    modes); the raw sub-reports stay attached for callers that need the
    full curves or the cost breakdown.
    """

    name: str
    mode: str  # "train" | "elastic"
    scheme: str
    model: str
    world_size: int
    seed: int
    config: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)
    training: Any = None  # TrainingReport | None
    elastic_run: Any = None  # ElasticRunReport | None
    cost: Any = None  # ElasticCostReport | None
    #: Fault-drill record: ``{"entries": [...], "summary": {...}}`` from
    #: the injector's structured log; ``None`` when no faults ran.
    faults: Any = None

    @property
    def final_loss(self) -> float:
        if self.mode == "elastic":
            return self.elastic_run.final_loss
        return self.training.epoch_losses[-1]

    def bench_payload(self, bench: str | None = None) -> dict:
        """A ``BENCH_*.json``-compatible payload (schema version 1)."""
        columns = sorted(self.summary)
        rows = [[self.summary[c] for c in columns]]
        text = format_table(
            columns, rows, title=f"{self.name}: {self.model} / {self.scheme} ({self.mode})"
        )
        return {
            "bench": bench or f"run_{self.name}",
            "schema_version": BENCH_SCHEMA_VERSION,
            "structured": True,
            "columns": columns,
            "rows": rows,
            "text": text if text.endswith("\n") else text + "\n",
            "meta": {
                "mode": self.mode,
                "scheme": self.scheme,
                "model": self.model,
                "world_size": self.world_size,
                "seed": self.seed,
                **({"faults": self.faults} if self.faults is not None else {}),
            },
        }

    def format(self) -> str:
        """Human-readable one-run summary table."""
        return self.bench_payload()["text"]


def _run_train(config: RunConfig, workload, exec_backend=None) -> RunReport:
    # Mirrors ConvergenceRunner.run() so fixed seeds are bit-identical.
    from repro.optim.sgd import SGD
    from repro.train.synthetic import train_val_split
    from repro.train.trainer import DistributedTrainer

    import numpy as np

    train = config.train
    network = build_cluster(
        config.cluster.instance,
        config.cluster.num_nodes,
        gpus_per_node=config.cluster.gpus_per_node,
    )
    scheme = build_scheme(
        config.comm.scheme,
        network,
        density=config.comm.density,
        wire_bytes=config.comm.wire_bytes,
        n_samplings=config.comm.n_samplings,
        compressor=config.comm.compressor,
    )
    trainer = DistributedTrainer(
        workload.model,
        scheme,
        optimizer=SGD(lr=train.lr, momentum=train.momentum),
        seed=config.seed,
        exec_backend=exec_backend,
    )
    train_x, train_y, val_x, val_y = train_val_split(
        np.asarray(workload.x), np.asarray(workload.y)
    )
    scheme_name = SCHEMES.canonical(config.comm.scheme) or config.comm.scheme
    try:
        report = trainer.train(
            train_x,
            train_y,
            epochs=train.epochs,
            local_batch=train.local_batch,
            val_x=val_x,
            val_y=val_y,
            evaluate=workload.evaluate,
            algorithm_name=scheme_name,
        )
    finally:
        trainer.close()
    summary = {
        "final_loss": report.epoch_losses[-1],
        "final_metric": report.final_val_metric if report.val_metrics else None,
        "iterations": report.iterations,
        "comm_seconds": report.comm_seconds,
        "epochs": train.epochs,
    }
    return RunReport(
        name=config.name,
        mode="train",
        scheme=scheme_name,
        model=workload.name,
        world_size=network.topology.world_size,
        seed=config.seed,
        config=config.to_dict(),
        summary=summary,
        training=report,
    )


def _run_elastic(config: RunConfig, workload, exec_backend=None) -> RunReport:
    # Mirrors experiments/elastic_churn.py so fixed seeds are bit-identical.
    from repro.cluster.variability import VariabilityModel
    from repro.elastic.elastic_trainer import ElasticTrainer
    from repro.elastic.events import PoissonChurn
    from repro.optim.sgd import SGD
    from repro.perf.elastic_cost import account

    elastic = config.elastic
    assert elastic is not None
    schedule = (
        PoissonChurn(
            elastic.rate,
            warned_fraction=elastic.warned_fraction,
            rejoin_delay=elastic.rejoin_delay,
        )
        if elastic.schedule == "poisson" and elastic.rate > 0
        else None
    )
    variability = VariabilityModel(sigma=elastic.sigma) if elastic.sigma > 0 else None
    injector = None
    if config.faults is not None:
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.from_config(config.faults, seed=config.seed, target="run")
        injector = FaultInjector(plan)
    scheme_name = SCHEMES.canonical(config.comm.scheme) or config.comm.scheme
    # Canonicalize so aliases ("p3.16xlarge" -> "aws") hit the right
    # spot-price profile in the cost layer.
    instance = CLUSTERS.canonical(config.cluster.instance) or config.cluster.instance
    trainer = ElasticTrainer(
        workload.model,
        scheme=scheme_name,
        density=config.comm.density,
        wire_bytes=config.comm.wire_bytes,
        n_samplings=config.comm.n_samplings,
        compressor=config.comm.compressor,
        instance=instance,
        num_nodes=config.cluster.num_nodes,
        gpus_per_node=config.cluster.gpus_per_node,
        min_nodes=elastic.min_nodes,
        optimizer=SGD(lr=config.train.lr, momentum=config.train.momentum),
        seed=config.seed,
        checkpoint_every=elastic.checkpoint_every,
        compute_seconds=elastic.compute_seconds,
        checkpoint_seconds=elastic.checkpoint_seconds,
        restart_seconds=elastic.restart_seconds,
        warning_seconds=elastic.warning_seconds,
        timing_d=elastic.timing_d,
        variability=variability,
        exec_backend=exec_backend,
        faults=injector,
    )
    try:
        report = trainer.run(
            workload.x,
            workload.y,
            iterations=elastic.iterations,
            local_batch=config.train.local_batch,
            schedule=schedule,
        )
    finally:
        trainer.close()
    cost = account(report, instance=instance)
    summary = {
        "final_loss": report.final_loss,
        "goodput_it_per_s": report.goodput,
        "raw_it_per_s": report.raw_throughput,
        "lost_work_fraction": report.lost_fraction,
        "revocations": report.revocations,
        "joins": report.joins,
        "usd_per_kilo_iter": cost.cost_per_kilo_iteration,
        "savings_vs_on_demand": cost.savings_fraction,
        "useful_iterations": report.useful_iterations,
    }
    faults_record = None
    if injector is not None:
        metrics = injector.metrics()
        faults_record = {
            "entries": injector.log.to_dicts(),
            "summary": metrics,
        }
        summary["fault_injections"] = metrics["injected"]
        summary["fault_recoveries"] = metrics["recovered"]
        summary["fault_detect_recover_s"] = metrics["mean_detect_recover_s"]
    return RunReport(
        name=config.name,
        mode="elastic",
        scheme=report.scheme,
        model=workload.name,
        world_size=config.cluster.num_nodes * config.cluster.gpus_per_node,
        seed=config.seed,
        config=config.to_dict(),
        summary=summary,
        elastic_run=report,
        cost=cost,
        faults=faults_record,
    )


def preflight(config: RunConfig) -> None:
    """Fail fast on anything a config can get wrong, without training.

    Runs registry-name validation plus a real cluster + scheme build, so
    build-time rejections (e.g. a dense scheme given a compressor)
    surface before any work — and callers like the CLI can treat
    everything raised here as a user error, and anything raised later as
    a genuine bug.
    """
    config.validate()
    network = build_cluster(
        config.cluster.instance,
        config.cluster.num_nodes,
        gpus_per_node=config.cluster.gpus_per_node,
    )
    build_scheme(
        config.comm.scheme,
        network,
        density=config.comm.density,
        wire_bytes=config.comm.wire_bytes,
        n_samplings=config.comm.n_samplings,
        compressor=config.comm.compressor,
    )


def run(config: RunConfig) -> RunReport:
    """Execute one fully-specified run and return its structured report.

    ``config.exec`` picks the execution backend: ``serial`` keeps the
    historical inline paths; ``process`` fans the trainer's per-worker
    compute across a shared-memory pool of ``exec.jobs`` processes —
    same results to the bit, only the wall-clock changes.
    """
    config.validate()
    data_seed = (
        config.train.data_seed if config.train.data_seed is not None else config.seed
    )
    workload = build_workload(
        config.train.model,
        num_samples=config.train.num_samples,
        rng=new_rng(data_seed),
    )
    exec_backend = _build_exec_backend(config.exec)
    try:
        if config.elastic is not None:
            return _run_elastic(config, workload, exec_backend)
        return _run_train(config, workload, exec_backend)
    finally:
        if exec_backend is not None:
            exec_backend.close()


def _build_exec_backend(exec_config):
    """The configured backend, or ``None`` for the serial fast path."""
    from repro.exec.backend import BACKENDS, build_backend

    if exec_config is None or BACKENDS.canonical(exec_config.backend) == "serial":
        return None
    return build_backend(
        exec_config.backend,
        jobs=exec_config.jobs,
        start_method=exec_config.start_method,
    )


def run_sched(config) -> dict:
    """Execute a :class:`~repro.api.config.SchedConfig` scenario.

    Runs the job queue once per configured placement policy over the
    shared virtual cluster and returns ``policy -> SchedReport``
    (insertion-ordered as configured).  Combine into one BENCH payload
    with :func:`repro.sched.payload_for_reports`.

    With ``exec.backend: process`` the per-policy simulations (each
    fully independent and deterministic) fan across the worker pool;
    the returned mapping is identical to the serial loop's.
    """
    from repro.sched import compare_policies
    from repro.sched.traces import job_specs_for

    config.validate()
    exec_backend = _build_exec_backend(config.exec)
    if exec_backend is not None:
        from repro.exec.sweeper import ParallelSweeper

        try:
            return ParallelSweeper(exec_backend).run_sched_policies(config)
        finally:
            exec_backend.close()
    jobs = job_specs_for(config)
    return compare_policies(
        jobs,
        config.policies,
        num_nodes=config.cluster.num_nodes,
        instance=config.cluster.instance,
        gpus_per_node=config.cluster.gpus_per_node,
        seed=config.seed,
        name=config.name,
        faults=_sched_fault_plan(config),
        brain=config.brain,
    )


def _sched_fault_plan(config):
    """Resolve a SchedConfig's faults section (or ``None``)."""
    if config.faults is None:
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan.from_config(config.faults, seed=config.seed, target="sched")


__all__ = ["run", "run_sched", "preflight", "RunReport", "BENCH_SCHEMA_VERSION"]
