"""Pluggable execution backends: where model compute actually runs.

The registry follows the ``repro.api`` pattern — ``BACKENDS`` /
:func:`register_backend` are the single source of backend names, what
``ExecConfig`` validates against and what ``--backend`` accepts:

* ``serial`` — everything inline in the calling process (the historical
  behaviour, and still the default);
* ``process`` — a persistent pool of ``jobs`` worker processes.  The
  trainer's per-worker forward/backward fans across the pool through a
  shared-memory ``(W, d)`` gradient matrix
  (:class:`~repro.exec.engine.ProcessStepEngine`), and whole independent
  tasks (sweep configs, sched policies, experiment harnesses) dispatch
  through :meth:`ProcessBackend.map`.

Both faces are deterministic: step results merge in virtual-worker row
order and ``map`` returns results in submission order, so ``jobs=1`` and
``jobs=N`` produce bit-identical outputs (pinned by
``tests/exec/test_invariance.py``).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
from typing import Any, Callable, Iterable, Sequence

from repro.api.registry import Registry
from repro.exec.worker import CALL, STOP, worker_main

BACKENDS = Registry("exec backend")

#: Start methods ExecConfig accepts (``None`` = platform preference).
START_METHODS = ("fork", "spawn", "forkserver")


def register_backend(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register a backend factory ``f(*, jobs, start_method) -> ExecBackend``."""
    return BACKENDS.register(name, aliases=aliases, overwrite=overwrite)


def cpu_count() -> int:
    """Usable cores (honours CPU affinity where the OS exposes it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_jobs(jobs: int) -> int:
    """``jobs=0`` means "all usable cores"; otherwise at least 1."""
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return cpu_count() if jobs == 0 else jobs


class SerialBackend:
    """Run everything inline — the reference semantics every other
    backend must be bit-identical to."""

    name = "serial"
    jobs = 1

    def step_engine(self, trainer) -> None:
        """Serial trainers keep their built-in inline step paths."""
        return None

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each item, in order, in this process."""
        return [fn(item) for item in items]

    def close(self) -> None:
        return None

    def __enter__(self) -> "SerialBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Worker:
    """Parent-side handle on one pool process."""

    def __init__(self, ctx, index: int) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"repro-exec-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def request(self, message: tuple) -> Any:
        self.conn.send(message)
        return self.reply()

    def reply(self) -> Any:
        status, payload = self.conn.recv()
        if status == "error":
            raise RuntimeError(f"exec pool worker failed:\n{payload}")
        return payload

    def stop(self) -> None:
        try:
            self.conn.send((STOP,))
            self.conn.recv()
        except (OSError, EOFError, BrokenPipeError):  # pragma: no cover
            pass
        self.conn.close()
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=5)


class ProcessBackend:
    """A persistent shared-memory worker pool over real CPU cores.

    Workers are spawned lazily on first use and live until
    :meth:`close` (or parent exit — they are daemonic), so repeated
    trainer rebuilds (elastic rescales) and long sweeps pay the process
    start-up cost once.  ``start_method`` defaults to ``fork`` where the
    platform offers it (cheap, inherits the loaded interpreter) and
    ``spawn`` elsewhere.  Standard multiprocessing semantics apply under
    ``spawn``: it re-imports the driver's ``__main__``, so scripts using
    it must guard their entry point with ``if __name__ == "__main__":``
    (the CLI and pytest already do).
    """

    name = "process"

    def __init__(self, *, jobs: int = 0, start_method: str | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        if start_method is not None and start_method not in START_METHODS:
            raise ValueError(
                f"unknown start_method {start_method!r}; "
                f"accepted: {', '.join(START_METHODS)}"
            )
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._workers: list[_Worker] = []
        self._next_engine_id = 0

    # -- pool plumbing -----------------------------------------------------
    def _ensure_workers(self, count: int) -> list[_Worker]:
        while len(self._workers) < min(count, self.jobs):
            self._workers.append(_Worker(self._ctx, len(self._workers)))
        return self._workers[: min(count, self.jobs)]

    def allocate_engine_id(self) -> int:
        self._next_engine_id += 1
        return self._next_engine_id

    # -- the two faces -----------------------------------------------------
    def step_engine(self, trainer):
        """A shared-memory step engine fanning ``trainer``'s workers
        across the pool (see :class:`~repro.exec.engine.ProcessStepEngine`)."""
        from repro.exec.engine import ProcessStepEngine

        return ProcessStepEngine(self, trainer)

    def map(self, fn: Callable[..., Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to each item across the pool, dynamically balanced.

        Results come back in submission order regardless of completion
        order, so a parallel sweep is a drop-in for a serial loop.
        """
        items = list(items)
        if not items:
            return []
        workers = self._ensure_workers(len(items))
        if len(workers) == 1:
            return [workers[0].request((CALL, fn, (item,))) for item in items]
        results: list[Any] = [None] * len(items)
        pending = list(enumerate(items))
        inflight: dict[Any, tuple[_Worker, int]] = {}
        for worker in workers:
            if not pending:
                break
            index, item = pending.pop(0)
            worker.conn.send((CALL, fn, (item,)))
            inflight[worker.conn] = (worker, index)
        error: BaseException | None = None
        while inflight:
            ready = multiprocessing.connection.wait(list(inflight))
            for conn in ready:
                worker, index = inflight.pop(conn)
                try:
                    results[index] = worker.reply()
                except BaseException as exc:
                    # Keep draining the other workers' in-flight replies
                    # before raising: the protocol pairs requests and
                    # replies without sequence numbers, so abandoning a
                    # queued reply would desync the persistent pool and
                    # surface as *stale results* on the next call.
                    if error is None:
                        error = exc
                    continue
                if pending and error is None:
                    next_index, item = pending.pop(0)
                    worker.conn.send((CALL, fn, (item,)))
                    inflight[worker.conn] = (worker, next_index)
        if error is not None:
            raise error
        return results

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Stop every pool worker and drop the pool."""
        workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


@register_backend("serial", aliases=("inline", "none"))
def _build_serial(*, jobs: int = 1, start_method: str | None = None) -> SerialBackend:
    return SerialBackend()


@register_backend("process", aliases=("multiprocessing", "mp"))
def _build_process(*, jobs: int = 0, start_method: str | None = None) -> ProcessBackend:
    return ProcessBackend(jobs=jobs, start_method=start_method)


def build_backend(name: str, *, jobs: int = 0, start_method: str | None = None):
    """Build a registered execution backend by name."""
    return BACKENDS.get(name)(jobs=jobs, start_method=start_method)


__all__ = [
    "BACKENDS",
    "START_METHODS",
    "register_backend",
    "build_backend",
    "cpu_count",
    "resolve_jobs",
    "SerialBackend",
    "ProcessBackend",
]
