"""The shared-memory step engine: per-worker compute on real cores.

:class:`ProcessStepEngine` binds one :class:`~repro.train.trainer.
DistributedTrainer` to a :class:`~repro.exec.backend.ProcessBackend`
pool.  At bind time it

* moves the trainer's preallocated ``(W, d)`` fusion matrix into a
  shared-memory block (aggregation in the parent keeps reading the very
  same pages — the zero-copy hot path of PR 3 survives intact),
* allocates a shared flat parameter buffer the parent refreshes before
  each dispatch, and
* partitions the ``W`` virtual workers into one contiguous row chunk
  per pool worker.

Each ``run_step`` ships only row indices and the (small) per-worker
batches over the pipes; gradients come back through the shared matrix.
Results merge in row order — the float accumulation order of losses and
metrics matches the serial loop exactly, so the engine is bit-identical
to ``serial`` (pinned by ``tests/perf/test_vectorized_parity.py``).
Per-phase worker timings fold into the trainer's
:class:`~repro.perf.hotpath.PhaseTimer` via ``merge`` so compute done
off the main process still shows up in the profile.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exec.shm import SharedArray
from repro.exec.worker import BIND, RELEASE, STEP, EngineSpec


def _chunk_rows(world_size: int, jobs: int) -> list[list[int]]:
    """Contiguous, nearly-equal row chunks (first chunks get the spill)."""
    jobs = max(1, min(jobs, world_size))
    base, spill = divmod(world_size, jobs)
    chunks: list[list[int]] = []
    start = 0
    for i in range(jobs):
        size = base + (1 if i < spill else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return chunks


class ProcessStepEngine:
    """Fans one trainer's per-worker forward/backward across the pool."""

    def __init__(self, backend, trainer) -> None:
        self.backend = backend
        self.engine_id = backend.allocate_engine_id()
        world = trainer.world_size
        self._chunks = _chunk_rows(world, backend.jobs)
        self._grad = SharedArray.create((world, trainer.grad_dim))
        self._params = SharedArray.create((trainer.grad_dim,))
        self._param_names = list(trainer._param_names)
        self._slices = list(trainer._grad_slices)
        spec = EngineSpec(
            model=trainer.model,
            param_names=self._param_names,
            shapes=[tuple(s) for s in trainer._grad_shapes],
            slices=[(int(sl.start), int(sl.stop)) for sl in self._slices],
            grad_spec=self._grad.spec(),
            param_spec=self._params.spec(),
        )
        self._workers = backend._ensure_workers(len(self._chunks))
        for worker in self._workers:
            worker.request((BIND, self.engine_id, spec))
        # The trainer's fusion buffer *is* the shared block from here on.
        trainer._grad_matrix = self._grad.array
        self._trainer = trainer
        self._closed = False

    # ------------------------------------------------------------------
    def run_step(
        self, trainer, batches: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[list[float], dict[str, float]]:
        """Compute every worker row; returns ``(losses, metric_sums)``.

        The shared gradient matrix holds each worker's fused gradient on
        return; the caller aggregates it exactly as the serial path does.
        """
        if self._closed:
            raise RuntimeError("step engine is closed")
        flat = self._params.array
        for name, sl in zip(self._param_names, self._slices):
            flat[sl] = trainer.params[name].reshape(-1)
        active = []
        for worker, rows in zip(self._workers, self._chunks):
            worker.conn.send(
                (STEP, self.engine_id, rows, [batches[row] for row in rows])
            )
            active.append(worker)
        per_row: list[tuple[float, dict[str, float]] | None] = [None] * len(batches)
        phase_seconds: dict[str, float] = {}
        phase_calls: dict[str, int] = {}
        error: BaseException | None = None
        for worker in active:
            # Always consume every outstanding reply, even after a
            # failure: an abandoned reply would desync the pool's
            # sequence-number-free request/reply pairing.
            try:
                chunk = worker.reply()
            except BaseException as exc:
                if error is None:
                    error = exc
                continue
            for row, loss, metrics, phases in chunk:
                per_row[row] = (loss, metrics)
                for phase, seconds in phases.items():
                    phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
                    phase_calls[phase] = phase_calls.get(phase, 0) + 1
        if error is not None:
            raise error
        if trainer.timer is not None and phase_seconds:
            trainer.timer.merge(phase_seconds, calls=phase_calls)
        losses: list[float] = []
        metric_sums: dict[str, float] = {}
        for entry in per_row:
            assert entry is not None, "pool worker dropped a row"
            loss, metrics = entry
            losses.append(loss)
            for key, value in metrics.items():
                metric_sums[key] = metric_sums.get(key, 0.0) + value
        return losses, metric_sums

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release worker-side bindings and free the shared blocks."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.request((RELEASE, self.engine_id))
            except (OSError, EOFError, BrokenPipeError, RuntimeError):
                pass  # pragma: no cover - pool already torn down
        # Hand the trainer a private copy so the shared block's buffer is
        # no longer exported (an ndarray view would block the unlink) and
        # the trainer stays usable after the engine is gone.
        self._trainer._grad_matrix = np.array(self._grad.array)
        self._trainer = None
        self._grad.close()
        self._params.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


__all__ = ["ProcessStepEngine"]
