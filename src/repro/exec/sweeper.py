"""Parallel sweeps: independent runs fanned across the worker pool.

Every sweep in the repository — ``python -m repro experiments``, a sched
policy grid, the ``bench_*`` config sweeps — is a list of *fully
independent, seed-complete* tasks.  :class:`ParallelSweeper` executes
such a list on any registered execution backend with **deterministic
result ordering**: results come back in submission order no matter
which pool worker finished first, and every child task runs with the
serial backend forced (one layer of parallelism — the sweep — at a
time), so a parallel sweep is bit-identical to the serial loop it
replaces.

The module-level ``_task_*`` functions are the pool's picklable entry
points; keep them top-level (the ``spawn`` start method imports this
module by name in the children).
"""

from __future__ import annotations

import contextlib
import io
from typing import Any, Callable, Sequence

from repro.exec.backend import SerialBackend, build_backend


class ParallelSweeper:
    """Fan independent tasks across an execution backend, in order.

    Parameters
    ----------
    backend:
        A built backend instance, a registered backend name, or ``None``
        for serial.  When the sweeper builds the backend itself (name
        given), it owns it and closes it after each ``map``-style call
        unless ``keep_open=True``.
    jobs:
        Pool width when building by name (``0`` = all usable cores).
    """

    def __init__(
        self,
        backend: Any = None,
        *,
        jobs: int = 0,
        start_method: str | None = None,
        keep_open: bool = False,
    ) -> None:
        if backend is None:
            backend = SerialBackend()
            self._owned = False
        elif isinstance(backend, str):
            backend = build_backend(backend, jobs=jobs, start_method=start_method)
            self._owned = not keep_open
        else:
            self._owned = False
        self.backend = backend

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """``[fn(item) for item in items]`` with pool fan-out, in order."""
        try:
            return self.backend.map(fn, list(items))
        finally:
            if self._owned:
                self.backend.close()

    # -- the three sweep faces ---------------------------------------------
    def run_configs(self, configs: Sequence[Any]) -> list[Any]:
        """Execute :class:`~repro.api.config.RunConfig`\\ s -> ``RunReport``\\ s.

        Accepts configs or plain config dicts; children re-validate and
        run with the serial backend forced, so results are bit-identical
        to a serial ``for config: run(config)`` loop in the same order.
        """
        payloads = [
            config if isinstance(config, dict) else config.to_dict()
            for config in configs
        ]
        return self.map(_task_run_config, payloads)

    def run_sched_policies(self, config: Any) -> dict[str, Any]:
        """One :class:`~repro.api.config.SchedConfig`, one task per policy.

        Returns ``policy -> SchedReport`` in configured policy order —
        the same mapping :func:`repro.sched.compare_policies` builds
        serially.
        """
        payload = config if isinstance(config, dict) else config.to_dict()
        tasks = [(payload, policy) for policy in payload.get("policies", ())]
        reports = self.map(_task_sched_policy, tasks)
        # Key by the report's canonical policy name — the same keys the
        # serial compare_policies() mapping uses.
        return {report.policy: report for report in reports}

    def run_experiments(
        self, entries: Sequence[tuple[str, str, bool]]
    ) -> list[tuple[str, str]]:
        """Run experiment harnesses, each with captured stdout.

        ``entries`` are ``(display_name, module_path, fast)`` triples;
        returns ``(display_name, captured_output)`` in entry order so the
        parent can print a deterministic transcript.
        """
        return self.map(_task_experiment, list(entries))


def _task_run_config(payload: dict) -> Any:
    """Pool task: one facade run, serial-forced (no nested pools)."""
    from repro.api.config import RunConfig
    from repro.api.facade import run

    data = dict(payload)
    data["exec"] = {"backend": "serial", "jobs": 1}
    return run(RunConfig.from_dict(data))


def _task_sched_policy(task: tuple[dict, str]) -> Any:
    """Pool task: one sched scenario under one placement policy."""
    from repro.api.config import SchedConfig
    from repro.sched import compare_policies
    from repro.sched.traces import job_specs_for

    payload, policy = task
    data = dict(payload)
    data["policies"] = [policy]
    data["exec"] = {"backend": "serial", "jobs": 1}
    config = SchedConfig.from_dict(data)
    # Trace configs resolve here, in the worker: only the path crosses
    # the process boundary, and each worker parses the trace itself —
    # likewise the fault plan, so every policy replays the same storm.
    from repro.api.facade import _sched_fault_plan

    jobs = job_specs_for(config)
    reports = compare_policies(
        jobs,
        [policy],
        num_nodes=config.cluster.num_nodes,
        instance=config.cluster.instance,
        gpus_per_node=config.cluster.gpus_per_node,
        seed=config.seed,
        name=config.name,
        faults=_sched_fault_plan(config),
        brain=config.brain,
    )
    return next(iter(reports.values()))


def _task_experiment(entry: tuple[str, str, bool]) -> tuple[str, str]:
    """Pool task: one experiment harness with stdout captured."""
    import importlib

    name, module_path, fast = entry
    module = importlib.import_module(module_path)
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        if fast:
            module.main(fast=True)
        else:
            module.main()
    return (name, out.getvalue())


__all__ = ["ParallelSweeper"]
