"""The pool worker: the loop running inside every child process.

One worker serves both faces of the execution backend:

* **step tasks** — compute forward/backward for an assigned set of
  virtual-worker rows against a bound :class:`EngineSpec` and write the
  fused gradients straight into the engine's shared ``(W, d)`` matrix
  (parameters are read from a shared buffer the parent refreshed before
  dispatch, so nothing heavy crosses the pipe);
* **call tasks** — run an arbitrary module-level function (the sweep
  face: one fully independent ``RunConfig`` / sched policy / experiment
  per task) and pickle the result back.

The module is import-clean for the ``spawn`` start method: it pulls in
NumPy and the shared-memory helper only; model classes arrive by
unpickling the bound spec.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exec.shm import SharedArray

#: Message kinds of the parent -> worker protocol.
BIND, RELEASE, STEP, CALL, STOP = "bind", "release", "step", "call", "stop"


@dataclass
class EngineSpec:
    """Everything a worker needs to serve step tasks for one trainer.

    Shipped once per engine bind; ``grad_spec`` / ``param_spec`` are
    :meth:`SharedArray.spec` tuples naming the shared blocks.
    """

    model: Any
    param_names: list[str]
    shapes: list[tuple[int, ...]]
    slices: list[tuple[int, int]]
    grad_spec: tuple[str, tuple[int, ...], str]
    param_spec: tuple[str, tuple[int, ...], str]
    #: Allow the blocked all-rows-at-once tape pass when the model has one.
    fused: bool = True


@dataclass
class _BoundEngine:
    """Worker-side attached state for one engine id."""

    spec: EngineSpec
    grad: SharedArray
    params_flat: SharedArray
    slices: list[slice] = field(default_factory=list)

    def close(self) -> None:
        self.grad.close()
        self.params_flat.close()


def _bind(spec: EngineSpec) -> _BoundEngine:
    grad = SharedArray.attach(*spec.grad_spec)
    params_flat = SharedArray.attach(*spec.param_spec)
    slices = [slice(lo, hi) for lo, hi in spec.slices]
    return _BoundEngine(spec=spec, grad=grad, params_flat=params_flat, slices=slices)


def _params_view(engine: _BoundEngine) -> dict[str, np.ndarray]:
    """Parameter dict as zero-copy views into the shared flat buffer."""
    flat = engine.params_flat.array
    return {
        name: flat[sl].reshape(shape)
        for name, sl, shape in zip(
            engine.spec.param_names, engine.slices, engine.spec.shapes
        )
    }


def _fusable(model: Any, spec: EngineSpec, batches: list) -> bool:
    if not spec.fused or not hasattr(model, "loss_and_grad_workers"):
        return False
    from repro.train.trainer import DistributedTrainer

    return DistributedTrainer._fusable_batches(batches)


def _run_step(engine: _BoundEngine, rows: list[int], batches: list) -> list:
    """Compute the assigned rows; returns ``(row, loss, metrics, phases)``.

    The blocked multi-row tape pass (``loss_and_grad_workers``) and the
    per-row ``loss_and_grad`` loop are bit-identical (pinned by the
    hot-path parity suite), so chunk fusion is purely a speed choice.
    """
    spec = engine.spec
    model = spec.model
    params = _params_view(engine)
    mat = engine.grad.array
    tick = time.perf_counter
    results = []
    if len(rows) > 1 and _fusable(model, spec, batches):
        t0 = tick()
        xs = np.stack([bx for bx, _ in batches])
        ys = np.stack([by for _, by in batches])
        losses, grads, metrics_list = model.loss_and_grad_workers(params, xs, ys)
        t1 = tick()
        for name, sl in zip(spec.param_names, engine.slices):
            mat[np.asarray(rows), sl] = grads[name].reshape(len(rows), -1)
        t2 = tick()
        phases = {
            "forward_backward": (t1 - t0) / len(rows),
            "fuse": (t2 - t1) / len(rows),
        }
        for row, loss, metrics in zip(rows, losses, metrics_list):
            results.append((row, float(loss), metrics, phases))
        return results
    for row, (bx, by) in zip(rows, batches):
        t0 = tick()
        loss, grads, metrics = model.loss_and_grad(params, bx, by)
        t1 = tick()
        out_row = mat[row]
        for name, sl in zip(spec.param_names, engine.slices):
            out_row[sl] = grads[name].reshape(-1)
        t2 = tick()
        phases = {"forward_backward": t1 - t0, "fuse": t2 - t1}
        results.append((row, float(loss), metrics, phases))
    return results


def worker_main(conn) -> None:
    """The child-process service loop: handle messages until ``stop``.

    Every request gets exactly one ``("ok", payload)`` or
    ``("error", traceback)`` reply, so the parent can pair requests and
    replies without sequence numbers.
    """
    engines: dict[int, _BoundEngine] = {}
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):  # parent went away
                break
            kind = message[0]
            if kind == STOP:
                conn.send(("ok", None))
                break
            try:
                if kind == BIND:
                    _, engine_id, spec = message
                    engines[engine_id] = _bind(spec)
                    reply: Any = None
                elif kind == RELEASE:
                    _, engine_id = message
                    bound = engines.pop(engine_id, None)
                    if bound is not None:
                        bound.close()
                    reply = None
                elif kind == STEP:
                    _, engine_id, rows, batches = message
                    reply = _run_step(engines[engine_id], rows, batches)
                elif kind == CALL:
                    _, fn, args = message
                    reply = fn(*args)
                else:
                    raise ValueError(f"unknown worker message kind {kind!r}")
                conn.send(("ok", reply))
            except BaseException:
                conn.send(("error", traceback.format_exc()))
    finally:
        for bound in engines.values():
            bound.close()
        conn.close()


__all__ = ["EngineSpec", "worker_main", "BIND", "RELEASE", "STEP", "CALL", "STOP"]
