"""Shared-memory ndarrays for the multicore execution engine.

:class:`SharedArray` wraps :class:`multiprocessing.shared_memory.SharedMemory`
with the two lifecycles the worker pool needs:

* the **owner** (the parent process) creates a named block sized for an
  ndarray and eventually both closes *and* unlinks it;
* an **attacher** (a pool worker) maps the same block by name into a
  NumPy view and only closes its mapping on release.

Gradients flow through these blocks zero-copy: workers write their rows
of the ``(W, d)`` fusion matrix directly into the mapping, and the
parent's aggregation reads the very same pages — no pickling of
gradient payloads, ever.
"""

from __future__ import annotations

import contextlib
from multiprocessing import shared_memory

import numpy as np


@contextlib.contextmanager
def _attach_untracked():
    """Suppress resource-tracker registration while attaching.

    Pool workers share the parent's resource-tracker process, whose
    cache is keyed by block *name*: letting an attach register (and a
    worker exit unregister) the parent's block corrupts that shared
    entry and the tracker logs spurious KeyErrors/leak warnings.
    Ownership is strictly the creator's here; Python 3.13 grew
    ``SharedMemory(track=False)`` for exactly this, older versions need
    the register call silenced around the attach.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - always present on CPython
        yield
        return
    original = resource_tracker.register

    def _register_except_shm(name, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _register_except_shm
    try:
        yield
    finally:
        resource_tracker.register = original


class SharedArray:
    """A NumPy array backed by a named shared-memory block.

    Construct through :meth:`create` (owner side) or :meth:`attach`
    (worker side); ``array`` is the live ndarray view.  ``close`` drops
    this process's mapping; the owner's ``close`` also unlinks the block
    from the system.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)

    # -- lifecycles --------------------------------------------------------
    @classmethod
    def create(cls, shape: tuple[int, ...], dtype=np.float64) -> "SharedArray":
        """Owner side: allocate a zeroed block sized for ``shape``."""
        dtype = np.dtype(dtype)
        size = max(1, int(np.prod(shape))) * dtype.itemsize
        shm = shared_memory.SharedMemory(create=True, size=size)
        out = cls(shm, shape, dtype, owner=True)
        out.array.fill(0)
        return out

    @classmethod
    def attach(cls, name: str, shape: tuple[int, ...], dtype=np.float64) -> "SharedArray":
        """Worker side: map an existing block by name."""
        with _attach_untracked():
            shm = shared_memory.SharedMemory(name=name)
        return cls(shm, tuple(shape), np.dtype(dtype), owner=False)

    @property
    def name(self) -> str:
        """The system-wide block name workers attach by."""
        return self._shm.name

    def spec(self) -> tuple[str, tuple[int, ...], str]:
        """``(name, shape, dtype-str)`` — everything attach needs, picklable."""
        return (self.name, self.shape, self.dtype.str)

    def close(self) -> None:
        """Drop this mapping; the owner also unlinks the system block."""
        if self._shm is None:
            return
        # The ndarray view pins the exported buffer; release it first so
        # SharedMemory.close() does not raise BufferError.
        self.array = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            return
        if self._owner:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


__all__ = ["SharedArray"]
