"""Multicore execution engine: pluggable backends for model compute.

The ``exec`` subsystem decides *where* work runs, never *what* it
computes — every backend is bit-identical to the serial reference:

* :mod:`repro.exec.backend` — the ``BACKENDS`` registry (``serial`` /
  ``process``) and the persistent shared-memory worker pool;
* :mod:`repro.exec.engine` — the trainer-facing step engine fanning
  per-worker forward/backward across real CPU cores through a shared
  ``(W, d)`` gradient matrix;
* :mod:`repro.exec.sweeper` — :class:`ParallelSweeper`, fanning
  independent ``RunConfig``\\ s / sched policies / experiment harnesses
  across the same pool with deterministic result ordering;
* :mod:`repro.exec.shm` / :mod:`repro.exec.worker` — the shared-memory
  blocks and the child-process service loop underneath both faces.

Select a backend declaratively (``"exec": {"backend": "process",
"jobs": 4}`` in any run/sched config) or from the command line
(``python -m repro run ... --backend process --jobs 4``).
"""

from repro.exec.backend import (
    BACKENDS,
    ProcessBackend,
    SerialBackend,
    build_backend,
    cpu_count,
    register_backend,
    resolve_jobs,
)
from repro.exec.engine import ProcessStepEngine
from repro.exec.shm import SharedArray
from repro.exec.sweeper import ParallelSweeper

__all__ = [
    "BACKENDS",
    "register_backend",
    "build_backend",
    "cpu_count",
    "resolve_jobs",
    "SerialBackend",
    "ProcessBackend",
    "ProcessStepEngine",
    "ParallelSweeper",
    "SharedArray",
]
