"""Performance model: iteration time, throughput, scaling efficiency,
and the DAWNBench case study.

The composition follows the paper's Fig. 1 semantics: per-iteration time
splits into I/O, FF&BP, compression, communication, and LARS, where each
component's *visible* (non-overlapped) share is what adds up to the
iteration time.  Calibration constants live in
:mod:`repro.perf.calibration`, every one annotated with the paper
measurement it is pinned to.
"""

from repro.perf.calibration import CALIBRATION, Calibration
from repro.perf.elastic_cost import ElasticCostReport, account
from repro.perf.hotpath import (
    HotPathComparison,
    HotPathReport,
    PhaseTimer,
    compare_hotpaths,
    measure_steps_per_sec,
    worker_batches,
)
from repro.perf.dawnbench import (
    DawnbenchResult,
    DawnbenchSimulator,
    PhaseResult,
    dawnbench_leaderboard,
)
from repro.perf.iteration_model import IterationModel, SchemeKind, io_visible_time
from repro.perf.throughput import ThroughputRow, table3_rows
from repro.perf.timeline import (
    TimelineResult,
    derive_overlap_fraction,
    simulate_backward_overlap,
)

__all__ = [
    "PhaseTimer",
    "HotPathReport",
    "HotPathComparison",
    "measure_steps_per_sec",
    "compare_hotpaths",
    "worker_batches",
    "TimelineResult",
    "simulate_backward_overlap",
    "derive_overlap_fraction",
    "Calibration",
    "CALIBRATION",
    "ElasticCostReport",
    "account",
    "IterationModel",
    "SchemeKind",
    "io_visible_time",
    "ThroughputRow",
    "table3_rows",
    "DawnbenchSimulator",
    "DawnbenchResult",
    "PhaseResult",
    "dawnbench_leaderboard",
]
