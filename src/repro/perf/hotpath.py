"""Hot-path instrumentation: phase timers and steps/sec measurement.

The vectorised training engine (``(W, d)`` fusion buffer, matrix-native
collectives, batched compression) is only worth its complexity if the
speedup is *measured and tracked*.  This module provides the pieces:

* :class:`PhaseTimer` — a near-zero-overhead accumulator the trainer
  feeds per-step phase timings into (``forward_backward`` / ``fuse`` /
  ``aggregate`` / ``apply``);
* :func:`measure_steps_per_sec` — steps/sec plus the per-phase split
  for one trainer on a fixed set of worker batches;
* :func:`compare_hotpaths` — A/B of the vectorised engine against the
  faithful pre-vectorisation reference (``legacy_hotpath`` trainer path
  + :func:`repro.models.autodiff.legacy_conv_kernels`), alternating
  single steps so CPU-frequency drift hits both paths equally.

``benchmarks/bench_perf_hotpath.py`` drives this and emits the
``BENCH_perf_hotpath.json`` payload the CI perf gate tracks.
"""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.models.autodiff import legacy_conv_kernels


class PhaseTimer:
    """Accumulates named phase durations (seconds) and call counts.

    The trainer guards every timing call with ``if timer is not None``,
    so an un-instrumented run pays nothing; an instrumented run pays two
    ``perf_counter`` calls per phase.
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Record one timed occurrence of ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    @contextmanager
    def phase(self, name: str):
        """Context-manager sugar around :meth:`add`."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def merge(self, other, *, calls: dict[str, int] | None = None) -> None:
        """Fold another timer's phases into this one.

        ``other`` is a :class:`PhaseTimer` or a plain ``phase ->
        seconds`` mapping (what pool workers ship back over the pipe);
        ``calls`` optionally carries the matching call counts (defaults
        to the other timer's counts, or 1 per phase for a bare mapping).

        This is how off-process work stays visible: the ``process``
        execution backend times ``forward_backward`` / ``fuse`` inside
        its pool workers and merges them here, so per-phase shares no
        longer undercount compute that never ran on the main process.
        Note the merged seconds are *CPU seconds across the pool* — with
        ``jobs`` workers they can legitimately exceed the step's
        wall-clock.
        """
        if isinstance(other, PhaseTimer):
            seconds = other.seconds
            if calls is None:
                calls = other.calls
        else:
            seconds = dict(other)
        for phase, value in seconds.items():
            self.seconds[phase] = self.seconds.get(phase, 0.0) + value
            self.calls[phase] = self.calls.get(phase, 0) + (
                calls.get(phase, 1) if calls else 1
            )

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def summary(self) -> dict[str, float]:
        """Phase → accumulated seconds (insertion order)."""
        return dict(self.seconds)

    def shares(self) -> dict[str, float]:
        """Phase → fraction of the instrumented total."""
        total = self.total
        if total <= 0.0:
            return {k: 0.0 for k in self.seconds}
        return {k: v / total for k, v in self.seconds.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k}={v * 1e3:.2f}ms" for k, v in self.seconds.items())
        return f"PhaseTimer({parts})"


@dataclass
class HotPathReport:
    """Steps/sec plus per-phase seconds for one measured configuration."""

    label: str
    steps: int
    seconds_per_step: float
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def steps_per_sec(self) -> float:
        return 1.0 / self.seconds_per_step if self.seconds_per_step > 0 else 0.0

    def phase_share(self, phase: str) -> float:
        total = sum(self.phase_seconds.values())
        return self.phase_seconds.get(phase, 0.0) / total if total else 0.0


def measure_steps_per_sec(
    trainer,
    batches,
    *,
    steps: int = 20,
    warmup: int = 3,
    label: str = "trainer",
) -> HotPathReport:
    """Median per-step wall-clock (robust to scheduler spikes) + phases."""
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    for _ in range(warmup):
        trainer.train_step(batches)
    timer = PhaseTimer()
    previous_timer = trainer.timer
    trainer.timer = timer
    samples = []
    try:
        for _ in range(steps):
            start = time.perf_counter()
            trainer.train_step(batches)
            samples.append(time.perf_counter() - start)
    finally:
        trainer.timer = previous_timer
    per_phase = {k: v / steps for k, v in timer.summary().items()}
    return HotPathReport(
        label=label,
        steps=steps,
        seconds_per_step=statistics.median(samples),
        phase_seconds=per_phase,
    )


@dataclass
class HotPathComparison:
    """A/B result: the vectorised engine vs the legacy reference."""

    vectorized: HotPathReport
    legacy: HotPathReport

    @property
    def speedup(self) -> float:
        return self.vectorized.steps_per_sec / self.legacy.steps_per_sec


def compare_hotpaths(
    make_trainer,
    batches,
    *,
    steps: int = 30,
    warmup: int = 3,
) -> HotPathComparison:
    """Measure vectorised vs pre-vectorisation steps/sec, interleaved.

    ``make_trainer(legacy_hotpath: bool)`` must build a fresh trainer
    for each path.  Steps alternate one-by-one between the two trainers
    so slow drifts (CPU frequency scaling, noisy neighbours) cancel in
    the ratio; per-path medians are reported.  The legacy trainer runs
    under :func:`legacy_conv_kernels` so its model compute matches the
    pre-vectorisation commit, not just its aggregation path.
    """
    fast = make_trainer(legacy_hotpath=False)
    slow = make_trainer(legacy_hotpath=True)
    for _ in range(warmup):
        fast.train_step(batches)
        with legacy_conv_kernels():
            slow.train_step(batches)

    fast_timer, slow_timer = PhaseTimer(), PhaseTimer()
    fast.timer, slow.timer = fast_timer, slow_timer
    fast_samples, slow_samples = [], []
    for _ in range(steps):
        start = time.perf_counter()
        fast.train_step(batches)
        fast_samples.append(time.perf_counter() - start)
        with legacy_conv_kernels():
            start = time.perf_counter()
            slow.train_step(batches)
            slow_samples.append(time.perf_counter() - start)
    fast.timer = slow.timer = None

    return HotPathComparison(
        vectorized=HotPathReport(
            label="vectorized",
            steps=steps,
            seconds_per_step=statistics.median(fast_samples),
            phase_seconds={k: v / steps for k, v in fast_timer.summary().items()},
        ),
        legacy=HotPathReport(
            label="legacy",
            steps=steps,
            seconds_per_step=statistics.median(slow_samples),
            phase_seconds={k: v / steps for k, v in slow_timer.summary().items()},
        ),
    )


def worker_batches(x: np.ndarray, y: np.ndarray, world_size: int, local_batch: int):
    """First ``local_batch`` samples of each round-robin shard — the
    fixed per-worker batches the steady-state measurements reuse."""
    from repro.utils.partition import round_robin_shards

    shards = round_robin_shards(np.asarray(x), np.asarray(y), world_size)
    return [(sx[:local_batch], sy[:local_batch]) for sx, sy in shards]


__all__ = [
    "PhaseTimer",
    "HotPathReport",
    "HotPathComparison",
    "measure_steps_per_sec",
    "compare_hotpaths",
    "worker_batches",
]
