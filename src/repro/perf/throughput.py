"""Table 3: system throughput and scaling efficiency on 128 GPUs.

Four workloads × three algorithms; throughput is ``b · P / t_iter`` and
scaling efficiency is measured against the §5.5.2 single-GPU baselines
(1150 / 560 / 32 samples/s).  The Dense-SGD column models the existing
TreeAR-based system *without* the paper's I/O and PTO optimisations; the
2DTAR and MSTopK columns include them (they are components of the
paper's system).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.network import NetworkModel
from repro.cluster.cloud_presets import paper_testbed
from repro.models.profiles import (
    ModelProfile,
    resnet50_profile,
    transformer_profile,
    vgg19_profile,
)
from repro.perf.calibration import CALIBRATION, Calibration
from repro.perf.iteration_model import IterationModel, SchemeKind


@dataclass(frozen=True)
class ThroughputRow:
    """One cell-group of Table 3 (a workload under one scheme)."""

    workload: str
    scheme: str
    throughput: float
    scaling_efficiency: float  # in [0, 1]
    iteration_time: float


#: (label, profile factory, resolution, local batch) — the four rows of
#: Table 3 in paper order.
TABLE3_WORKLOADS: tuple[tuple[str, object, int, int], ...] = (
    ("ResNet-50 (224*224)", resnet50_profile, 224, 256),
    ("ResNet-50 (96*96)", resnet50_profile, 96, 256),
    ("VGG-19", vgg19_profile, 224, 256),
    ("Transformer", transformer_profile, 0, 8),
)

#: Paper-order schemes for the Table 3 columns.
TABLE3_SCHEMES = (
    ("Dense-SGD", SchemeKind.DENSE_TREE),
    ("2DTAR-SGD", SchemeKind.DENSE_2DTAR),
    ("MSTopK-SGD", SchemeKind.MSTOPK_HIER),
)


def _single_gpu_rate(profile: ModelProfile, resolution: int) -> float:
    """Single-GPU rate for the Table 3 baseline.

    The paper's §5.5.2 baselines are resolution-specific only for
    ResNet-50: 1150 samples/s at 224² and the Table 4 rate at 96².
    """
    if profile.name == "ResNet-50" and resolution == 96:
        return profile.single_gpu_throughput(96)
    return profile.table3_single_gpu


def table3_rows(
    network: NetworkModel | None = None,
    *,
    cal: Calibration = CALIBRATION,
) -> list[ThroughputRow]:
    """Compute all 12 Table 3 cells on the paper's testbed."""
    network = network if network is not None else paper_testbed()
    rows: list[ThroughputRow] = []
    for label, factory, resolution, batch in TABLE3_WORKLOADS:
        profile = factory()
        base_rate = _single_gpu_rate(profile, resolution)
        for scheme_label, kind in TABLE3_SCHEMES:
            dense_baseline = kind is SchemeKind.DENSE_TREE
            model = IterationModel(
                network=network,
                profile=profile,
                scheme=kind,
                resolution=resolution,
                local_batch=batch,
                single_gpu_throughput=base_rate,
                density=cal.training_density,
                use_datacache=not dense_baseline,
                use_pto=not dense_baseline,
                cal=cal,
            )
            rows.append(
                ThroughputRow(
                    workload=label,
                    scheme=scheme_label,
                    throughput=model.throughput(),
                    scaling_efficiency=model.scaling_efficiency(base_rate),
                    iteration_time=model.iteration_time(),
                )
            )
    return rows


#: The published Table 3 values, for paper-vs-measured reporting:
#: workload -> scheme -> (throughput samples/s, scaling efficiency %).
PAPER_TABLE3: dict[str, dict[str, tuple[float, float]]] = {
    "ResNet-50 (224*224)": {
        "Dense-SGD": (64000, 43.5),
        "2DTAR-SGD": (134656, 91.4),
        "MSTopK-SGD": (133376, 90.6),
    },
    "ResNet-50 (96*96)": {
        "Dense-SGD": (113280, 20.1),
        "2DTAR-SGD": (313600, 56.7),
        "MSTopK-SGD": (396800, 70.5),
    },
    "VGG-19": {
        "Dense-SGD": (17920, 25.0),
        "2DTAR-SGD": (47616, 66.4),
        "MSTopK-SGD": (57600, 80.4),
    },
    "Transformer": {
        "Dense-SGD": (678, 16.5),
        "2DTAR-SGD": (2534, 61.6),
        "MSTopK-SGD": (3502, 87.8),
    },
}


__all__ = [
    "ThroughputRow",
    "table3_rows",
    "TABLE3_WORKLOADS",
    "TABLE3_SCHEMES",
    "PAPER_TABLE3",
]
