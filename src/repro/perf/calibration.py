"""Calibration constants for the performance model.

Every constant is pinned to a measurement the paper reports; the unit
tests in ``tests/perf/test_calibration.py`` cross-check the derived
quantities against the corresponding paper numbers (with generous
tolerances — we reproduce shape, not microseconds).

Summary of anchors:

* Fig. 1 — Dense-SGD 224² iteration ≈ 0.67 s with I/O ≈ 0.09 s and
  communication the largest bar; TopK-SGD compression ≈ 0.239 s vs
  FF&BP 0.204 s.
* §5.5.2 — single-GPU baselines 1150 / 560 / 32 samples/s.
* Table 3 — Dense 64000, 2DTAR 134656, MSTopK 133376 samples/s on
  ResNet-50 224² (and the other three workloads).
* §5.4 — LARS 11 ms → 7 ms (ResNet-50), 30 ms → 14 ms (Transformer).
* Fig. 9 — naive I/O ≈ 10× DataCache I/O; ~2× end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the iteration-time model."""

    # -- overlap ------------------------------------------------------------
    #: Fraction of FF&BP time a *dense* collective can hide behind
    #: (wait-free backprop + tensor fusion overlap ~25% of the backward
    #: pass ≈ 15% of FF&BP on these workloads).  Fitted to Table 3's
    #: Dense/2DTAR columns.
    dense_overlap_fraction: float = 0.15
    #: The sparse path cannot pipeline with backprop (selection needs the
    #: reduce-scattered shard of each fused buffer) — no overlap, plus a
    #: fixed pack/unpack overhead per iteration.  Fitted so MSTopK-SGD
    #: lands slightly *below* 2DTAR-SGD at ResNet-50 224² (Table 3).
    sparse_pipeline_overhead: float = 0.006

    # -- fixed per-iteration costs -------------------------------------------
    #: Framework synchronisation / scheduling per iteration (Horovod
    #: negotiation, kernel queue flushes).
    sync_overhead: float = 0.005

    # -- wire formats -----------------------------------------------------------
    #: The Horovod TreeAR baseline all-reduces FP32 gradients; the
    #: optimized CommLib schemes (2DTAR, HiTopKComm) use FP16 ("we enable
    #: the mixed-precision training technique", §5.5.2).
    dense_baseline_wire_bytes: int = 4
    commlib_wire_bytes: int = 2
    #: Sparse exchange: FP32 values + int32 indices (Eq. 3's accounting).
    sparse_value_bytes: int = 4
    sparse_index_bytes: int = 4

    # -- training sparsity ---------------------------------------------------------
    #: k = 0.001 d — the operator benchmark's selection ratio (§5.2) and
    #: the end-to-end training density.
    training_density: float = 0.001

    # -- I/O path ------------------------------------------------------------------
    #: Synthetic-JPEG compression ratio (bytes per pixel).
    encoded_bytes_per_pixel: float = 0.6
    #: Per-client NFS (CFS) sequential read bandwidth.
    nfs_bandwidth: float = 300e6
    #: JPEG decode throughput per worker process (bytes of *pixels*/s).
    decode_bytes_per_sec: float = 80e6
    #: Augmentation throughput (bytes of float32 pixels/s).  Crop +
    #: mirror + normalise are cheap memory-bound passes; calibrated so
    #: the cached-path I/O reduction exceeds Fig. 9's ">10x" claim.
    augment_bytes_per_sec: float = 800e6
    #: Memory-cache read bandwidth.
    memory_read_bandwidth: float = 10e9
    #: Input-pipeline worker processes in the 128-GPU system (Fig. 1);
    #: the Fig. 9 single-GPU measurement is effectively serial (1).
    pipeline_workers_system: int = 8
    pipeline_workers_single: int = 1
    #: Residual visible fraction of a fully-overlapped pipeline (queue
    #: jitter / stragglers).
    io_straggler_fraction: float = 0.1
    #: Per-sentence payload for the Transformer's text pipeline (token
    #: ids; trivially small next to images).
    text_sample_bytes: int = 2048

    # -- DAWNBench -----------------------------------------------------------------
    #: Per-epoch evaluation + checkpoint overhead in the record run
    #: (fills the gap between pure-throughput time and the 151 s record).
    dawnbench_epoch_overhead: float = 0.45
    #: ImageNet train-split size.
    imagenet_train_samples: int = 1_281_167

    # -- accuracy models --------------------------------------------------------------
    #: Fitted top-5 accuracy curve for the 28-epoch DAWNBench recipe:
    #: acc(e) = a - b * exp(-e / tau), crossing 93% between epochs 27
    #: and 28 (the paper reaches 93% at epoch 28).
    dawnbench_acc_a: float = 0.93235
    dawnbench_acc_b: float = 0.61
    dawnbench_acc_tau: float = 5.0
    #: Accuracy penalty per epoch of sparse training beyond the 13-epoch
    #: budget ("We cannot fully use MSTopK-SGD in the whole of 28 epochs
    #: because it would cause accuracy loss", §5.6) — used by the
    #: schedule ablation.
    sparse_epoch_accuracy_penalty: float = 0.0012


#: The default calibration used by all harnesses.
CALIBRATION = Calibration()


__all__ = ["Calibration", "CALIBRATION"]
