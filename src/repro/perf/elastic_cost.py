"""Cost and goodput accounting for elastic (spot-market) training runs.

Transient-server training is only worth its operational pain if the
spot discount survives the lost work and recovery overhead ("Speeding up
Deep Learning with Transient Servers", Li et al. 2019).  This module
turns an :class:`~repro.elastic.elastic_trainer.ElasticRunReport` into
the numbers that decide that trade:

* **goodput** — useful iterations per virtual second, versus the raw
  attempted-iteration throughput;
* **lost work** — the fraction of attempted iterations rolled back;
* **dollars** — spot cost of the churny run (live node-hours at the
  discounted rate) versus the on-demand baseline that trains the same
  useful iterations on a stable cluster with zero churn overhead.

Prices come from :data:`repro.elastic.events.SPOT_PROFILES` (ballpark
USD per node-hour for the Table 1 8xV100 instances) and can be
overridden per call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elastic.elastic_trainer import ElasticRunReport
from repro.elastic.events import SPOT_PROFILES, SpotProfile


@dataclass(frozen=True)
class ElasticCostReport:
    """Economic summary of one elastic run."""

    scheme: str
    cloud: str
    goodput: float  # useful iterations / virtual second
    raw_throughput: float  # attempted iterations / virtual second
    lost_fraction: float  # share of attempted iterations rolled back
    spot_cost: float  # USD for the churny spot run
    on_demand_cost: float  # USD for the stable on-demand baseline
    cost_per_kilo_iteration: float  # USD per 1000 useful iterations (spot)

    @property
    def savings_fraction(self) -> float:
        """Relative saving of spot over on-demand (negative = spot loses)."""
        if self.on_demand_cost == 0:
            return 0.0
        return 1.0 - self.spot_cost / self.on_demand_cost


def account(
    report: ElasticRunReport,
    *,
    instance: str | SpotProfile = "tencent",
    on_demand_hourly: float | None = None,
    spot_discount: float | None = None,
    baseline_nodes: int | None = None,
) -> ElasticCostReport:
    """Price an elastic run against its on-demand baseline.

    The baseline trains the same number of *useful* iterations on a
    stable on-demand cluster of ``baseline_nodes`` (default: the run's
    time-weighted mean live node count, so the baseline buys the same
    capacity the run actually used) at the run's churn-free
    per-iteration time — total step time net of recovery overhead,
    averaged over attempted iterations — so the comparison isolates
    what churn costs.
    """
    if isinstance(instance, SpotProfile):
        profile = instance
    else:
        key = instance.lower()
        if key not in SPOT_PROFILES:
            raise KeyError(
                f"unknown spot profile {instance!r}; available: {sorted(SPOT_PROFILES)}"
            )
        profile = SPOT_PROFILES[key]
    hourly = on_demand_hourly if on_demand_hourly is not None else profile.on_demand_hourly
    discount = spot_discount if spot_discount is not None else profile.spot_discount
    if hourly < 0:
        raise ValueError(f"on_demand_hourly must be >= 0, got {hourly}")
    if not 0 < discount <= 1:
        raise ValueError(f"spot_discount must be in (0, 1], got {discount}")

    spot_cost = report.node_seconds / 3600.0 * hourly * discount

    step_seconds = report.compute_seconds + report.comm_seconds
    per_iteration = (
        step_seconds / report.wall_iterations if report.wall_iterations else 0.0
    )
    baseline_seconds = per_iteration * report.useful_iterations
    if baseline_nodes is None:
        # Default: the run's mean live node count, so the baseline buys
        # the same capacity it actually used, just stably and on-demand.
        nodes = (
            report.node_seconds / report.total_seconds if report.total_seconds else 1.0
        )
    else:
        nodes = float(baseline_nodes)
    on_demand_cost = baseline_seconds * max(nodes, 1.0) / 3600.0 * hourly

    cost_per_kilo = (
        spot_cost / report.useful_iterations * 1000.0
        if report.useful_iterations
        else 0.0
    )
    return ElasticCostReport(
        scheme=report.scheme,
        cloud=profile.cloud,
        goodput=report.goodput,
        raw_throughput=report.raw_throughput,
        lost_fraction=report.lost_fraction,
        spot_cost=spot_cost,
        on_demand_cost=on_demand_cost,
        cost_per_kilo_iteration=cost_per_kilo,
    )


__all__ = ["ElasticCostReport", "account"]
