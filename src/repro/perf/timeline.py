"""Wait-free backpropagation timeline with tensor fusion.

The paper's baseline systems rely on two standard overlapping tricks it
cites explicitly: *wait-free backpropagation* (Zhang et al. 2017; Awan
et al. 2017) — a layer's gradient can be communicated as soon as its
backward pass finishes — and *tensor fusion* (Shi et al. 2019b, 2020) —
small gradients are packed into fusion buffers so each collective pays
its latency once.

This module simulates that pipeline explicitly: layers finish backward
in reverse order, fill fusion buckets, and each bucket's collective is
issued on a single serial communication channel.  The result is the
*visible* (non-overlapped) communication time — the quantity behind the
``dense_overlap_fraction`` calibration constant in the iteration model,
which this simulator lets us derive rather than assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class FusionBucket:
    """One fused communication buffer."""

    layer_indices: tuple[int, ...]
    nbytes: int
    ready_at: float  # when the last contributing layer's backward ends


@dataclass
class TimelineResult:
    """Outcome of one simulated backward+communication pipeline."""

    buckets: list[FusionBucket]
    backward_end: float  # when backprop finishes
    comm_end: float  # when the last collective finishes
    busy_comm: float  # total time the channel spent transferring

    @property
    def visible_comm(self) -> float:
        """Communication time not hidden behind backward compute."""
        return max(0.0, self.comm_end - self.backward_end)

    @property
    def overlap_ratio(self) -> float:
        """Fraction of communication hidden by compute."""
        if self.busy_comm == 0:
            return 0.0
        return 1.0 - self.visible_comm / self.busy_comm

    @property
    def iteration_span(self) -> float:
        """Backward start to last byte on the wire."""
        return max(self.backward_end, self.comm_end)


def build_buckets(
    layer_bytes: Sequence[int],
    layer_ready: Sequence[float],
    fusion_threshold: int,
) -> list[FusionBucket]:
    """Greedily pack layers (in backward order) into fusion buffers.

    A bucket is flushed once it accumulates ``fusion_threshold`` bytes
    (Horovod's fusion-buffer semantics).  ``layer_ready[i]`` is when
    layer ``i``'s gradient becomes available; a bucket is ready when its
    *last* layer is.
    """
    if fusion_threshold < 1:
        raise ValueError(f"fusion_threshold must be >= 1, got {fusion_threshold}")
    if len(layer_bytes) != len(layer_ready):
        raise ValueError("layer_bytes and layer_ready must align")
    buckets: list[FusionBucket] = []
    pending: list[int] = []
    pending_bytes = 0
    for i, (nbytes, ready) in enumerate(zip(layer_bytes, layer_ready)):
        pending.append(i)
        pending_bytes += int(nbytes)
        if pending_bytes >= fusion_threshold:
            buckets.append(FusionBucket(tuple(pending), pending_bytes, ready))
            pending, pending_bytes = [], 0
    if pending:
        buckets.append(
            FusionBucket(tuple(pending), pending_bytes, layer_ready[len(layer_bytes) - 1])
        )
    return buckets


def simulate_backward_overlap(
    layer_sizes: Sequence[int],
    *,
    backward_time: float,
    comm_time_fn: Callable[[int], float],
    fusion_threshold: int = 64 << 20,
    bytes_per_element: int = 4,
) -> TimelineResult:
    """Simulate wait-free backprop for one iteration.

    Parameters
    ----------
    layer_sizes:
        Per-layer parameter counts in *forward* order (the backward pass
        visits them reversed).
    backward_time:
        Total backward-pass compute time; apportioned to layers by their
        parameter counts (a serviceable proxy for per-layer FLOPs).
    comm_time_fn:
        ``nbytes -> seconds`` for one fused collective (e.g. a closure
        over a :class:`~repro.comm.base.CommScheme` time model).
    fusion_threshold:
        Fusion-buffer size in bytes (Horovod default: 64 MiB).
    """
    if backward_time < 0:
        raise ValueError(f"backward_time must be non-negative, got {backward_time}")
    sizes = [int(s) for s in reversed(list(layer_sizes))]  # backward order
    total = sum(sizes)
    if total == 0:
        raise ValueError("empty model")

    # Layer i's backward finishes after the cumulative size fraction.
    ready_times = list(np.cumsum(sizes) / total * backward_time)
    layer_bytes = [s * bytes_per_element for s in sizes]
    buckets = build_buckets(layer_bytes, ready_times, fusion_threshold)

    # Single serial communication channel, FIFO by readiness.
    channel_free = 0.0
    busy = 0.0
    for bucket in buckets:
        start = max(bucket.ready_at, channel_free)
        duration = comm_time_fn(bucket.nbytes)
        channel_free = start + duration
        busy += duration
    return TimelineResult(
        buckets=buckets,
        backward_end=backward_time,
        comm_end=channel_free,
        busy_comm=busy,
    )


def derive_overlap_fraction(
    layer_sizes: Sequence[int],
    *,
    ffbp_time: float,
    comm_time_fn: Callable[[int], float],
    backward_share: float = 0.6,
    fusion_threshold: int = 64 << 20,
) -> float:
    """The overlap constant the iteration model uses, derived bottom-up.

    Returns the fraction of FF&BP time that hides communication:
    ``(busy_comm - visible_comm) / ffbp_time``.
    """
    result = simulate_backward_overlap(
        layer_sizes,
        backward_time=backward_share * ffbp_time,
        comm_time_fn=comm_time_fn,
        fusion_threshold=fusion_threshold,
    )
    hidden = result.busy_comm - result.visible_comm
    return max(0.0, hidden / ffbp_time)


__all__ = [
    "FusionBucket",
    "TimelineResult",
    "build_buckets",
    "simulate_backward_overlap",
    "derive_overlap_fraction",
]
