"""The DAWNBench case study (§5.6, Tables 4 and 5).

The record run trains ResNet-50 to 93% top-5 in 28 epochs with
progressive resizing (13×96², 11×128², 3×224², 1×288²@bs128), using
MSTopK-SGD for the low-resolution warmup phase (where dense scaling is
poor) and 2DTAR-SGD afterwards (where compute hides the dense
communication and full-precision aggregation protects accuracy).

The simulator composes the iteration model per phase, applies the fitted
accuracy curve, and reports the time-to-93% alongside the published
leaderboard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.network import NetworkModel
from repro.cluster.cloud_presets import paper_testbed
from repro.models.profiles import resnet50_profile
from repro.optim.schedules import ProgressiveResizeSchedule, ResolutionPhase
from repro.perf.calibration import CALIBRATION, Calibration
from repro.perf.iteration_model import IterationModel, SchemeKind


@dataclass(frozen=True)
class PhaseResult:
    """One Table 4 row: a resolution phase's throughput."""

    phase: ResolutionPhase
    single_gpu_throughput: float
    system_throughput: float
    scaling_efficiency: float
    seconds: float  # wall time of the whole phase


@dataclass
class DawnbenchResult:
    """Outcome of one simulated record run."""

    phases: list[PhaseResult] = field(default_factory=list)
    total_seconds: float = 0.0
    final_top5: float = 0.0
    epochs: int = 0
    reached_target: bool = False

    @property
    def time_to_target(self) -> float:
        return self.total_seconds


@dataclass(frozen=True)
class LeaderboardEntry:
    team: str
    date: str
    interconnect: str
    seconds: float


#: Table 5's published entries (all with 128 Tesla V100 GPUs).
DAWNBENCH_LEADERBOARD: tuple[LeaderboardEntry, ...] = (
    LeaderboardEntry("FastAI", "Sep 2018", "100GbIB", 1086),
    LeaderboardEntry("Huawei", "Dec 2018", "-", 562),
    LeaderboardEntry("Huawei", "May 2019", "100GbIB", 163),
    LeaderboardEntry("Alibaba", "Mar 2020", "32GbE", 158),
)


def dawnbench_leaderboard() -> tuple[LeaderboardEntry, ...]:
    return DAWNBENCH_LEADERBOARD


class DawnbenchSimulator:
    """Simulates the 28-epoch record run on the virtual testbed."""

    def __init__(
        self,
        network: NetworkModel | None = None,
        *,
        schedule: ProgressiveResizeSchedule | None = None,
        cal: Calibration = CALIBRATION,
        target_top5: float = 0.93,
    ) -> None:
        self.network = network if network is not None else paper_testbed()
        self.schedule = (
            schedule
            if schedule is not None
            else ProgressiveResizeSchedule.dawnbench_28_epoch()
        )
        self.cal = cal
        self.target_top5 = target_top5
        self.profile = resnet50_profile()

    # -- per-phase throughput (Table 4) -------------------------------------
    def phase_model(self, phase: ResolutionPhase) -> IterationModel:
        kind = (
            SchemeKind.MSTOPK_HIER
            if phase.comm_scheme == "mstopk"
            else SchemeKind.DENSE_2DTAR
        )
        return IterationModel(
            network=self.network,
            profile=self.profile,
            scheme=kind,
            resolution=phase.resolution,
            local_batch=phase.local_batch,
            density=self.cal.training_density,
            use_datacache=True,
            use_pto=True,
            cal=self.cal,
        )

    def phase_result(self, phase: ResolutionPhase) -> PhaseResult:
        model = self.phase_model(phase)
        throughput = model.throughput()
        single = self.profile.single_gpu_throughput(phase.resolution)
        epochs_seconds = (
            phase.epochs * self.cal.imagenet_train_samples / throughput
            + phase.epochs * self.cal.dawnbench_epoch_overhead
        )
        return PhaseResult(
            phase=phase,
            single_gpu_throughput=single,
            system_throughput=throughput,
            scaling_efficiency=throughput / (self.network.world_size * single),
            seconds=epochs_seconds,
        )

    # -- accuracy model --------------------------------------------------------
    def top5_accuracy(self, epoch: int, *, sparse_epochs: int | None = None) -> float:
        """Fitted top-5 curve, crossing 93% between epochs 27 and 28.

        ``sparse_epochs`` beyond the schedule's 13-epoch MSTopK budget
        cost accuracy (§5.6's justification for switching to dense).
        """
        cal = self.cal
        acc = cal.dawnbench_acc_a - cal.dawnbench_acc_b * math.exp(
            -epoch / cal.dawnbench_acc_tau
        )
        if sparse_epochs is not None and sparse_epochs > 13:
            acc -= (sparse_epochs - 13) * cal.sparse_epoch_accuracy_penalty
        return max(0.0, acc)

    # -- the run --------------------------------------------------------------
    def run(self) -> DawnbenchResult:
        result = DawnbenchResult()
        sparse_epochs = sum(
            p.epochs for p in self.schedule.phases if p.comm_scheme == "mstopk"
        )
        for phase in self.schedule.phases:
            result.phases.append(self.phase_result(phase))
        result.total_seconds = sum(p.seconds for p in result.phases)
        result.epochs = self.schedule.total_epochs
        result.final_top5 = self.top5_accuracy(
            result.epochs, sparse_epochs=sparse_epochs
        )
        result.reached_target = result.final_top5 >= self.target_top5
        return result

    def run_all_dense(self) -> DawnbenchResult:
        """Ablation: the same schedule with 2DTAR everywhere."""
        dense_schedule = ProgressiveResizeSchedule(
            phases=tuple(
                ResolutionPhase(p.epochs, p.resolution, p.local_batch, "2dtar")
                for p in self.schedule.phases
            )
        )
        return DawnbenchSimulator(
            self.network, schedule=dense_schedule, cal=self.cal
        ).run()

    def run_all_sparse(self) -> DawnbenchResult:
        """Ablation: MSTopK for all 28 epochs — faster but misses 93%."""
        sparse_schedule = ProgressiveResizeSchedule(
            phases=tuple(
                ResolutionPhase(p.epochs, p.resolution, p.local_batch, "mstopk")
                for p in self.schedule.phases
            )
        )
        return DawnbenchSimulator(
            self.network, schedule=sparse_schedule, cal=self.cal
        ).run()


#: Table 4's published values: resolution -> (single GPU, 128-GPU, SE %).
PAPER_TABLE4: dict[int, tuple[float, float, float]] = {
    96: (4400, 366208, 65.0),
    128: (3010, 269696, 70.0),
    224: (1240, 131712, 83.0),
    288: (710, 72960, 80.0),
}

#: The paper's record time (Table 5, "Ours").
PAPER_RECORD_SECONDS = 151.0


__all__ = [
    "PhaseResult",
    "DawnbenchResult",
    "DawnbenchSimulator",
    "LeaderboardEntry",
    "DAWNBENCH_LEADERBOARD",
    "dawnbench_leaderboard",
    "PAPER_TABLE4",
    "PAPER_RECORD_SECONDS",
]
