"""Scaling-efficiency sweeps and the paper's §1 motivation claim.

The paper opens with: "128 Nvidia V100 GPUs in Tencent Cloud can only
achieve about 40× speedup compared to a single V100 GPU, which results
in a very low scaling efficiency of 31%" — the number that motivates the
whole system.  :func:`intro_claim` reproduces it from the iteration
model (the TF+Horovod TreeAR baseline without the paper's I/O and PTO
optimisations), and :func:`efficiency_sweep` generalises it into the
efficiency-vs-cluster-size curves that show where each scheme stops
scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cloud_presets import make_cluster
from repro.models.profiles import ModelProfile, resnet50_profile
from repro.perf.calibration import CALIBRATION, Calibration
from repro.perf.iteration_model import IterationModel, SchemeKind


@dataclass(frozen=True)
class EfficiencyPoint:
    """One point of an efficiency-vs-scale curve."""

    num_nodes: int
    world_size: int
    scheme: str
    throughput: float
    speedup: float  # vs one GPU
    efficiency: float  # speedup / world_size


def _model(
    network,
    profile: ModelProfile,
    kind: SchemeKind,
    *,
    resolution: int,
    local_batch: int,
    single_gpu: float,
    optimised: bool,
    cal: Calibration,
) -> IterationModel:
    return IterationModel(
        network=network,
        profile=profile,
        scheme=kind,
        resolution=resolution,
        local_batch=local_batch,
        single_gpu_throughput=single_gpu,
        density=cal.training_density,
        use_datacache=optimised,
        use_pto=optimised,
        cal=cal,
    )


def intro_claim(*, cal: Calibration = CALIBRATION) -> EfficiencyPoint:
    """The §1 motivating number: the baseline's speedup at 128 GPUs.

    TensorFlow + Horovod (TreeAR, no DataCache, serial LARS) training
    ResNet-50/ImageNet on the 16×8 Tencent testbed.  The paper reports
    ~40× speedup (31% efficiency); the model lands in the same regime.
    """
    profile = resnet50_profile()
    network = make_cluster(16, "tencent")
    single_gpu = profile.table3_single_gpu
    model = _model(
        network,
        profile,
        SchemeKind.DENSE_TREE,
        resolution=224,
        local_batch=256,
        single_gpu=single_gpu,
        optimised=False,
        cal=cal,
    )
    throughput = model.throughput()
    speedup = throughput / single_gpu
    return EfficiencyPoint(
        num_nodes=16,
        world_size=128,
        scheme="Dense-SGD (TF+Horovod baseline)",
        throughput=throughput,
        speedup=speedup,
        efficiency=speedup / 128,
    )


def efficiency_sweep(
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    *,
    profile: ModelProfile | None = None,
    resolution: int = 224,
    local_batch: int = 256,
    schemes: tuple[tuple[str, SchemeKind, bool], ...] = (
        ("Dense-SGD", SchemeKind.DENSE_TREE, False),
        ("2DTAR-SGD", SchemeKind.DENSE_2DTAR, True),
        ("MSTopK-SGD", SchemeKind.MSTOPK_HIER, True),
    ),
    cal: Calibration = CALIBRATION,
) -> list[EfficiencyPoint]:
    """Efficiency-vs-node-count curves for the given schemes."""
    profile = profile if profile is not None else resnet50_profile()
    single_gpu = (
        profile.table3_single_gpu
        if profile.table3_single_gpu
        else profile.single_gpu_throughput(resolution or None)
    )
    points: list[EfficiencyPoint] = []
    for nodes in node_counts:
        network = make_cluster(nodes, "tencent")
        for label, kind, optimised in schemes:
            model = _model(
                network,
                profile,
                kind,
                resolution=resolution,
                local_batch=local_batch,
                single_gpu=single_gpu,
                optimised=optimised,
                cal=cal,
            )
            throughput = model.throughput()
            speedup = throughput / single_gpu
            points.append(
                EfficiencyPoint(
                    num_nodes=nodes,
                    world_size=network.world_size,
                    scheme=label,
                    throughput=throughput,
                    speedup=speedup,
                    efficiency=speedup / network.world_size,
                )
            )
    return points


__all__ = ["EfficiencyPoint", "intro_claim", "efficiency_sweep"]
