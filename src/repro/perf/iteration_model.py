"""Iteration-time model with overlap (the Fig. 1 decomposition).

One training iteration decomposes into I/O, FF&BP, compression,
communication, and LARS (paper §2.2); the bars of Fig. 1 are the
*visible* — non-overlapped — parts.  This module composes those parts
for any (model profile, resolution, batch, scheme, options) tuple on a
virtual cluster, yielding the throughput and scaling-efficiency numbers
of Tables 3 and 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.gpu import exact_topk_gpu_time
from repro.cluster.network import NetworkModel
from repro.comm.breakdown import TimeBreakdown
from repro.comm.dense import Torus2DAllReduce, TreeAllReduce
from repro.comm.hitopkcomm import STEP_MSTOPK, HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.models.profiles import ModelProfile
from repro.perf.calibration import CALIBRATION, Calibration
from repro.pto.operator import PTOCostModel


class SchemeKind(enum.Enum):
    """The aggregation schemes of Table 3 / Fig. 1."""

    DENSE_TREE = "dense-tree"  # "Dense-SGD" (Horovod TreeAR baseline)
    DENSE_2DTAR = "2dtar"  # "2DTAR-SGD"
    TOPK_NAIVE = "topk"  # "TopK-SGD" (exact top-k + flat All-Gather)
    MSTOPK_HIER = "mstopk"  # "MSTopK-SGD" (the paper's system)


def io_visible_time(
    resolution: int,
    local_batch: int,
    t_compute: float,
    *,
    cached: bool,
    workers: int,
    cal: Calibration = CALIBRATION,
    text: bool = False,
) -> float:
    """Visible input-pipeline time per iteration.

    The naive path (no DataCache) decodes from NFS every epoch; its
    pipeline runs slower than the GPU and is fully visible (the starved
    pipeline of Figs. 1 and 9).  The DataCache path reads pre-processed
    pixels from memory and re-augments; it overlaps with GPU compute up
    to a straggler residue.
    """
    if text:
        payload = local_batch * cal.text_sample_bytes
        if cached:
            pipeline = payload / cal.memory_read_bandwidth
            return pipeline + cal.io_straggler_fraction * pipeline
        return payload / cal.nfs_bandwidth + payload / cal.decode_bytes_per_sec

    pixel_bytes = resolution * resolution * 3 * local_batch
    encoded_bytes = pixel_bytes * cal.encoded_bytes_per_pixel
    if cached:
        read = pixel_bytes / cal.memory_read_bandwidth
        augment = (pixel_bytes * 4) / cal.augment_bytes_per_sec / workers
        pipeline = read + augment
        hidden = min(pipeline, t_compute)
        return (pipeline - hidden) + cal.io_straggler_fraction * hidden
    read = encoded_bytes / cal.nfs_bandwidth
    decode = pixel_bytes / cal.decode_bytes_per_sec / workers
    return read + decode


@dataclass
class IterationModel:
    """Composable per-iteration time model.

    Parameters
    ----------
    network:
        The virtual cluster.
    profile:
        Workload inventory + throughput calibration.
    scheme:
        One of :class:`SchemeKind`.
    resolution:
        Input resolution (images) or ``0`` (Transformer).
    local_batch:
        Per-GPU batch ``b``.
    single_gpu_throughput:
        Samples/s of one GPU at this resolution; defaults to the
        profile's Table 4 calibration, override with
        ``profile.table3_single_gpu`` for Table 3 reproductions.
    density:
        Sparsity ρ for the top-k schemes.
    use_datacache / use_pto:
        The §4 optimisations; the Dense-SGD baseline disables both.
    contention:
        Number of co-located jobs sharing this job's node NICs (>= 1).
        Values above 1 split the inter-node link capacity via
        :meth:`~repro.cluster.network.NetworkModel.contended`, so the
        communication (and PTO) terms stretch while compute, I/O and
        compression stay solo — the multi-tenant degradation model used
        by :mod:`repro.sched`.
    compute_stretch:
        Straggler factor (>= 1) multiplying the FF&BP term: synchronous
        training runs at the pace of its slowest worker, so a persistent
        straggler on any node stretches every iteration.  Used by the
        fault subsystem (:mod:`repro.faults`); ``1.0`` is a healthy
        cluster.
    comm_jitter:
        Gray-failure factor (>= 1) multiplying the *visible*
        communication term: a lossy, jittery link stretches every
        collective beyond what its (clean) bandwidth predicts.  The
        fault subsystem passes the realised per-window jitter here;
        ``1.0`` is a healthy link.
    """

    network: NetworkModel
    profile: ModelProfile
    scheme: SchemeKind
    resolution: int
    local_batch: int
    single_gpu_throughput: float | None = None
    density: float = CALIBRATION.training_density
    use_datacache: bool = True
    use_pto: bool = True
    pipeline_workers: int = CALIBRATION.pipeline_workers_system
    cal: Calibration = CALIBRATION
    contention: float = 1.0
    compute_stretch: float = 1.0
    comm_jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.local_batch < 1:
            raise ValueError(f"local_batch must be >= 1, got {self.local_batch}")
        if self.contention < 1:
            raise ValueError(f"contention must be >= 1, got {self.contention}")
        if self.compute_stretch < 1:
            raise ValueError(
                f"compute_stretch must be >= 1, got {self.compute_stretch}"
            )
        if self.comm_jitter < 1:
            raise ValueError(
                f"comm_jitter must be >= 1, got {self.comm_jitter}"
            )
        if isinstance(self.scheme, str):
            self.scheme = SchemeKind(self.scheme)

    @property
    def contended_network(self) -> NetworkModel:
        """The cluster as this job sees it: NIC capacity split by tenants."""
        return self.network.contended(self.contention)

    # -- components -------------------------------------------------------
    @property
    def gpu_rate(self) -> float:
        if self.single_gpu_throughput is not None:
            return self.single_gpu_throughput
        return self.profile.single_gpu_throughput(self.resolution or None)

    def t_ffbp(self) -> float:
        """Feed-forward + backprop time for one local batch.

        ``compute_stretch`` models a persistent straggler: the
        synchronous barrier stretches everyone to the slowest worker.
        """
        return self.compute_stretch * self.local_batch / self.gpu_rate

    def _comm_scheme(self):
        cal = self.cal
        network = self.contended_network
        if self.scheme is SchemeKind.DENSE_TREE:
            return TreeAllReduce(network, wire_bytes=cal.dense_baseline_wire_bytes)
        if self.scheme is SchemeKind.DENSE_2DTAR:
            return Torus2DAllReduce(network, wire_bytes=cal.commlib_wire_bytes)
        if self.scheme is SchemeKind.TOPK_NAIVE:
            return NaiveAllGather(
                network,
                density=self.density,
                value_bytes=cal.sparse_value_bytes,
                index_bytes=cal.sparse_index_bytes,
                error_feedback=False,
            )
        return HiTopKComm(
            network,
            density=self.density,
            value_bytes=cal.sparse_value_bytes,
            index_bytes=cal.sparse_index_bytes,
            dense_wire_bytes=cal.commlib_wire_bytes,
            error_feedback=False,
        )

    def t_compression(self) -> tuple[float, float]:
        """(compression, communication) times for the configured scheme."""
        d = self.profile.num_params
        scheme = self._comm_scheme()
        breakdown = scheme.time_model(d)
        if self.scheme is SchemeKind.TOPK_NAIVE:
            # Exact top-k selection on the full gradient — the Fig. 1
            # "Compression" bar that exceeds FF&BP.
            return exact_topk_gpu_time(d), breakdown.total
        if self.scheme is SchemeKind.MSTOPK_HIER:
            compression = breakdown.get(STEP_MSTOPK)
            return compression, breakdown.total - compression
        return 0.0, breakdown.total

    def t_communication_visible(self, t_comm_raw: float) -> float:
        cal = self.cal
        if self.scheme in (SchemeKind.DENSE_TREE, SchemeKind.DENSE_2DTAR):
            return max(0.0, t_comm_raw - cal.dense_overlap_fraction * self.t_ffbp())
        # Sparse paths: no overlap, plus pack/unpack overhead.
        return t_comm_raw + cal.sparse_pipeline_overhead

    def t_lars(self) -> float:
        pto = PTOCostModel(kernels_per_layer=self.profile.lars_kernels_per_layer)
        sizes = self.profile.layer_sizes
        if self.use_pto:
            # PTO's partitioned all-reduce crosses the same shared NIC,
            # so it sees the contended link too.
            return pto.pto_time(sizes, self.contended_network)
        return pto.serial_time(sizes)

    def t_io(self) -> float:
        return io_visible_time(
            self.resolution,
            self.local_batch,
            self.t_ffbp(),
            cached=self.use_datacache,
            workers=self.pipeline_workers,
            cal=self.cal,
            text=self.resolution == 0,
        )

    # -- composition ---------------------------------------------------------
    def breakdown(self) -> TimeBreakdown:
        """The Fig. 1 bars: visible time per component."""
        compression, comm_raw = self.t_compression()
        return TimeBreakdown(
            {
                "io": self.t_io(),
                "ff_bp": self.t_ffbp(),
                "compression": compression,
                "communication": self.comm_jitter * self.t_communication_visible(comm_raw),
                "lars": self.t_lars(),
                "sync": self.cal.sync_overhead,
            }
        )

    def iteration_time(self) -> float:
        return self.breakdown().total

    def throughput(self) -> float:
        """Global samples/s: ``b * P / t_iter``."""
        return self.local_batch * self.network.world_size / self.iteration_time()

    def scaling_efficiency(self, baseline_single_gpu: float | None = None) -> float:
        """Throughput / (P × single-GPU throughput), as in Table 3."""
        base = baseline_single_gpu if baseline_single_gpu is not None else self.gpu_rate
        return self.throughput() / (self.network.world_size * base)


__all__ = ["IterationModel", "SchemeKind", "io_visible_time"]
