"""Distributed synchronous SGD over the virtual cluster.

Implements paper Eq. (1) end to end: every virtual worker computes a
real gradient on its own shard of the data, the per-worker gradients are
fused into flat vectors (tensor fusion), pushed through the configured
:class:`~repro.comm.CommScheme` (which may sparsify, with error
feedback), averaged, and applied by the optimizer to the replicated
parameters.  Virtual communication time accumulates alongside, so one
run yields both a convergence curve and a simulated wall-clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.comm.base import CommScheme
from repro.comm.legacy import legacy_aggregate
from repro.optim.sgd import SGD
from repro.utils.partition import (
    flatten_tensors,
    round_robin_shards,
    unflatten_tensors,
)
from repro.utils.seeding import RandomState, new_rng


class TrainableModel(Protocol):
    """What the trainer needs from a model."""

    def init_params(self, rng: RandomState) -> dict[str, np.ndarray]:
        ...

    def loss_and_grad(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray], dict[str, float]]:
        ...


@dataclass
class TrainingReport:
    """Per-epoch records from one training run."""

    algorithm: str
    epoch_losses: list[float] = field(default_factory=list)
    epoch_metrics: list[float] = field(default_factory=list)
    val_metrics: list[float] = field(default_factory=list)
    comm_seconds: float = 0.0
    iterations: int = 0

    @property
    def final_val_metric(self) -> float:
        if not self.val_metrics:
            raise ValueError("no validation metrics recorded")
        return self.val_metrics[-1]


class DistributedTrainer:
    """Synchronous data-parallel trainer over ``P`` virtual workers.

    Parameters
    ----------
    model:
        A :class:`TrainableModel` (MLP / CNN / tiny Transformer).
    scheme:
        Gradient aggregation scheme; its topology fixes ``P``.
    optimizer:
        Optimizer applied to the replicated parameters after
        aggregation (default: momentum SGD).
    seed:
        Controls parameter init, shuffling, and MSTopK's random runs.
    timer:
        Optional :class:`repro.perf.hotpath.PhaseTimer` (anything with an
        ``add(phase, seconds)`` method).  When set, each step's
        ``forward_backward`` / ``fuse`` / ``aggregate`` / ``apply``
        phases are accumulated; when ``None`` the hot path pays no
        timing overhead.
    legacy_hotpath:
        Route ``train_step`` through the pre-vectorisation reference
        path (per-worker ``flatten_tensors`` + the per-rank loops of
        :func:`repro.comm.legacy.legacy_aggregate`).  Kept for parity
        tests and perf baselining; results are bit-identical.
    exec_backend:
        Optional :mod:`repro.exec` backend deciding where per-worker
        forward/backward runs.  ``None`` (and the ``serial`` backend)
        keep the inline loop; a :class:`~repro.exec.ProcessBackend`
        binds a shared-memory step engine that fans workers across real
        CPU cores — bit-identical to serial, pinned by
        ``tests/perf/test_vectorized_parity.py``.  Call :meth:`close`
        when done to release the engine's shared blocks.
    """

    def __init__(
        self,
        model: TrainableModel,
        scheme: CommScheme,
        optimizer: SGD | None = None,
        *,
        seed: int = 0,
        timer=None,
        legacy_hotpath: bool = False,
        exec_backend=None,
    ) -> None:
        self.model = model
        self.scheme = scheme
        self.optimizer = optimizer if optimizer is not None else SGD(lr=0.05)
        self.world_size = scheme.topology.world_size
        self._rng = new_rng(seed)
        self.params = model.init_params(new_rng(seed + 1))
        self._param_names = list(self.params.keys())
        self.timer = timer
        self.legacy_hotpath = legacy_hotpath
        # Fused-gradient layout, computed ONCE: every worker produces
        # gradients with the init-time shapes, so there is no reason to
        # re-derive the flat layout from ``flatten_tensors`` on every
        # step for every worker.
        self._grad_shapes: list[tuple[int, ...]] = [
            tuple(self.params[name].shape) for name in self._param_names
        ]
        sizes = [int(np.prod(shape)) if shape else 1 for shape in self._grad_shapes]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        self.grad_dim = int(offsets[-1])
        self._grad_slices: list[slice] = [
            slice(int(offsets[i]), int(offsets[i + 1])) for i in range(len(sizes))
        ]
        # Preallocated (W, d) fusion buffer, reused every step: rows are
        # per-worker fused gradients, handed to the scheme as one matrix.
        self._grad_matrix = np.zeros((self.world_size, self.grad_dim))
        # Worker-fused compute: models that can run all workers' batches
        # through one blocked tape pass advertise loss_and_grad_workers.
        self._fused_compute = hasattr(model, "loss_and_grad_workers")
        # Execution engine: a non-serial backend replaces the fusion
        # buffer with a shared-memory block and fans the per-worker
        # compute across its pool (the engine rebinds _grad_matrix).
        self._engine = (
            exec_backend.step_engine(self) if exec_backend is not None else None
        )

    # ------------------------------------------------------------------
    def _shard_data(
        self, x: np.ndarray, y: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Round-robin shard so every worker sees every class mix."""
        return round_robin_shards(x, y, self.world_size)

    def train_step(
        self, batches: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[float, dict[str, float]]:
        """One synchronous step given one batch per worker.

        Hot path: each worker's gradients are written straight into the
        preallocated ``(W, d)`` fusion buffer (no per-step concatenation
        churn) and the scheme aggregates the matrix in one call.
        """
        if len(batches) != self.world_size:
            raise ValueError(
                f"need {self.world_size} worker batches, got {len(batches)}"
            )
        if self.legacy_hotpath:
            return self._train_step_legacy(batches)

        if self._engine is not None:
            # The engine fills the (shared) fusion buffer off-process and
            # returns losses/metrics in row order — the same accumulation
            # order as the inline loops below.
            losses, metric_sums = self._engine.run_step(self, batches)
            return self._aggregate_and_apply(losses, metric_sums)

        if self._fused_compute and self._fusable_batches(batches):
            return self._train_step_fused(batches)

        timer = self.timer
        tick = time.perf_counter
        mat = self._grad_matrix
        losses: list[float] = []
        metric_sums: dict[str, float] = {}
        for row, (bx, by) in enumerate(batches):
            if timer is not None:
                t0 = tick()
            loss, grads, metrics = self.model.loss_and_grad(self.params, bx, by)
            if timer is not None:
                t1 = tick()
                timer.add("forward_backward", t1 - t0)
            out_row = mat[row]
            for name, sl in zip(self._param_names, self._grad_slices):
                out_row[sl] = grads[name].reshape(-1)
            if timer is not None:
                timer.add("fuse", tick() - t1)
            losses.append(loss)
            for key, value in metrics.items():
                metric_sums[key] = metric_sums.get(key, 0.0) + value

        loss_mean, metrics = self._aggregate_and_apply(losses, metric_sums)
        return loss_mean, metrics

    def _aggregate_and_apply(
        self, losses: Sequence[float], metric_sums: dict[str, float]
    ) -> tuple[float, dict[str, float]]:
        """Shared step tail: aggregate the fusion buffer, average, apply."""
        timer = self.timer
        tick = time.perf_counter
        if timer is not None:
            t0 = tick()
        result = self.scheme.aggregate(self._grad_matrix, rng=self._rng)
        if timer is not None:
            t1 = tick()
            timer.add("aggregate", t1 - t0)
        mean_flat = result.outputs[0] / self.world_size
        mean_grads = {
            name: mean_flat[sl].reshape(shape)
            for name, sl, shape in zip(
                self._param_names, self._grad_slices, self._grad_shapes
            )
        }
        self.optimizer.step(self.params, mean_grads)
        if timer is not None:
            timer.add("apply", tick() - t1)

        metrics = {k: v / self.world_size for k, v in metric_sums.items()}
        return float(np.mean(losses)), metrics | {"comm_seconds": result.time}

    @staticmethod
    def _fusable_batches(batches: Sequence[tuple[np.ndarray, np.ndarray]]) -> bool:
        """Whether the worker-fused path can take these batches.

        Requires uniform shapes (they stack into one ``(W, B, ...)``
        block) and no padded labels — the worker-blocked cross-entropy
        does not support the ``label < 0`` padding convention the
        sequential per-worker path accepts.
        """
        bx0, by0 = batches[0]
        shape_x = np.shape(bx0)
        shape_y = np.shape(by0)
        if not all(
            np.shape(bx) == shape_x and np.shape(by) == shape_y
            for bx, by in batches[1:]
        ):
            return False
        for _, by in batches:
            labels = np.asarray(by)
            if labels.size and np.issubdtype(labels.dtype, np.number) and labels.min() < 0:
                return False
        return True

    def _train_step_fused(
        self, batches: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[float, dict[str, float]]:
        """Worker-fused step: one tape pass for all workers' batches.

        Models exposing ``loss_and_grad_workers`` compute every worker's
        gradients in a single blocked forward/backward; the per-worker
        rows land directly in the ``(W, d)`` fusion buffer as one
        vectorised write per parameter.
        """
        timer = self.timer
        tick = time.perf_counter
        mat = self._grad_matrix
        if timer is not None:
            t0 = tick()
        xs = np.stack([bx for bx, _ in batches])
        ys = np.stack([by for _, by in batches])
        losses, grads, metrics_list = self.model.loss_and_grad_workers(
            self.params, xs, ys
        )
        if timer is not None:
            t1 = tick()
            timer.add("forward_backward", t1 - t0)
        for name, sl in zip(self._param_names, self._grad_slices):
            mat[:, sl] = grads[name].reshape(self.world_size, -1)
        if timer is not None:
            timer.add("fuse", tick() - t1)

        metric_sums: dict[str, float] = {}
        for metrics in metrics_list:
            for key, value in metrics.items():
                metric_sums[key] = metric_sums.get(key, 0.0) + value
        return self._aggregate_and_apply([float(v) for v in losses], metric_sums)

    def _train_step_legacy(
        self, batches: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[float, dict[str, float]]:
        """The pre-vectorisation step: per-worker flatten + rank loops."""
        worker_flat: list[np.ndarray] = []
        losses: list[float] = []
        metric_sums: dict[str, float] = {}
        shapes = None
        for bx, by in batches:
            loss, grads, metrics = self.model.loss_and_grad(self.params, bx, by)
            flat, shapes = flatten_tensors([grads[k] for k in self._param_names])
            worker_flat.append(flat)
            losses.append(loss)
            for key, value in metrics.items():
                metric_sums[key] = metric_sums.get(key, 0.0) + value

        result = legacy_aggregate(self.scheme, worker_flat, rng=self._rng)
        mean_flat = result.outputs[0] / self.world_size
        assert shapes is not None
        mean_grads = dict(
            zip(self._param_names, unflatten_tensors(mean_flat, shapes))
        )
        self.optimizer.step(self.params, mean_grads)

        metrics = {k: v / self.world_size for k, v in metric_sums.items()}
        return float(np.mean(losses)), metrics | {"comm_seconds": result.time}

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int,
        local_batch: int,
        val_x: np.ndarray | None = None,
        val_y: np.ndarray | None = None,
        evaluate=None,
        algorithm_name: str | None = None,
    ) -> TrainingReport:
        """Run ``epochs`` of synchronous training.

        ``evaluate(params, val_x, val_y) -> float`` supplies the
        validation metric (top-k accuracy / token accuracy); defaults to
        the model's ``evaluate`` if present.
        """
        if epochs < 1 or local_batch < 1:
            raise ValueError("epochs and local_batch must be >= 1")
        if evaluate is None:
            evaluate = getattr(self.model, "evaluate", None)
        report = TrainingReport(algorithm=algorithm_name or self.scheme.name)
        shards = self._shard_data(np.asarray(x), np.asarray(y))
        steps = max(1, min(len(sx) for sx, _ in shards) // local_batch)

        for _ in range(epochs):
            # Per-epoch reshuffle inside each shard.
            epoch_shards = []
            for sx, sy in shards:
                order = self._rng.permutation(len(sx))
                epoch_shards.append((sx[order], sy[order]))

            epoch_loss = 0.0
            epoch_metric = 0.0
            for step in range(steps):
                batches = [
                    (
                        sx[step * local_batch : (step + 1) * local_batch],
                        sy[step * local_batch : (step + 1) * local_batch],
                    )
                    for sx, sy in epoch_shards
                ]
                loss, metrics = self.train_step(batches)
                epoch_loss += loss
                epoch_metric += metrics.get(
                    "accuracy", metrics.get("token_accuracy", 0.0)
                )
                report.comm_seconds += metrics["comm_seconds"]
                report.iterations += 1
            report.epoch_losses.append(epoch_loss / steps)
            report.epoch_metrics.append(epoch_metric / steps)
            if val_x is not None and val_y is not None and evaluate is not None:
                report.val_metrics.append(float(evaluate(self.params, val_x, val_y)))
        return report

    def close(self) -> None:
        """Release the execution engine (shared memory + worker bindings).

        Serial trainers are a no-op; the trainer itself stays usable
        afterwards (subsequent steps run inline).
        """
        engine, self._engine = self._engine, None
        if engine is not None:
            engine.close()


__all__ = ["DistributedTrainer", "TrainingReport", "TrainableModel"]
