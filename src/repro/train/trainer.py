"""Distributed synchronous SGD over the virtual cluster.

Implements paper Eq. (1) end to end: every virtual worker computes a
real gradient on its own shard of the data, the per-worker gradients are
fused into flat vectors (tensor fusion), pushed through the configured
:class:`~repro.comm.CommScheme` (which may sparsify, with error
feedback), averaged, and applied by the optimizer to the replicated
parameters.  Virtual communication time accumulates alongside, so one
run yields both a convergence curve and a simulated wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.comm.base import CommScheme
from repro.optim.sgd import SGD
from repro.utils.partition import (
    flatten_tensors,
    round_robin_shards,
    unflatten_tensors,
)
from repro.utils.seeding import RandomState, new_rng


class TrainableModel(Protocol):
    """What the trainer needs from a model."""

    def init_params(self, rng: RandomState) -> dict[str, np.ndarray]:
        ...

    def loss_and_grad(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> tuple[float, dict[str, np.ndarray], dict[str, float]]:
        ...


@dataclass
class TrainingReport:
    """Per-epoch records from one training run."""

    algorithm: str
    epoch_losses: list[float] = field(default_factory=list)
    epoch_metrics: list[float] = field(default_factory=list)
    val_metrics: list[float] = field(default_factory=list)
    comm_seconds: float = 0.0
    iterations: int = 0

    @property
    def final_val_metric(self) -> float:
        if not self.val_metrics:
            raise ValueError("no validation metrics recorded")
        return self.val_metrics[-1]


class DistributedTrainer:
    """Synchronous data-parallel trainer over ``P`` virtual workers.

    Parameters
    ----------
    model:
        A :class:`TrainableModel` (MLP / CNN / tiny Transformer).
    scheme:
        Gradient aggregation scheme; its topology fixes ``P``.
    optimizer:
        Optimizer applied to the replicated parameters after
        aggregation (default: momentum SGD).
    seed:
        Controls parameter init, shuffling, and MSTopK's random runs.
    """

    def __init__(
        self,
        model: TrainableModel,
        scheme: CommScheme,
        optimizer: SGD | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.scheme = scheme
        self.optimizer = optimizer if optimizer is not None else SGD(lr=0.05)
        self.world_size = scheme.topology.world_size
        self._rng = new_rng(seed)
        self.params = model.init_params(new_rng(seed + 1))
        self._param_names = list(self.params.keys())

    # ------------------------------------------------------------------
    def _shard_data(
        self, x: np.ndarray, y: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Round-robin shard so every worker sees every class mix."""
        return round_robin_shards(x, y, self.world_size)

    def train_step(
        self, batches: Sequence[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[float, dict[str, float]]:
        """One synchronous step given one batch per worker."""
        if len(batches) != self.world_size:
            raise ValueError(
                f"need {self.world_size} worker batches, got {len(batches)}"
            )
        worker_flat: list[np.ndarray] = []
        losses: list[float] = []
        metric_sums: dict[str, float] = {}
        shapes = None
        for bx, by in batches:
            loss, grads, metrics = self.model.loss_and_grad(self.params, bx, by)
            flat, shapes = flatten_tensors([grads[k] for k in self._param_names])
            worker_flat.append(flat)
            losses.append(loss)
            for key, value in metrics.items():
                metric_sums[key] = metric_sums.get(key, 0.0) + value

        result = self.scheme.aggregate(worker_flat, rng=self._rng)
        mean_flat = result.outputs[0] / self.world_size
        assert shapes is not None
        mean_grads = dict(
            zip(self._param_names, unflatten_tensors(mean_flat, shapes))
        )
        self.optimizer.step(self.params, mean_grads)

        metrics = {k: v / self.world_size for k, v in metric_sums.items()}
        return float(np.mean(losses)), metrics | {"comm_seconds": result.time}

    def train(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int,
        local_batch: int,
        val_x: np.ndarray | None = None,
        val_y: np.ndarray | None = None,
        evaluate=None,
        algorithm_name: str | None = None,
    ) -> TrainingReport:
        """Run ``epochs`` of synchronous training.

        ``evaluate(params, val_x, val_y) -> float`` supplies the
        validation metric (top-k accuracy / token accuracy); defaults to
        the model's ``evaluate`` if present.
        """
        if epochs < 1 or local_batch < 1:
            raise ValueError("epochs and local_batch must be >= 1")
        if evaluate is None:
            evaluate = getattr(self.model, "evaluate", None)
        report = TrainingReport(algorithm=algorithm_name or self.scheme.name)
        shards = self._shard_data(np.asarray(x), np.asarray(y))
        steps = max(1, min(len(sx) for sx, _ in shards) // local_batch)

        for _ in range(epochs):
            # Per-epoch reshuffle inside each shard.
            epoch_shards = []
            for sx, sy in shards:
                order = self._rng.permutation(len(sx))
                epoch_shards.append((sx[order], sy[order]))

            epoch_loss = 0.0
            epoch_metric = 0.0
            for step in range(steps):
                batches = [
                    (
                        sx[step * local_batch : (step + 1) * local_batch],
                        sy[step * local_batch : (step + 1) * local_batch],
                    )
                    for sx, sy in epoch_shards
                ]
                loss, metrics = self.train_step(batches)
                epoch_loss += loss
                epoch_metric += metrics.get(
                    "accuracy", metrics.get("token_accuracy", 0.0)
                )
                report.comm_seconds += metrics["comm_seconds"]
                report.iterations += 1
            report.epoch_losses.append(epoch_loss / steps)
            report.epoch_metrics.append(epoch_metric / steps)
            if val_x is not None and val_y is not None and evaluate is not None:
                report.val_metrics.append(float(evaluate(self.params, val_x, val_y)))
        return report


__all__ = ["DistributedTrainer", "TrainingReport", "TrainableModel"]
