"""Checkpointing for the distributed trainer.

Long DAWNBench-style runs checkpoint every epoch (the per-epoch overhead
in :mod:`repro.perf.calibration` accounts for it); this module provides
the actual mechanism for the NumPy trainer: parameters, optimizer
momentum, and the communication scheme's error-feedback residuals all
round-trip through one ``.npz`` file, so a resumed sparsified run is
bit-identical to an uninterrupted one (tested).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.optim.sgd import SGD
from repro.train.trainer import DistributedTrainer

_FORMAT_VERSION = 1


def save_checkpoint(trainer: DistributedTrainer, path: str | pathlib.Path) -> pathlib.Path:
    """Serialise trainer state (params + momentum + EF residuals)."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    for name, value in trainer.params.items():
        arrays[f"param/{name}"] = value
    optimizer = trainer.optimizer
    if isinstance(optimizer, SGD):
        for name, velocity in optimizer._velocity.items():
            arrays[f"momentum/{name}"] = velocity
    ef = getattr(trainer.scheme, "ef", None)
    ef_keys: list[str] = []
    if ef is not None:
        for key in ef.keys():
            residual = ef.residual(key)
            if residual is not None:
                slot = f"residual/{key}"
                arrays[slot] = residual
                ef_keys.append(str(key))
    meta = {
        "version": _FORMAT_VERSION,
        "world_size": trainer.world_size,
        "scheme": trainer.scheme.name,
        "ef_keys": ef_keys,
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)
    # np.savez appends .npz when missing.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(trainer: DistributedTrainer, path: str | pathlib.Path) -> dict:
    """Restore trainer state in place; returns the checkpoint metadata."""
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta["version"] != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {meta['version']}")
        if meta["world_size"] != trainer.world_size:
            raise ValueError(
                f"checkpoint was taken at world size {meta['world_size']}, "
                f"trainer has {trainer.world_size}"
            )
        for key in data.files:
            if key.startswith("param/"):
                name = key[len("param/"):]
                if name not in trainer.params:
                    raise KeyError(f"checkpoint parameter {name!r} unknown to model")
                if data[key].shape != trainer.params[name].shape:
                    raise ValueError(
                        f"checkpoint parameter {name!r} has shape "
                        f"{data[key].shape}, model expects "
                        f"{trainer.params[name].shape}"
                    )
                trainer.params[name] = data[key].copy()
            elif key.startswith("momentum/"):
                name = key[len("momentum/"):]
                if isinstance(trainer.optimizer, SGD):
                    trainer.optimizer._velocity[name] = data[key].copy()
            elif key.startswith("residual/"):
                ef = getattr(trainer.scheme, "ef", None)
                if ef is not None:
                    raw_key = key[len("residual/"):]
                    # EF keys are worker ranks (ints) in the built-in
                    # schemes; fall back to the string form otherwise.
                    ef_key: object = int(raw_key) if raw_key.lstrip("-").isdigit() else raw_key
                    ef._residuals[ef_key] = data[key].copy()
    return meta


__all__ = ["save_checkpoint", "load_checkpoint"]
