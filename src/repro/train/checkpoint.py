"""Checkpointing for the distributed trainer.

Long DAWNBench-style runs checkpoint every epoch (the per-epoch overhead
in :mod:`repro.perf.calibration` accounts for it); this module provides
the actual mechanism for the NumPy trainer: parameters, optimizer
momentum, the communication scheme's error-feedback residuals, *and* the
trainer's RNG state all round-trip through one ``.npz`` file, so a
resumed sparsified run is bit-identical to an uninterrupted one
(tested) — including the data-shuffle and MSTopK sampling streams.

Elastic restore: :func:`load_checkpoint` with ``strict_world=False``
accepts a checkpoint taken at a *different* world size (the elastic
trainer rescales after revocations).  Parameters, momentum, and RNG
state restore normally — they are world-size independent — while the
rank-keyed error-feedback residuals are returned raw in
``meta["residuals"]`` for the caller to remap (see
:func:`repro.elastic.membership.fold_residuals`).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.optim.sgd import SGD
from repro.train.trainer import DistributedTrainer

#: Version 2 adds the trainer RNG state; version-1 checkpoints (no RNG)
#: still load.
_FORMAT_VERSION = 2


def save_checkpoint(trainer: DistributedTrainer, path: str | pathlib.Path) -> pathlib.Path:
    """Serialise trainer state (params + momentum + EF residuals + RNG)."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    for name, value in trainer.params.items():
        arrays[f"param/{name}"] = value
    optimizer = trainer.optimizer
    if isinstance(optimizer, SGD):
        for name, velocity in optimizer._velocity.items():
            arrays[f"momentum/{name}"] = velocity
    ef = getattr(trainer.scheme, "ef", None)
    ef_keys: list[str] = []
    if ef is not None:
        for key in ef.keys():
            residual = ef.residual(key)
            if residual is not None:
                slot = f"residual/{key}"
                arrays[slot] = residual
                ef_keys.append(str(key))
    meta = {
        "version": _FORMAT_VERSION,
        "world_size": trainer.world_size,
        "num_nodes": trainer.scheme.topology.num_nodes,
        "gpus_per_node": trainer.scheme.topology.gpus_per_node,
        "scheme": trainer.scheme.name,
        "ef_keys": ef_keys,
        # PCG64 state is a nest of (big) ints and strings — JSON-safe.
        "rng_state": trainer._rng.bit_generator.state,
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)
    # np.savez appends .npz when missing.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    trainer: DistributedTrainer,
    path: str | pathlib.Path,
    *,
    strict_world: bool = True,
) -> dict:
    """Restore trainer state in place; returns the checkpoint metadata.

    With ``strict_world=True`` (default) a world-size mismatch raises.
    With ``strict_world=False`` and a mismatched world size, the
    world-size-independent state (params, momentum, RNG) restores
    normally and the rank-keyed residuals are *not* loaded into the
    scheme; they come back raw in ``meta["residuals"]`` (``{rank:
    array}``) for the caller to fold onto the new topology.
    """
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta["version"] not in (1, _FORMAT_VERSION):
            raise ValueError(f"unsupported checkpoint version {meta['version']}")
        world_matches = meta["world_size"] == trainer.world_size
        if strict_world and not world_matches:
            raise ValueError(
                f"checkpoint was taken at world size {meta['world_size']}, "
                f"trainer has {trainer.world_size}"
            )
        # Restoring must reproduce the checkpointed state exactly:
        # momentum/residual entries that post-date the checkpoint (e.g.
        # rolling back a trainer that kept stepping) are cleared before
        # the saved ones are loaded back in.
        if isinstance(trainer.optimizer, SGD):
            trainer.optimizer._velocity.clear()
        ef = getattr(trainer.scheme, "ef", None)
        if ef is not None and world_matches:
            ef._residuals.clear()
        orphan_residuals: dict[object, np.ndarray] = {}
        for key in data.files:
            if key.startswith("param/"):
                name = key[len("param/"):]
                if name not in trainer.params:
                    raise KeyError(f"checkpoint parameter {name!r} unknown to model")
                if data[key].shape != trainer.params[name].shape:
                    raise ValueError(
                        f"checkpoint parameter {name!r} has shape "
                        f"{data[key].shape}, model expects "
                        f"{trainer.params[name].shape}"
                    )
                trainer.params[name] = data[key].copy()
            elif key.startswith("momentum/"):
                name = key[len("momentum/"):]
                if isinstance(trainer.optimizer, SGD):
                    trainer.optimizer._velocity[name] = data[key].copy()
            elif key.startswith("residual/"):
                raw_key = key[len("residual/"):]
                # EF keys are worker ranks (ints) in the built-in
                # schemes; fall back to the string form otherwise.
                ef_key: object = int(raw_key) if raw_key.lstrip("-").isdigit() else raw_key
                if not world_matches:
                    orphan_residuals[ef_key] = data[key].copy()
                    continue
                if ef is not None:
                    ef._residuals[ef_key] = data[key].copy()
        if orphan_residuals:
            meta["residuals"] = orphan_residuals
    rng_state = meta.get("rng_state")
    if rng_state is not None:
        trainer._rng.bit_generator.state = rng_state
    return meta


__all__ = ["save_checkpoint", "load_checkpoint"]
