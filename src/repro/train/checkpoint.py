"""Checkpointing for the distributed trainer.

Long DAWNBench-style runs checkpoint every epoch (the per-epoch overhead
in :mod:`repro.perf.calibration` accounts for it); this module provides
the actual mechanism for the NumPy trainer: parameters, optimizer
momentum, the communication scheme's error-feedback residuals, *and* the
trainer's RNG state all round-trip through one ``.npz`` file, so a
resumed sparsified run is bit-identical to an uninterrupted one
(tested) — including the data-shuffle and MSTopK sampling streams.

Elastic restore: :func:`load_checkpoint` with ``strict_world=False``
accepts a checkpoint taken at a *different* world size (the elastic
trainer rescales after revocations).  Parameters, momentum, and RNG
state restore normally — they are world-size independent — while the
rank-keyed error-feedback residuals are returned raw in
``meta["residuals"]`` for the caller to remap (see
:func:`repro.elastic.membership.fold_residuals`).

Integrity: every saved record carries a CRC32 in the metadata, and
:func:`load_checkpoint` verifies the whole file *before* touching any
trainer state.  Damage of any kind — flipped bytes, truncation, a
mangled archive — surfaces as one typed :class:`CheckpointCorruptError`
instead of an arbitrary downstream ``zlib``/``json``/shape error, so
recovery code (``repro.faults``' checkpoint-corrupt drill, the elastic
trainer's rollback fallback) can catch corruption and fall back to an
older checkpoint without masking real bugs.
"""

from __future__ import annotations

import json
import pathlib
import zlib

import numpy as np

from repro.optim.sgd import SGD
from repro.train.trainer import DistributedTrainer

#: Version 3 adds per-record CRC32 checksums; version 2 added the
#: trainer RNG state.  Checkpoints from versions 1 and 2 still load
#: (without checksum verification — they carry none).
_FORMAT_VERSION = 3


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file is damaged (bad archive, checksum mismatch).

    Distinct from the ``ValueError``s a *valid* checkpoint can raise
    (wrong world size, unknown version, shape mismatch): those mean the
    checkpoint does not fit this trainer; this means the bytes on disk
    are not the bytes that were written.
    """


def save_checkpoint(trainer: DistributedTrainer, path: str | pathlib.Path) -> pathlib.Path:
    """Serialise trainer state (params + momentum + EF residuals + RNG)."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    for name, value in trainer.params.items():
        arrays[f"param/{name}"] = value
    optimizer = trainer.optimizer
    if isinstance(optimizer, SGD):
        for name, velocity in optimizer._velocity.items():
            arrays[f"momentum/{name}"] = velocity
    ef = getattr(trainer.scheme, "ef", None)
    ef_keys: list[str] = []
    if ef is not None:
        for key in ef.keys():
            residual = ef.residual(key)
            if residual is not None:
                slot = f"residual/{key}"
                arrays[slot] = residual
                ef_keys.append(str(key))
    meta = {
        "version": _FORMAT_VERSION,
        "world_size": trainer.world_size,
        "num_nodes": trainer.scheme.topology.num_nodes,
        "gpus_per_node": trainer.scheme.topology.gpus_per_node,
        "scheme": trainer.scheme.name,
        "ef_keys": ef_keys,
        # PCG64 state is a nest of (big) ints and strings — JSON-safe.
        "rng_state": trainer._rng.bit_generator.state,
        "checksums": {key: _crc32(value) for key, value in arrays.items()},
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(path, **arrays)
    # np.savez appends .npz when missing.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _crc32(value: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(value).tobytes())


def _read_verified(path: pathlib.Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read and integrity-check a checkpoint: ``(meta, arrays)``.

    Every record is read (exercising the archive's own CRCs) and, for
    version >= 3 checkpoints, verified against the stored checksums.
    Any damage raises :class:`CheckpointCorruptError`; a missing file
    keeps raising ``FileNotFoundError`` (absence is not corruption).
    """
    try:
        with np.load(path) as data:
            if "__meta__" not in data.files:
                raise CheckpointCorruptError(
                    f"checkpoint {path} has no __meta__ record"
                )
            meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
            arrays = {key: data[key] for key in data.files if key != "__meta__"}
    except (FileNotFoundError, CheckpointCorruptError):
        raise
    except Exception as exc:  # zip/zlib/json/np damage — all mean corruption
        raise CheckpointCorruptError(
            f"checkpoint {path} is unreadable: {exc}"
        ) from exc
    if not isinstance(meta, dict) or "version" not in meta or "world_size" not in meta:
        raise CheckpointCorruptError(
            f"checkpoint {path} metadata lacks version/world_size"
        )
    checksums = meta.get("checksums")
    if checksums is not None:
        missing = set(checksums) - set(arrays)
        extra = set(arrays) - set(checksums)
        if missing or extra:
            raise CheckpointCorruptError(
                f"checkpoint {path} record set does not match its manifest "
                f"(missing: {sorted(missing)}, unexpected: {sorted(extra)})"
            )
        for key in sorted(arrays):
            actual = _crc32(arrays[key])
            if actual != checksums[key]:
                raise CheckpointCorruptError(
                    f"checkpoint {path} record {key!r} failed its checksum "
                    f"(crc32 {actual:#010x} != {checksums[key]:#010x})"
                )
    return meta, arrays


def load_checkpoint(
    trainer: DistributedTrainer,
    path: str | pathlib.Path,
    *,
    strict_world: bool = True,
) -> dict:
    """Restore trainer state in place; returns the checkpoint metadata.

    With ``strict_world=True`` (default) a world-size mismatch raises.
    With ``strict_world=False`` and a mismatched world size, the
    world-size-independent state (params, momentum, RNG) restores
    normally and the rank-keyed residuals are *not* loaded into the
    scheme; they come back raw in ``meta["residuals"]`` (``{rank:
    array}``) for the caller to fold onto the new topology.

    The file is integrity-checked *before* any trainer state is touched;
    a damaged file raises :class:`CheckpointCorruptError` and leaves the
    trainer exactly as it was.
    """
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta, arrays = _read_verified(path)
    if meta["version"] not in (1, 2, _FORMAT_VERSION):
        raise ValueError(f"unsupported checkpoint version {meta['version']}")
    world_matches = meta["world_size"] == trainer.world_size
    if strict_world and not world_matches:
        raise ValueError(
            f"checkpoint was taken at world size {meta['world_size']}, "
            f"trainer has {trainer.world_size}"
        )
    # Restoring must reproduce the checkpointed state exactly:
    # momentum/residual entries that post-date the checkpoint (e.g.
    # rolling back a trainer that kept stepping) are cleared before
    # the saved ones are loaded back in.
    if isinstance(trainer.optimizer, SGD):
        trainer.optimizer._velocity.clear()
    ef = getattr(trainer.scheme, "ef", None)
    if ef is not None and world_matches:
        ef._residuals.clear()
    orphan_residuals: dict[object, np.ndarray] = {}
    for key, value in arrays.items():
        if key.startswith("param/"):
            name = key[len("param/"):]
            if name not in trainer.params:
                raise KeyError(f"checkpoint parameter {name!r} unknown to model")
            if value.shape != trainer.params[name].shape:
                raise ValueError(
                    f"checkpoint parameter {name!r} has shape "
                    f"{value.shape}, model expects "
                    f"{trainer.params[name].shape}"
                )
            trainer.params[name] = value.copy()
        elif key.startswith("momentum/"):
            name = key[len("momentum/"):]
            if isinstance(trainer.optimizer, SGD):
                trainer.optimizer._velocity[name] = value.copy()
        elif key.startswith("residual/"):
            raw_key = key[len("residual/"):]
            # EF keys are worker ranks (ints) in the built-in
            # schemes; fall back to the string form otherwise.
            ef_key: object = int(raw_key) if raw_key.lstrip("-").isdigit() else raw_key
            if not world_matches:
                orphan_residuals[ef_key] = value.copy()
                continue
            if ef is not None:
                ef._residuals[ef_key] = value.copy()
    if orphan_residuals:
        meta["residuals"] = orphan_residuals
    rng_state = meta.get("rng_state")
    if rng_state is not None:
        trainer._rng.bit_generator.state = rng_state
    return meta


__all__ = ["CheckpointCorruptError", "save_checkpoint", "load_checkpoint"]
