"""Training-algorithm factory: the three SGD variants the paper compares.

* **Dense-SGD** — exact dense aggregation (TreeAR in Fig. 1 / Table 3;
  2DTAR-SGD is the stronger dense variant);
* **TopK-SGD** — flat exact top-k + All-Gather with error feedback
  (Lin et al. 2018 / Renggli et al. 2019);
* **MSTopK-SGD** — the paper's system: hierarchical MSTopK (Algorithm 2)
  with shard-level error feedback.
"""

from __future__ import annotations

from repro.cluster.network import NetworkModel
from repro.comm.base import CommScheme
from repro.comm.dense import RingAllReduce, Torus2DAllReduce, TreeAllReduce
from repro.comm.gtopk import GlobalTopK
from repro.comm.hitopkcomm import HiTopKComm
from repro.comm.naive_allgather import NaiveAllGather
from repro.compression.exact_topk import ExactTopK
from repro.compression.mstopk import MSTopK

#: Canonical algorithm names used by the convergence harness (Fig. 10).
TRAINING_ALGORITHMS = ("dense", "topk", "mstopk")


def make_scheme(
    name: str,
    network: NetworkModel,
    *,
    density: float = 0.001,
    wire_bytes: int = 4,
    n_samplings: int = 30,
) -> CommScheme:
    """Build a :class:`CommScheme` by algorithm name.

    Accepted names: ``dense`` / ``dense-tree`` (TreeAR), ``dense-ring``,
    ``2dtar``, ``topk`` (NaiveAG + exact top-k + EF), ``gtopk`` (global
    top-k over a binomial merge tree + EF), ``mstopk`` (HiTopKComm +
    MSTopK + EF), ``naiveag-mstopk`` (flat All-Gather with the MSTopK
    operator — an ablation separating the operator from the hierarchy).
    """
    key = name.lower()
    if key in ("dense", "dense-tree", "tree", "trear"):
        return TreeAllReduce(network, wire_bytes=wire_bytes)
    if key in ("dense-ring", "ring"):
        return RingAllReduce(network, wire_bytes=wire_bytes)
    if key in ("2dtar", "torus", "dense-2dtar"):
        return Torus2DAllReduce(network, wire_bytes=wire_bytes)
    if key in ("topk", "topk-sgd", "naiveag"):
        return NaiveAllGather(
            network,
            density=density,
            compressor=ExactTopK(),
            error_feedback=True,
        )
    if key in ("gtopk", "gtopk-sgd", "globaltopk"):
        return GlobalTopK(
            network,
            density=density,
            error_feedback=True,
        )
    if key in ("mstopk", "mstopk-sgd", "hitopk", "hitopkcomm"):
        return HiTopKComm(
            network,
            density=density,
            compressor=MSTopK(n_samplings=n_samplings),
            error_feedback=True,
        )
    if key in ("naiveag-mstopk",):
        return NaiveAllGather(
            network,
            density=density,
            compressor=MSTopK(n_samplings=n_samplings),
            error_feedback=True,
        )
    raise KeyError(
        f"unknown training algorithm {name!r}; try one of "
        "dense/dense-ring/2dtar/topk/gtopk/mstopk/naiveag-mstopk"
    )


__all__ = ["make_scheme", "TRAINING_ALGORITHMS"]
