"""Training-algorithm factory — deprecated shim over :mod:`repro.api`.

The three SGD variants the paper compares (Dense-SGD, TopK-SGD,
MSTopK-SGD) and every other scheme now live in the
:data:`repro.api.registry.SCHEMES` registry; :func:`make_scheme` keeps
old call-sites working (same names, same defaults, same objects) while
steering new code to :func:`repro.api.build_scheme`.
"""

from __future__ import annotations

import warnings

from repro.api.registry import CONVERGENCE_ALGORITHMS, build_scheme
from repro.cluster.network import NetworkModel
from repro.comm.base import CommScheme

def __getattr__(name: str):
    # Deprecated constant, served on access so importing this module
    # stays silent: the canonical algorithm triple used by the
    # convergence harness (Fig. 10) now lives in the registry module.
    if name == "TRAINING_ALGORITHMS":
        warnings.warn(
            "repro.train.algorithms.TRAINING_ALGORITHMS is deprecated; "
            "use repro.api.CONVERGENCE_ALGORITHMS instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return CONVERGENCE_ALGORITHMS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def make_scheme(
    name: str,
    network: NetworkModel,
    *,
    density: float = 0.001,
    wire_bytes: int = 4,
    n_samplings: int = 30,
) -> CommScheme:
    """Build a :class:`CommScheme` by algorithm name.

    .. deprecated::
        Use :func:`repro.api.build_scheme` (same names and defaults,
        plus registry discovery and custom-compressor support).
    """
    warnings.warn(
        "repro.train.algorithms.make_scheme is deprecated; "
        "use repro.api.build_scheme instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_scheme(
        name,
        network,
        density=density,
        wire_bytes=wire_bytes,
        n_samplings=n_samplings,
    )


__all__ = ["make_scheme", "TRAINING_ALGORITHMS"]
