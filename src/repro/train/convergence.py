"""The convergence experiment (paper Fig. 10 and Table 2).

Trains the *same* model from the *same* initialisation under the three
algorithms — Dense-SGD, TopK-SGD (exact top-k, flat All-Gather, error
feedback) and MSTopK-SGD (Algorithm 2 with shard-level error feedback) —
and records per-epoch validation metrics.  The paper's finding to
reproduce: both sparsified variants track the dense run with a small
final-accuracy gap, and MSTopK-SGD is not worse than TopK-SGD on CNNs
(its intra-node aggregation is dense, §5.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cloud_presets import make_cluster
from repro.models.nn.convnet import SmallConvNet
from repro.models.nn.mlp import MLPClassifier
from repro.models.nn.transformer import TinyTransformer, make_copy_task
from repro.optim.sgd import SGD
from repro.train.algorithms import TRAINING_ALGORITHMS, make_scheme
from repro.train.synthetic import (
    make_spiral_classification,
    make_synthetic_images,
    train_val_split,
)
from repro.train.trainer import DistributedTrainer, TrainingReport
from repro.utils.seeding import new_rng


@dataclass
class EpochRecord:
    """One (epoch, metric) point on a convergence curve."""

    epoch: int
    metric: float


@dataclass
class ConvergenceResult:
    """All algorithms' curves for one workload."""

    workload: str
    metric_name: str
    reports: dict[str, TrainingReport] = field(default_factory=dict)

    def curve(self, algorithm: str) -> list[EpochRecord]:
        report = self.reports[algorithm]
        return [EpochRecord(i, m) for i, m in enumerate(report.val_metrics)]

    def final(self, algorithm: str) -> float:
        return self.reports[algorithm].final_val_metric

    def summary_rows(self) -> list[tuple[str, float]]:
        return [(alg, self.final(alg)) for alg in self.reports]


#: Workload registry: name -> (builder, metric label).  "resnet" is an
#: extension workload (residual CNN) not part of the paper analogues.
_WORKLOADS = ("mlp", "cnn", "transformer")
_EXTRA_WORKLOADS = ("resnet",)

#: Per-workload hyperparameter overrides.  The attention model needs a
#: hotter rate to move in 15 epochs and a higher density for the
#: sparsified runs (its ~7k parameters make ρ·d/n per shard tiny
#: otherwise); the paper's Transformer likewise shows the largest
#: sparse-vs-dense metric gap of the three workloads (Table 2).
_WORKLOAD_HP: dict[str, dict[str, float]] = {
    "transformer": {"lr": 0.15, "density": 0.10},
}


class ConvergenceRunner:
    """Runs the Fig. 10 / Table 2 experiment at laptop scale.

    Parameters
    ----------
    num_nodes / gpus_per_node:
        Virtual cluster shape (default 4×2 = 8 workers; enough to make
        the hierarchy non-trivial while keeping runs fast).
    density:
        Sparsity for the top-k algorithms (paper trains at ρ = 0.001 on
        25M parameters; at our ~1e4-parameter scale the equivalent
        aggressive-compression setting is a few percent).
    epochs / num_samples / local_batch / lr / seed:
        Training-run shape.
    """

    def __init__(
        self,
        *,
        num_nodes: int = 4,
        gpus_per_node: int = 2,
        density: float = 0.05,
        epochs: int = 20,
        num_samples: int = 2048,
        local_batch: int = 16,
        lr: float = 0.05,
        seed: int = 7,
    ) -> None:
        self.num_nodes = num_nodes
        self.gpus_per_node = gpus_per_node
        self.density = density
        self.epochs = epochs
        self.num_samples = num_samples
        self.local_batch = local_batch
        self.lr = lr
        self.seed = seed

    def _network(self):
        return make_cluster(self.num_nodes, "tencent", gpus_per_node=self.gpus_per_node)

    def _build(self, workload: str):
        rng = new_rng(self.seed)
        if workload == "mlp":
            x, y = make_spiral_classification(self.num_samples, num_classes=4, rng=rng)
            model = MLPClassifier(input_dim=2, hidden=(48, 48), num_classes=4)
            metric = "top-1 accuracy"
            evaluate = lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1)  # noqa: E731
        elif workload == "cnn":
            x, y = make_synthetic_images(
                self.num_samples, num_classes=4, image_size=12, rng=rng
            )
            model = SmallConvNet(
                in_channels=3, channels=(6, 12), num_classes=4, image_size=12
            )
            metric = "top-1 accuracy"
            evaluate = lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1)  # noqa: E731
        elif workload == "resnet":
            # Extension workload: residual blocks change the gradient
            # distribution the selectors see (flatter tails).
            from repro.models.nn.resnet_tiny import TinyResNet

            x, y = make_synthetic_images(
                self.num_samples, num_classes=4, image_size=8, rng=rng
            )
            model = TinyResNet(width=6, num_classes=4, image_size=8)
            metric = "top-1 accuracy"
            evaluate = lambda p, vx, vy: model.evaluate(p, vx, vy, topk=1)  # noqa: E731
        elif workload == "transformer":
            x, y = make_copy_task(
                rng, num_samples=self.num_samples, vocab_size=32, seq_len=10
            )
            model = TinyTransformer(vocab_size=32, d_model=24, d_ff=48, max_len=10)
            metric = "token accuracy (BLEU proxy)"
            evaluate = model.evaluate
        else:
            raise KeyError(
                f"unknown workload {workload!r}; try one of "
                f"{_WORKLOADS + _EXTRA_WORKLOADS}"
            )
        return model, x, y, metric, evaluate

    def run(
        self,
        workload: str,
        algorithms: tuple[str, ...] = TRAINING_ALGORITHMS,
        *,
        epochs: int | None = None,
    ) -> ConvergenceResult:
        """Train one workload under each algorithm from a shared init."""
        model, x, y, metric, evaluate = self._build(workload)
        train_x, train_y, val_x, val_y = train_val_split(np.asarray(x), np.asarray(y))
        result = ConvergenceResult(workload=workload, metric_name=metric)
        epochs = epochs if epochs is not None else self.epochs
        overrides = _WORKLOAD_HP.get(workload, {})
        lr = overrides.get("lr", self.lr)
        density = overrides.get("density", self.density)

        for algorithm in algorithms:
            network = self._network()
            scheme = make_scheme(algorithm, network, density=density)
            trainer = DistributedTrainer(
                model,
                scheme,
                optimizer=SGD(lr=lr, momentum=0.9),
                seed=self.seed,  # same seed → same init for every algorithm
            )
            report = trainer.train(
                train_x,
                train_y,
                epochs=epochs,
                local_batch=self.local_batch,
                val_x=val_x,
                val_y=val_y,
                evaluate=evaluate,
                algorithm_name=algorithm,
            )
            result.reports[algorithm] = report
        return result

    def run_all(
        self, workloads: tuple[str, ...] = _WORKLOADS
    ) -> dict[str, ConvergenceResult]:
        return {w: self.run(w) for w in workloads}


__all__ = ["ConvergenceRunner", "ConvergenceResult", "EpochRecord"]
