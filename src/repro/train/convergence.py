"""The convergence experiment (paper Fig. 10 and Table 2).

Trains the *same* model from the *same* initialisation under the three
algorithms — Dense-SGD, TopK-SGD (exact top-k, flat All-Gather, error
feedback) and MSTopK-SGD (Algorithm 2 with shard-level error feedback) —
and records per-epoch validation metrics.  The paper's finding to
reproduce: both sparsified variants track the dense run with a small
final-accuracy gap, and MSTopK-SGD is not worse than TopK-SGD on CNNs
(its intra-node aggregation is dense, §5.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import (
    CONVERGENCE_ALGORITHMS,
    build_scheme,
    build_workload,
)
from repro.cluster.cloud_presets import make_cluster
from repro.optim.sgd import SGD
from repro.train.synthetic import train_val_split
from repro.train.trainer import DistributedTrainer, TrainingReport
from repro.utils.seeding import new_rng


@dataclass
class EpochRecord:
    """One (epoch, metric) point on a convergence curve."""

    epoch: int
    metric: float


@dataclass
class ConvergenceResult:
    """All algorithms' curves for one workload."""

    workload: str
    metric_name: str
    reports: dict[str, TrainingReport] = field(default_factory=dict)

    def curve(self, algorithm: str) -> list[EpochRecord]:
        report = self.reports[algorithm]
        return [EpochRecord(i, m) for i, m in enumerate(report.val_metrics)]

    def final(self, algorithm: str) -> float:
        return self.reports[algorithm].final_val_metric

    def summary_rows(self) -> list[tuple[str, float]]:
        return [(alg, self.final(alg)) for alg in self.reports]


#: Paper-analogue workloads (Fig. 10 / Table 2); the MODELS registry
#: holds these plus extension workloads like "resnet".
_WORKLOADS = ("mlp", "cnn", "transformer")

#: Per-workload hyperparameter overrides.  The attention model needs a
#: hotter rate to move in 15 epochs and a higher density for the
#: sparsified runs (its ~7k parameters make ρ·d/n per shard tiny
#: otherwise); the paper's Transformer likewise shows the largest
#: sparse-vs-dense metric gap of the three workloads (Table 2).
_WORKLOAD_HP: dict[str, dict[str, float]] = {
    "transformer": {"lr": 0.15, "density": 0.10},
}


class ConvergenceRunner:
    """Runs the Fig. 10 / Table 2 experiment at laptop scale.

    Parameters
    ----------
    num_nodes / gpus_per_node:
        Virtual cluster shape (default 4×2 = 8 workers; enough to make
        the hierarchy non-trivial while keeping runs fast).
    density:
        Sparsity for the top-k algorithms (paper trains at ρ = 0.001 on
        25M parameters; at our ~1e4-parameter scale the equivalent
        aggressive-compression setting is a few percent).
    epochs / num_samples / local_batch / lr / seed:
        Training-run shape.
    """

    def __init__(
        self,
        *,
        num_nodes: int = 4,
        gpus_per_node: int = 2,
        density: float = 0.05,
        epochs: int = 20,
        num_samples: int = 2048,
        local_batch: int = 16,
        lr: float = 0.05,
        seed: int = 7,
    ) -> None:
        self.num_nodes = num_nodes
        self.gpus_per_node = gpus_per_node
        self.density = density
        self.epochs = epochs
        self.num_samples = num_samples
        self.local_batch = local_batch
        self.lr = lr
        self.seed = seed

    def _network(self):
        return make_cluster(self.num_nodes, "tencent", gpus_per_node=self.gpus_per_node)

    def _build(self, workload: str):
        built = build_workload(
            workload, num_samples=self.num_samples, rng=new_rng(self.seed)
        )
        return built.model, built.x, built.y, built.metric_name, built.evaluate

    def run(
        self,
        workload: str,
        algorithms: tuple[str, ...] = CONVERGENCE_ALGORITHMS,
        *,
        epochs: int | None = None,
    ) -> ConvergenceResult:
        """Train one workload under each algorithm from a shared init."""
        model, x, y, metric, evaluate = self._build(workload)
        train_x, train_y, val_x, val_y = train_val_split(np.asarray(x), np.asarray(y))
        result = ConvergenceResult(workload=workload, metric_name=metric)
        epochs = epochs if epochs is not None else self.epochs
        overrides = _WORKLOAD_HP.get(workload, {})
        lr = overrides.get("lr", self.lr)
        density = overrides.get("density", self.density)

        for algorithm in algorithms:
            network = self._network()
            scheme = build_scheme(algorithm, network, density=density)
            trainer = DistributedTrainer(
                model,
                scheme,
                optimizer=SGD(lr=lr, momentum=0.9),
                seed=self.seed,  # same seed → same init for every algorithm
            )
            report = trainer.train(
                train_x,
                train_y,
                epochs=epochs,
                local_batch=self.local_batch,
                val_x=val_x,
                val_y=val_y,
                evaluate=evaluate,
                algorithm_name=algorithm,
            )
            result.reports[algorithm] = report
        return result

    def run_all(
        self, workloads: tuple[str, ...] = _WORKLOADS
    ) -> dict[str, ConvergenceResult]:
        return {w: self.run(w) for w in workloads}


__all__ = ["ConvergenceRunner", "ConvergenceResult", "EpochRecord"]
