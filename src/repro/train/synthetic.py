"""Synthetic classification datasets for the convergence experiments.

Small, non-linearly-separable problems that a few thousand SGD steps can
solve: spirals (the MLP workload), Gaussian blobs (a linear sanity
check), and patterned images (the CNN workload).  All deterministic in
the seed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import RandomState, new_rng


def make_spiral_classification(
    num_samples: int,
    *,
    num_classes: int = 4,
    noise: float = 0.15,
    rng: RandomState | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Interleaved 2-D spirals, one arm per class."""
    if num_samples < num_classes:
        raise ValueError("need at least one sample per class")
    rng = rng if rng is not None else new_rng()
    per_class = num_samples // num_classes
    xs, ys = [], []
    for c in range(num_classes):
        t = np.linspace(0.2, 1.0, per_class)
        angle = t * 4.0 * np.pi / num_classes + c * 2.0 * np.pi / num_classes
        radius = t
        x = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        x += rng.normal(0.0, noise * t[:, None], size=x.shape)
        xs.append(x)
        ys.append(np.full(per_class, c))
    x = np.concatenate(xs)
    y = np.concatenate(ys)
    order = rng.permutation(len(x))
    return x[order], y[order]


def make_blob_classification(
    num_samples: int,
    *,
    num_classes: int = 4,
    dim: int = 8,
    separation: float = 3.0,
    rng: RandomState | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian blobs with centres on a scaled simplex."""
    rng = rng if rng is not None else new_rng()
    centers = rng.normal(0.0, separation, size=(num_classes, dim))
    y = rng.integers(0, num_classes, size=num_samples)
    x = centers[y] + rng.normal(0.0, 1.0, size=(num_samples, dim))
    return x, y


def make_synthetic_images(
    num_samples: int,
    *,
    num_classes: int = 4,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 1.3,
    amplitude: float = 0.8,
    rng: RandomState | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """NCHW images whose class determines an oriented frequency pattern.

    Class ``c`` injects a sinusoidal grating at angle ``c * pi / C`` on
    top of noise — learnable by a small conv net, hopeless for a linear
    model, which is what we want from a CNN benchmark.  The default
    noise level keeps 15-epoch runs mid-curve so algorithm gaps stay
    visible (nothing saturates at 100%).
    """
    rng = rng if rng is not None else new_rng()
    coords = np.arange(image_size)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    y = rng.integers(0, num_classes, size=num_samples)
    x = rng.normal(0.0, noise, size=(num_samples, channels, image_size, image_size))
    for c in range(num_classes):
        mask = y == c
        angle = c * np.pi / num_classes
        pattern = amplitude * np.sin(
            2.0 * np.pi * (np.cos(angle) * xx + np.sin(angle) * yy) / 6.0
        )
        x[mask] += pattern[None, None, :, :]
    return x, y


def train_val_split(
    x: np.ndarray, y: np.ndarray, *, val_fraction: float = 0.2
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic tail split (inputs are already shuffled)."""
    if not 0 < val_fraction < 1:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    n_val = max(1, int(len(x) * val_fraction))
    return x[:-n_val], y[:-n_val], x[-n_val:], y[-n_val:]


__all__ = [
    "make_spiral_classification",
    "make_blob_classification",
    "make_synthetic_images",
    "train_val_split",
]
