"""Distributed synchronous training over the virtual cluster.

:class:`~repro.train.trainer.DistributedTrainer` runs real data-parallel
SGD (paper Eq. 1): per-worker gradients from the NumPy models flow
through an actual :class:`~repro.comm.CommScheme` (dense all-reduce or
sparsified hierarchy, with error feedback) before the optimizer update.
:mod:`~repro.train.convergence` packages the Fig. 10 / Table 2
experiment: the same model and data trained under Dense-SGD, TopK-SGD
and MSTopK-SGD.
"""

# TRAINING_ALGORITHMS is aliased from the registry directly so that
# `import repro` stays silent; accessing it via repro.train.algorithms
# emits the DeprecationWarning.
from repro.api.registry import CONVERGENCE_ALGORITHMS as TRAINING_ALGORITHMS
from repro.train.algorithms import make_scheme
from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.convergence import (
    ConvergenceResult,
    ConvergenceRunner,
    EpochRecord,
)
from repro.train.synthetic import (
    make_blob_classification,
    make_spiral_classification,
    make_synthetic_images,
)
from repro.train.trainer import DistributedTrainer, TrainingReport

__all__ = [
    "DistributedTrainer",
    "TrainingReport",
    "make_scheme",
    "TRAINING_ALGORITHMS",
    "save_checkpoint",
    "load_checkpoint",
    "ConvergenceRunner",
    "ConvergenceResult",
    "EpochRecord",
    "make_spiral_classification",
    "make_blob_classification",
    "make_synthetic_images",
]
