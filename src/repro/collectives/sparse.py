"""Sparse vectors and the sparse All-Gather aggregation.

Top-k sparsification makes indices differ across workers, so the values
"cannot be aggregated through the All-Reduce collective.  The efficient
way is to use two All-Gather operations to aggregate the values and
indices respectively" (paper §3.2, citing SparCML).  This module provides
the sparse container and that aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SparseVector:
    """A sparse view of a length-``length`` dense vector.

    ``values[i]`` lives at position ``indices[i]``.  Indices may contain
    duplicates until :func:`coalesce` is applied (duplicates arise when
    accumulating selections from several workers).
    """

    values: np.ndarray
    indices: np.ndarray
    length: int

    def __post_init__(self) -> None:
        values = np.asarray(self.values)
        indices = np.asarray(self.indices)
        if values.ndim != 1 or indices.ndim != 1:
            raise ValueError("values and indices must be 1-D")
        if values.shape != indices.shape:
            raise ValueError(
                f"values ({values.shape}) and indices ({indices.shape}) must align"
            )
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        if indices.size and (indices.min() < 0 or indices.max() >= self.length):
            raise ValueError("indices out of range for declared length")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "indices", indices.astype(np.int64, copy=False))

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_dense(self) -> np.ndarray:
        """Densify, accumulating duplicate indices (scatter-add)."""
        dense = np.zeros(self.length, dtype=self.values.dtype)
        np.add.at(dense, self.indices, self.values)
        return dense

    def shifted(self, offset: int, new_length: int) -> "SparseVector":
        """Re-base indices by ``offset`` into a longer vector.

        Used when a shard-local selection (Algorithm 2 step 2) is mapped
        back into the full gradient's coordinate space.
        """
        return SparseVector(self.values, self.indices + offset, new_length)

    def nbytes_on_wire(self, value_bytes: int = 4, index_bytes: int = 4) -> int:
        """Wire size: ``k`` values plus ``k`` indices (paper: "the number
        of elements ... to be transmitted becomes 2k")."""
        return self.nnz * (value_bytes + index_bytes)


def sparsify_dense(dense: np.ndarray, indices: np.ndarray) -> SparseVector:
    """Build a :class:`SparseVector` by reading ``dense`` at ``indices``."""
    dense = np.asarray(dense)
    if dense.ndim != 1:
        raise ValueError(f"dense must be 1-D, got shape {dense.shape}")
    indices = np.asarray(indices, dtype=np.int64)
    return SparseVector(dense[indices], indices, dense.size)


def coalesce(vec: SparseVector) -> SparseVector:
    """Merge duplicate indices by summation; output indices are sorted."""
    if vec.nnz == 0:
        return vec
    order = np.argsort(vec.indices, kind="stable")
    idx = vec.indices[order]
    vals = vec.values[order]
    unique_idx, inverse = np.unique(idx, return_inverse=True)
    summed = np.zeros(unique_idx.size, dtype=vals.dtype)
    np.add.at(summed, inverse, vals)
    return SparseVector(summed, unique_idx, vec.length)


def concat_sparse(vectors: Sequence[SparseVector]) -> SparseVector:
    """Concatenate sparse vectors sharing one coordinate space."""
    if not vectors:
        raise ValueError("concat_sparse: empty input")
    length = vectors[0].length
    for v in vectors:
        if v.length != length:
            raise ValueError("concat_sparse: mismatched lengths")
    values = np.concatenate([v.values for v in vectors]) if vectors else np.empty(0)
    indices = np.concatenate([v.indices for v in vectors])
    return SparseVector(values, indices, length)


def batched_scatter_add(
    vectors: Sequence[SparseVector],
    length: int,
    *,
    dtype=None,
    offsets: Sequence[int] | None = None,
) -> np.ndarray:
    """Accumulate many sparse contributions into one dense buffer.

    One ``np.add.at`` over the concatenated (values, indices) pairs
    replaces a Python loop of per-vector scatter-adds.  ``np.add.at``
    applies additions in index-array order, and concatenation preserves
    per-vector order, so the per-coordinate accumulation order — and
    therefore every floating-point bit — matches the sequential loop.

    ``offsets`` optionally re-bases vector ``i``'s shard-local indices
    by ``offsets[i]`` (Algorithm 2 step 3: per-stream shard selections
    land in the full gradient's coordinate space).
    """
    if not vectors:
        raise ValueError("batched_scatter_add: empty contribution list")
    if offsets is not None and len(offsets) != len(vectors):
        raise ValueError(
            f"batched_scatter_add: {len(vectors)} vectors but {len(offsets)} offsets"
        )
    dense = np.zeros(length, dtype=vectors[0].values.dtype if dtype is None else dtype)
    if offsets is None:
        indices = np.concatenate([v.indices for v in vectors])
    else:
        indices = np.concatenate(
            [v.indices + off for v, off in zip(vectors, offsets)]
        )
    values = np.concatenate([v.values for v in vectors])
    if indices.size and (indices.min() < 0 or indices.max() >= length):
        raise ValueError("batched_scatter_add: indices out of range")
    np.add.at(dense, indices, values)
    return dense


def sparse_allgather_reduce(vectors: Sequence[SparseVector]) -> list[np.ndarray]:
    """The NaiveAG aggregation: all-gather (values, indices), then each
    worker scatter-adds every contribution into a dense buffer.

    Returns the per-worker dense aggregate (identical across workers).
    """
    if not vectors:
        raise ValueError("sparse_allgather_reduce: empty worker group")
    length = vectors[0].length
    dtype = vectors[0].values.dtype
    for rank, v in enumerate(vectors):
        if v.length != length:
            raise ValueError(
                f"sparse_allgather_reduce: rank {rank} length {v.length} != {length}"
            )
    dense = np.zeros(length, dtype=dtype)
    for v in vectors:
        np.add.at(dense, v.indices, v.values)
    return [dense.copy() for _ in range(len(vectors))]


__all__ = [
    "SparseVector",
    "sparsify_dense",
    "coalesce",
    "concat_sparse",
    "batched_scatter_add",
    "sparse_allgather_reduce",
]
