"""All-Reduce collectives: ring, tree, and 2D-torus.

The paper evaluates against two dense aggregation baselines:

* **TreeAR** — NCCL's double-binary-tree all-reduce (Sanders et al.
  2009).  Functionally we implement a binomial-tree reduce + broadcast
  (the result is identical; the double-tree trick only changes the
  *schedule*, which the cost model in :mod:`repro.cluster.network`
  captures separately).
* **2DTAR** — the 2D-Torus all-reduce of Mikami et al. 2018 / Cho et al.
  2019 ("BlueConnect"): intra-node reduce-scatter, inter-node ring
  all-reduce per shard, intra-node all-gather.  This exploits the same
  hierarchy HiTopKComm does, but with dense data.

Plus the classic flat ring all-reduce (Baidu 2017) as a reference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.all_gather import ring_all_gather
from repro.collectives.primitives import validate_group
from repro.collectives.reduce_scatter import matrix_reduce_scatter, ring_reduce_scatter
from repro.cluster.topology import ClusterTopology
from repro.utils.partition import chunk_bounds


def ring_allreduce(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Flat ring all-reduce: reduce-scatter followed by all-gather."""
    arrays = validate_group(tensors, name="ring_allreduce")
    shards = ring_reduce_scatter(arrays)
    return ring_all_gather_unequal(shards)


def ring_all_gather_unequal(shards: Sequence[np.ndarray]) -> list[np.ndarray]:
    """All-gather of possibly unequal contiguous shards (rank order).

    Ring reduce-scatter with ``d % p != 0`` produces shards whose sizes
    differ by one; the closing all-gather must reassemble them in rank
    order.  Functionally equivalent to concatenation broadcast.
    """
    if len(shards) == 0:
        raise ValueError("ring_all_gather_unequal: empty worker group")
    sizes = {s.size for s in map(np.asarray, shards)}
    if len(sizes) == 1:
        return ring_all_gather(shards)
    full = np.concatenate([np.asarray(s) for s in shards])
    return [full.copy() for _ in range(len(shards))]


def matrix_ring_allreduce(mat: np.ndarray) -> np.ndarray:
    """Vectorised flat ring all-reduce over a ``(p, d)`` matrix.

    Returns the single ``(d,)`` aggregate every rank ends up with —
    bit-identical to ``ring_allreduce(list(mat))[r]`` for any ``r``
    (the closing all-gather only moves bytes; the reduced values are
    fixed by the reduce-scatter fold, which
    :func:`~repro.collectives.reduce_scatter.matrix_reduce_scatter`
    reproduces exactly).
    """
    return matrix_reduce_scatter(mat)


def matrix_tree_allreduce(mat: np.ndarray) -> np.ndarray:
    """Vectorised binomial-tree all-reduce over a ``(p, d)`` matrix.

    Row pairs at stride 1, 2, 4, ... are added with one fancy-indexed
    matrix operation per stride instead of a Python loop over ranks; the
    pairwise additions are the same IEEE operations in the same order as
    :func:`tree_allreduce`, so the aggregate is bit-identical.
    """
    mat = np.asarray(mat)
    if mat.ndim != 2:
        raise ValueError(f"matrix_tree_allreduce: need a (p, d) matrix, got {mat.shape}")
    p = mat.shape[0]
    if p == 0:
        raise ValueError("matrix_tree_allreduce: empty worker group")
    buf = mat.copy()
    stride = 1
    while stride < p:
        dst = np.arange(0, p, 2 * stride)
        src = dst + stride
        valid = src < p
        if valid.any():
            buf[dst[valid]] += buf[src[valid]]
        stride *= 2
    return buf[0]


def matrix_torus_allreduce_2d(mat: np.ndarray, topology: ClusterTopology) -> np.ndarray:
    """Vectorised 2D-Torus all-reduce over a node-major ``(P, d)`` matrix.

    Phase 1 runs the rotated-fold reduce-scatter on each node's
    contiguous row block, phase 2 runs a vectorised inter-node ring
    all-reduce per segment column block, and phase 3 (the intra-node
    all-gather) is the identity on the assembled vector.  Bit-identical
    to :func:`torus_allreduce_2d`.
    """
    mat = np.asarray(mat)
    if mat.ndim != 2:
        raise ValueError(
            f"matrix_torus_allreduce_2d: need a (P, d) matrix, got {mat.shape}"
        )
    if mat.shape[0] != topology.world_size:
        raise ValueError(
            f"matrix_torus_allreduce_2d: got {mat.shape[0]} rows for "
            f"world size {topology.world_size}"
        )
    m, n = topology.num_nodes, topology.gpus_per_node
    d = mat.shape[1]

    # Phase 1: per-node reduce-scatter (ranks are node-major, so each
    # node is a contiguous row block).
    node_acc = np.empty((m, d), dtype=mat.dtype)
    for node in range(m):
        node_acc[node] = matrix_reduce_scatter(mat[node * n : (node + 1) * n])

    # Phase 2: per-segment inter-node ring all-reduce (n column blocks).
    full = np.empty(d, dtype=mat.dtype)
    for start, end in chunk_bounds(d, n):
        full[start:end] = matrix_ring_allreduce(node_acc[:, start:end])

    # Phase 3: the intra-node all-gather reassembles segments 0..n-1 in
    # order — exactly the layout ``full`` already has.
    return full


def tree_allreduce(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Binomial-tree all-reduce: reduce to rank 0, then broadcast.

    The reduction pairs ranks at stride 1, 2, 4, ... (a binomial tree of
    depth ``ceil(log2 p)``), which fixes the floating-point accumulation
    order deterministically.
    """
    arrays = validate_group(tensors, name="tree_allreduce")
    p = len(arrays)
    acc = [arr.copy() for arr in arrays]
    stride = 1
    while stride < p:
        for dst in range(0, p, 2 * stride):
            src = dst + stride
            if src < p:
                acc[dst] = acc[dst] + acc[src]
        stride *= 2
    result = acc[0]
    return [result.copy() for _ in range(p)]


def torus_allreduce_2d(
    tensors: Sequence[np.ndarray], topology: ClusterTopology
) -> list[np.ndarray]:
    """2D-Torus all-reduce over an ``m × n`` hierarchy (2DTAR).

    Three phases (Mikami et al. 2018):

    1. intra-node ring reduce-scatter — GPU ``j`` of each node owns the
       node-local sum of segment ``j``;
    2. inter-node ring all-reduce of segment ``j`` among the ``j``-th
       GPUs of all nodes (``n`` independent rings in parallel);
    3. intra-node ring all-gather to reassemble the full vector.

    The result equals the global sum on every worker.
    """
    arrays = validate_group(tensors, name="torus_allreduce_2d")
    if len(arrays) != topology.world_size:
        raise ValueError(
            f"torus_allreduce_2d: got {len(arrays)} tensors for "
            f"world size {topology.world_size}"
        )
    m, n = topology.num_nodes, topology.gpus_per_node

    # Phase 1: per-node reduce-scatter.
    shards: dict[int, np.ndarray] = {}
    for node in range(m):
        group = [arrays[r] for r in topology.node_ranks(node)]
        node_shards = ring_reduce_scatter(group)
        for local, shard in enumerate(node_shards):
            shards[topology.rank(node, local)] = shard

    # Phase 2: per-stream inter-node ring all-reduce of each segment.
    for local in range(n):
        stream = topology.stream_ranks(local)
        stream_tensors = [shards[r] for r in stream]
        reduced = ring_allreduce(stream_tensors)
        for r, tensor in zip(stream, reduced):
            shards[r] = tensor

    # Phase 3: per-node all-gather reassembling segments 0..n-1.
    out: list[np.ndarray | None] = [None] * topology.world_size
    for node in range(m):
        group_ranks = topology.node_ranks(node)
        gathered = ring_all_gather_unequal([shards[r] for r in group_ranks])
        for r, full in zip(group_ranks, gathered):
            out[r] = full
    assert all(o is not None for o in out)
    return [o for o in out if o is not None]


__all__ = [
    "ring_allreduce",
    "ring_all_gather_unequal",
    "tree_allreduce",
    "torus_allreduce_2d",
    "matrix_ring_allreduce",
    "matrix_tree_allreduce",
    "matrix_torus_allreduce_2d",
]
