"""Functional collective operations over simulated workers.

Each collective takes the per-worker inputs as a ``list`` (indexed by
rank) of NumPy arrays and returns the per-worker outputs as a list, with
no real networking involved — the point is numerical fidelity to the
algorithms (ring reduce-scatter, ring/tree/2D-torus all-reduce,
all-gather, and the sparse all-gather aggregation the paper's TopK-SGD
needs).  Timing is handled separately by
:class:`repro.cluster.NetworkModel` and the schemes in :mod:`repro.comm`.

The ring algorithms move data step by step exactly as the real ring
would, rather than computing ``sum`` directly, so tests can check both
the result *and* the communication schedule.
"""

from repro.collectives.all_gather import all_gather, all_gather_concat, ring_all_gather
from repro.collectives.all_reduce import (
    matrix_ring_allreduce,
    matrix_torus_allreduce_2d,
    matrix_tree_allreduce,
    ring_allreduce,
    torus_allreduce_2d,
    tree_allreduce,
)
from repro.collectives.primitives import (
    broadcast,
    broadcast_views,
    gather,
    reduce_sum,
    scatter,
    validate_group,
)
from repro.collectives.reduce_scatter import (
    matrix_reduce_scatter,
    reference_reduce_scatter,
    ring_reduce_scatter,
)
from repro.collectives.sparse import (
    SparseVector,
    batched_scatter_add,
    coalesce,
    sparse_allgather_reduce,
    sparsify_dense,
)

__all__ = [
    "broadcast",
    "broadcast_views",
    "reduce_sum",
    "gather",
    "scatter",
    "validate_group",
    "ring_reduce_scatter",
    "matrix_reduce_scatter",
    "reference_reduce_scatter",
    "all_gather",
    "all_gather_concat",
    "ring_all_gather",
    "ring_allreduce",
    "tree_allreduce",
    "torus_allreduce_2d",
    "matrix_ring_allreduce",
    "matrix_tree_allreduce",
    "matrix_torus_allreduce_2d",
    "SparseVector",
    "coalesce",
    "batched_scatter_add",
    "sparse_allgather_reduce",
    "sparsify_dense",
]
