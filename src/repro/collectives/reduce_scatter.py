"""Ring Reduce-Scatter.

Step 1 of the paper's HiTopKComm (Algorithm 2) is an intra-node
Reduce-Scatter: after it, GPU ``j`` of a node holds the node-local sum of
segment ``j`` of the gradient (paper Eq. 4).  The ring algorithm runs
``p - 1`` steps; at each step every worker sends one partially-reduced
chunk to its successor, which matches the cost form of paper Eq. (7):
``(n-1) * alpha + (n-1) * (D/n) * beta``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.collectives.primitives import validate_group
from repro.utils.partition import chunk_bounds, chunk_sizes


def ring_reduce_scatter(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Ring reduce-scatter: worker ``i`` ends up owning reduced chunk ``i``.

    Simulates the actual ring schedule (``p - 1`` send/accumulate steps)
    over chunk-partitioned buffers rather than summing directly, so the
    result order and the floating-point accumulation order match a real
    ring implementation.

    Returns the list of owned chunks (worker ``i`` → chunk ``i``).
    """
    arrays = validate_group(tensors, name="ring_reduce_scatter")
    p = len(arrays)
    d = arrays[0].size
    bounds = chunk_bounds(d, p)

    if p == 1:
        return [arrays[0].copy()]

    # chunks[w][c] is worker w's current accumulated value of chunk c.
    chunks: list[list[np.ndarray]] = [
        [arr[start:end].copy() for start, end in bounds] for arr in arrays
    ]

    # At step t, worker w sends its accumulated chunk (w - t - 1) mod p to
    # worker (w + 1) mod p.  After p-1 steps worker w owns chunk w fully
    # reduced.  Sends within one step are simultaneous, so we read the
    # pre-step state for all sends before applying any accumulation.
    for step in range(p - 1):
        sends = []
        for w in range(p):
            c = (w - step - 1) % p
            sends.append((c, (w + 1) % p, chunks[w][c]))
        for c, dst, payload in sends:
            chunks[dst][c] = chunks[dst][c] + payload

    return [chunks[w][w] for w in range(p)]


def matrix_reduce_scatter(mat: np.ndarray) -> np.ndarray:
    """Vectorised ring reduce-scatter over a ``(p, d)`` gradient matrix.

    Returns the flat ``(d,)`` vector whose chunk ``w`` (NCCL bounds) is
    the reduced chunk owned by worker ``w`` — i.e. the rank-order
    concatenation of :func:`ring_reduce_scatter`'s outputs, bit for bit.

    The ring schedule accumulates chunk ``c`` in the fixed order
    ``x[c+1] + x[c+2] + ... + x[c]`` (indices mod ``p``); because IEEE
    addition is commutative (though not associative), that left fold is
    reproduced exactly by ``p - 1`` whole-width accumulations of the
    row-rotated matrix — no Python loop over chunks, no per-chunk
    temporaries.
    """
    mat = np.asarray(mat)
    if mat.ndim != 2:
        raise ValueError(f"matrix_reduce_scatter: need a (p, d) matrix, got {mat.shape}")
    p, d = mat.shape
    if p == 0:
        raise ValueError("matrix_reduce_scatter: empty worker group")
    if p == 1:
        return mat[0].copy()
    if p == 2:
        # Both chunks fold as one commutative pairwise add.
        return mat[0] + mat[1]
    row, col = _fold_indices(p, d)
    acc = mat[(row + 1) % p, col]
    for t in range(2, p + 1):
        acc += mat[(row + t) % p, col]
    return acc


@lru_cache(maxsize=8)
def _fold_indices(p: int, d: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached base gather indices for the rotated fold (hot-path reuse).

    Only the chunk-ownership row vector and the column arange are kept
    (2 * d int64 per layout); the per-step rotations are small temps.
    """
    sizes = chunk_sizes(d, p)
    row = np.repeat(np.arange(p), sizes)  # owning chunk of each position
    col = np.arange(d)
    return row, col


def reference_reduce_scatter(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Direct (non-ring) reference: sum then shard.  Used by tests."""
    arrays = validate_group(tensors, name="reference_reduce_scatter")
    total = arrays[0].copy()
    for arr in arrays[1:]:
        total += arr
    bounds = chunk_bounds(total.size, len(arrays))
    return [total[start:end].copy() for start, end in bounds]


__all__ = ["ring_reduce_scatter", "matrix_reduce_scatter", "reference_reduce_scatter"]
