"""Ring Reduce-Scatter.

Step 1 of the paper's HiTopKComm (Algorithm 2) is an intra-node
Reduce-Scatter: after it, GPU ``j`` of a node holds the node-local sum of
segment ``j`` of the gradient (paper Eq. 4).  The ring algorithm runs
``p - 1`` steps; at each step every worker sends one partially-reduced
chunk to its successor, which matches the cost form of paper Eq. (7):
``(n-1) * alpha + (n-1) * (D/n) * beta``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.primitives import validate_group
from repro.utils.partition import chunk_bounds


def ring_reduce_scatter(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Ring reduce-scatter: worker ``i`` ends up owning reduced chunk ``i``.

    Simulates the actual ring schedule (``p - 1`` send/accumulate steps)
    over chunk-partitioned buffers rather than summing directly, so the
    result order and the floating-point accumulation order match a real
    ring implementation.

    Returns the list of owned chunks (worker ``i`` → chunk ``i``).
    """
    arrays = validate_group(tensors, name="ring_reduce_scatter")
    p = len(arrays)
    d = arrays[0].size
    bounds = chunk_bounds(d, p)

    if p == 1:
        return [arrays[0].copy()]

    # chunks[w][c] is worker w's current accumulated value of chunk c.
    chunks: list[list[np.ndarray]] = [
        [arr[start:end].copy() for start, end in bounds] for arr in arrays
    ]

    # At step t, worker w sends its accumulated chunk (w - t - 1) mod p to
    # worker (w + 1) mod p.  After p-1 steps worker w owns chunk w fully
    # reduced.  Sends within one step are simultaneous, so we read the
    # pre-step state for all sends before applying any accumulation.
    for step in range(p - 1):
        sends = []
        for w in range(p):
            c = (w - step - 1) % p
            sends.append((c, (w + 1) % p, chunks[w][c]))
        for c, dst, payload in sends:
            chunks[dst][c] = chunks[dst][c] + payload

    return [chunks[w][w] for w in range(p)]


def reference_reduce_scatter(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Direct (non-ring) reference: sum then shard.  Used by tests."""
    arrays = validate_group(tensors, name="reference_reduce_scatter")
    total = arrays[0].copy()
    for arr in arrays[1:]:
        total += arr
    bounds = chunk_bounds(total.size, len(arrays))
    return [total[start:end].copy() for start, end in bounds]


__all__ = ["ring_reduce_scatter", "reference_reduce_scatter"]
