"""All-Gather collectives.

Used in three places in the paper's system: the inter-node exchange of
sparsified (values, indices) pairs (Algorithm 2 step 3 and the NaiveAG
baseline), the final intra-node assembly (step 4), and PTO's result
aggregation (§4.2, Eq. 14).  Unlike reduce-style collectives, All-Gather
tolerates per-rank inputs of different lengths — sparse selections on
different shards can produce different ``k`` (shard sizes differ by one
when ``d % n != 0``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_arrays(tensors: Sequence[np.ndarray], name: str) -> list[np.ndarray]:
    if len(tensors) == 0:
        raise ValueError(f"{name}: empty worker group")
    arrays = []
    for rank, t in enumerate(tensors):
        arr = np.asarray(t)
        if arr.ndim != 1:
            raise ValueError(f"{name}: rank {rank} tensor must be 1-D, got {arr.shape}")
        arrays.append(arr)
    return arrays


def all_gather(tensors: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
    """Every worker receives the list of all workers' tensors (rank order).

    Returns ``out`` with ``out[w][r]`` = rank ``r``'s tensor as seen by
    worker ``w``.  Copies are independent per worker, as on real hardware.
    """
    arrays = _as_arrays(tensors, "all_gather")
    p = len(arrays)
    return [[arr.copy() for arr in arrays] for _ in range(p)]


def all_gather_concat(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """All-Gather with rank-order concatenation (the NCCL semantic)."""
    arrays = _as_arrays(tensors, "all_gather_concat")
    full = np.concatenate(arrays)
    return [full.copy() for _ in range(len(arrays))]


def ring_all_gather(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Ring All-Gather simulating the actual ``p - 1`` step schedule.

    Requires equal-length inputs (the ring schedule forwards fixed-size
    chunks).  Worker ``w`` ends with the concatenation in rank order,
    identical to :func:`all_gather_concat`.
    """
    arrays = _as_arrays(tensors, "ring_all_gather")
    p = len(arrays)
    size = arrays[0].size
    for rank, arr in enumerate(arrays):
        if arr.size != size:
            raise ValueError(
                f"ring_all_gather: rank {rank} has {arr.size} elements, expected {size}"
            )
    if p == 1:
        return [arrays[0].copy()]

    # received[w][c] is worker w's copy of rank c's chunk (None if not yet
    # received).  At step t, worker w forwards chunk (w - t) mod p to its
    # successor.
    received: list[list[np.ndarray | None]] = [
        [arrays[c].copy() if c == w else None for c in range(p)] for w in range(p)
    ]
    for step in range(p - 1):
        sends = []
        for w in range(p):
            c = (w - step) % p
            payload = received[w][c]
            if payload is None:  # pragma: no cover - schedule invariant
                raise AssertionError(f"ring schedule error: worker {w} missing chunk {c}")
            sends.append((c, (w + 1) % p, payload))
        for c, dst, payload in sends:
            received[dst][c] = payload.copy()

    out: list[np.ndarray] = []
    for w in range(p):
        chunks = received[w]
        assert all(c is not None for c in chunks)
        out.append(np.concatenate([c for c in chunks if c is not None]))
    return out


__all__ = ["all_gather", "all_gather_concat", "ring_all_gather"]
