"""Basic collective primitives (broadcast, reduce, gather, scatter).

These underpin the composite collectives and the tree all-reduce.  All
functions are pure: inputs are never mutated, outputs are fresh arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.partition import chunk_bounds


def validate_group(tensors: Sequence[np.ndarray], *, name: str = "collective") -> list[np.ndarray]:
    """Check that a per-worker tensor list is a valid collective group.

    All tensors must be one-dimensional with identical length and dtype
    (the trainer flattens/fuses layer gradients before communicating, so
    1-D is the only case the collectives need to support).
    """
    if len(tensors) == 0:
        raise ValueError(f"{name}: empty worker group")
    arrays = [np.asarray(t) for t in tensors]
    first = arrays[0]
    if first.ndim != 1:
        raise ValueError(f"{name}: tensors must be 1-D, got shape {first.shape}")
    for rank, arr in enumerate(arrays):
        if arr.shape != first.shape:
            raise ValueError(
                f"{name}: rank {rank} has shape {arr.shape}, expected {first.shape}"
            )
        if arr.dtype != first.dtype:
            raise ValueError(
                f"{name}: rank {rank} has dtype {arr.dtype}, expected {first.dtype}"
            )
    return arrays


def broadcast(tensor: np.ndarray, world_size: int) -> list[np.ndarray]:
    """Give every worker a copy of ``tensor``."""
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    arr = np.asarray(tensor)
    return [arr.copy() for _ in range(world_size)]


def broadcast_views(tensor: np.ndarray, world_size: int) -> list[np.ndarray]:
    """Zero-copy broadcast: every worker gets a *view* of one aggregate.

    The hot-path replacement for ``W`` dense ``full.copy()`` outputs per
    aggregation round: all correct schemes produce identical per-rank
    results anyway, so the replicated outputs share one buffer.  The
    views are marked read-only — an in-place edit (which would silently
    corrupt every rank's output) raises instead of corrupting.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    arr = np.asarray(tensor)
    views = [arr.view() for _ in range(world_size)]
    for view in views:
        view.flags.writeable = False
    return views


def reduce_sum(tensors: Sequence[np.ndarray]) -> np.ndarray:
    """Sum the per-worker tensors into one array (the 'reduce to root')."""
    arrays = validate_group(tensors, name="reduce_sum")
    out = arrays[0].copy()
    for arr in arrays[1:]:
        out += arr
    return out


def gather(tensors: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Collect every worker's tensor at a (virtual) root, in rank order."""
    if len(tensors) == 0:
        raise ValueError("gather: empty worker group")
    return [np.asarray(t).copy() for t in tensors]


def scatter(tensor: np.ndarray, world_size: int) -> list[np.ndarray]:
    """Split ``tensor`` into ``world_size`` near-equal contiguous chunks."""
    arr = np.asarray(tensor)
    if arr.ndim != 1:
        raise ValueError(f"scatter: tensor must be 1-D, got shape {arr.shape}")
    return [arr[start:end].copy() for start, end in chunk_bounds(arr.size, world_size)]


__all__ = [
    "validate_group",
    "broadcast",
    "broadcast_views",
    "reduce_sum",
    "gather",
    "scatter",
]
