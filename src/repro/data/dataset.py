"""Synthetic datasets standing in for ImageNet and WMT17.

The paper trains CNNs on ImageNet (1.28M images) and a Transformer on
WMT17 English-German.  We synthesise structurally equivalent datasets:
encoded images with realistic compressed sizes, and token-id sentence
pairs with realistic length distributions.  The content is random — the
data path (storage tiers, decode, augmentation, sharding) is what the
reproduction exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.preprocess import encode_image
from repro.utils.seeding import RandomState, new_rng


@dataclass
class SyntheticImageDataset:
    """An ImageNet-like collection of encoded images.

    Parameters
    ----------
    num_samples:
        Dataset size (ImageNet train split is 1,281,167; tests use small
        values).
    resolution:
        Stored resolution of the synthetic JPEGs.
    num_classes:
        Label space size (1000 for ImageNet).
    seed:
        Label/content seed.
    """

    num_samples: int
    resolution: int = 224
    num_classes: int = 1000
    seed: int = 0
    _labels: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {self.num_samples}")
        if self.num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {self.num_classes}")
        rng = new_rng(self.seed)
        self._labels = rng.integers(0, self.num_classes, size=self.num_samples)

    def key(self, index: int) -> str:
        """Storage key of one sample (the paper's KV cache is keyed by index)."""
        self._check(index)
        return f"img-{index:09d}"

    def encoded(self, index: int) -> bytes:
        """The encoded payload as it would sit on NFS."""
        self._check(index)
        return encode_image(index, self.resolution)

    def label(self, index: int) -> int:
        self._check(index)
        return int(self._labels[index])

    @property
    def encoded_sample_bytes(self) -> int:
        """Size of one encoded sample (all samples are equal-sized here)."""
        return len(self.encoded(0))

    def epoch_order(self, epoch: int, rng: RandomState | None = None) -> np.ndarray:
        """Shuffled sample order for one epoch (deterministic per epoch)."""
        order_rng = rng if rng is not None else new_rng(self.seed + 1000 + epoch)
        order = np.arange(self.num_samples)
        order_rng.shuffle(order)
        return order

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_samples:
            raise IndexError(f"sample {index} out of range [0, {self.num_samples})")

    def __len__(self) -> int:
        return self.num_samples


@dataclass
class SyntheticTranslationDataset:
    """A WMT-like corpus of token-id sentence pairs.

    Sentence lengths follow a clipped log-normal (mean ≈ 25 tokens),
    vocabulary ids are uniform.  The paper's Transformer treats "one
    sentence with 256 words" as a sample unit; :meth:`padded_batch`
    produces fixed-length arrays of that shape.
    """

    num_samples: int
    vocab_size: int = 32_000
    max_len: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {self.num_samples}")
        rng = new_rng(self.seed)
        lengths = np.clip(
            rng.lognormal(mean=3.0, sigma=0.6, size=self.num_samples).astype(int),
            4,
            self.max_len,
        )
        self._lengths = lengths

    def key(self, index: int) -> str:
        self._check(index)
        return f"sent-{index:09d}"

    def sentence_pair(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """(source, target) token id arrays for one sample."""
        self._check(index)
        rng = new_rng(self.seed + 7_000_000 + index)
        src_len = int(self._lengths[index])
        tgt_len = max(4, int(src_len * rng.uniform(0.8, 1.2)))
        src = rng.integers(1, self.vocab_size, size=src_len)
        tgt = rng.integers(1, self.vocab_size, size=min(tgt_len, self.max_len))
        return src, tgt

    def encoded(self, index: int) -> bytes:
        src, tgt = self.sentence_pair(index)
        return (
            len(src).to_bytes(4, "little")
            + src.astype(np.int32).tobytes()
            + tgt.astype(np.int32).tobytes()
        )

    def padded_batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pad a batch of source/target pairs to ``max_len`` (id 0 = pad)."""
        srcs = np.zeros((len(indices), self.max_len), dtype=np.int64)
        tgts = np.zeros((len(indices), self.max_len), dtype=np.int64)
        for row, index in enumerate(indices):
            src, tgt = self.sentence_pair(int(index))
            srcs[row, : len(src)] = src
            tgts[row, : len(tgt)] = tgt
        return srcs, tgts

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_samples:
            raise IndexError(f"sample {index} out of range [0, {self.num_samples})")

    def __len__(self) -> int:
        return self.num_samples


__all__ = ["SyntheticImageDataset", "SyntheticTranslationDataset"]
