"""Simulated storage tiers with virtual-time accounting.

Each backend stores real byte payloads in memory (so cache correctness
is testable end to end) and charges a :class:`~repro.utils.clock.VirtualClock`
for every access according to its latency/bandwidth profile.  The
profiles of the NFS tier come from :mod:`repro.cluster.cloud_presets`
(paper Table 1 storage column).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cluster.cloud_presets import CFS_TIER, StorageTier
from repro.utils.clock import VirtualClock


class StorageBackend(abc.ABC):
    """A keyed byte store that charges virtual time per operation."""

    name: str = "storage"

    @abc.abstractmethod
    def read(self, key: str, clock: VirtualClock) -> bytes:
        """Read a payload, charging the clock.  Raises ``KeyError`` if absent."""

    @abc.abstractmethod
    def write(self, key: str, payload: bytes, clock: VirtualClock) -> None:
        """Store a payload, charging the clock."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        ...

    @abc.abstractmethod
    def nbytes(self) -> int:
        """Total stored bytes (for capacity accounting)."""


@dataclass(frozen=True)
class StorageProfile:
    """Latency/bandwidth pair for one direction of a tier."""

    latency: float  # seconds per request
    bandwidth: float  # bytes per second

    def time(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


class _DictStore(StorageBackend):
    """Shared dict-backed implementation for all tiers."""

    def __init__(self, read_profile: StorageProfile, write_profile: StorageProfile) -> None:
        self._data: dict[str, bytes] = {}
        self._read = read_profile
        self._write = write_profile

    def read(self, key: str, clock: VirtualClock) -> bytes:
        if key not in self._data:
            raise KeyError(f"{self.name}: no such key {key!r}")
        payload = self._data[key]
        clock.advance(self._read.time(len(payload)), category=f"{self.name}.read")
        return payload

    def write(self, key: str, payload: bytes, clock: VirtualClock) -> None:
        clock.advance(self._write.time(len(payload)), category=f"{self.name}.write")
        self._data[key] = bytes(payload)

    def contains(self, key: str) -> bool:
        return key in self._data

    def nbytes(self) -> int:
        return sum(len(v) for v in self._data.values())

    def keys(self):
        return self._data.keys()

    def __len__(self) -> int:
        return len(self._data)


class NfsStore(_DictStore):
    """The networked file system tier (CFS on the paper's testbed).

    Read performance "may be limited by the network bandwidth and
    latency" (§4.1); per-request latency dominates small-file reads,
    which is why the loader batches requests.
    """

    name = "nfs"

    def __init__(self, tier: StorageTier = CFS_TIER) -> None:
        profile = StorageProfile(tier.latency, tier.bandwidth)
        super().__init__(read_profile=profile, write_profile=profile)
        self.tier = tier


class LocalDiskStore(_DictStore):
    """The instance-local SSD / file-system cache tier."""

    name = "local_disk"

    def __init__(
        self,
        read_bandwidth: float = 2.0e9,
        write_bandwidth: float = 1.0e9,
        latency: float = 1e-4,
    ) -> None:
        super().__init__(
            read_profile=StorageProfile(latency, read_bandwidth),
            write_profile=StorageProfile(latency, write_bandwidth),
        )


class MemoryStore(_DictStore):
    """The in-memory key-value store of pre-processed samples.

    "we further cache the pre-processed data into memory using the
    key-value store, where the key is the sample index and the value is
    the pre-processed data" (§4.1).
    """

    name = "memory"

    def __init__(
        self,
        bandwidth: float = 10e9,
        latency: float = 2e-6,
        capacity_bytes: int | None = None,
    ) -> None:
        super().__init__(
            read_profile=StorageProfile(latency, bandwidth),
            write_profile=StorageProfile(latency, bandwidth),
        )
        self.capacity_bytes = capacity_bytes

    def write(self, key: str, payload: bytes, clock: VirtualClock) -> None:
        if (
            self.capacity_bytes is not None
            and not self.contains(key)
            and self.nbytes() + len(payload) > self.capacity_bytes
        ):
            raise MemoryError(
                f"memory cache over capacity: {self.nbytes() + len(payload)} "
                f"> {self.capacity_bytes} bytes — shard the dataset across "
                f"more nodes (paper §4.1)"
            )
        super().write(key, payload, clock)


__all__ = [
    "StorageBackend",
    "StorageProfile",
    "NfsStore",
    "LocalDiskStore",
    "MemoryStore",
]
