"""Distributed sampling aligned with the DataCache's node shards.

Synchronous data parallelism needs each of the ``P`` workers to see a
disjoint slice of every epoch's shuffle, and §4.1's memory cache wants a
worker's slice to stay inside its node's shard (so memory hits are
local).  This sampler provides both: a deterministic per-epoch global
permutation, restricted to the node's modulo shard, split across the
node's GPUs.

Matches the semantics of the framework samplers the paper's stack uses
(``tf.data`` sharding / ``DistributedSampler``): call
:meth:`epoch_indices` with the epoch number — all workers derive the
same permutation from the shared seed, no coordination needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.utils.seeding import derive_seed, new_rng


@dataclass(frozen=True)
class DistributedSampler:
    """Epoch-deterministic sampler for one worker of an ``m × n`` cluster.

    Parameters
    ----------
    num_samples:
        Dataset size.
    topology:
        The cluster; fixes node count and per-node worker count.
    rank:
        This worker's global rank.
    seed:
        Shared shuffle seed (identical on all workers).
    drop_last:
        Trim each worker's slice to a common length so every worker runs
        the same number of iterations (required for synchronous SGD).
    cache_aligned:
        When True (default), a worker only samples indices owned by its
        node's memory shard (``index % m == node``, the DataCache rule);
        when False, the global dataset is split worker-wise without
        regard to cache locality (the naive baseline).
    """

    num_samples: int
    topology: ClusterTopology
    rank: int
    seed: int = 0
    drop_last: bool = True
    cache_aligned: bool = True

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {self.num_samples}")
        if not 0 <= self.rank < self.topology.world_size:
            raise IndexError(
                f"rank {self.rank} out of range for world size "
                f"{self.topology.world_size}"
            )

    @property
    def node(self) -> int:
        return self.topology.node_of(self.rank)

    @property
    def local_rank(self) -> int:
        return self.topology.local_rank_of(self.rank)

    def _pool(self) -> np.ndarray:
        """The index pool this worker draws from."""
        if self.cache_aligned:
            return np.arange(self.node, self.num_samples, self.topology.num_nodes)
        return np.arange(self.num_samples)

    def samples_per_worker(self) -> int:
        """Common per-worker slice length (after ``drop_last``)."""
        if self.cache_aligned:
            # Smallest node pool, split across n local workers.
            m, n = self.topology.num_nodes, self.topology.gpus_per_node
            smallest_pool = self.num_samples // m
            return max(1, smallest_pool // n)
        return max(1, self.num_samples // self.topology.world_size)

    def epoch_indices(self, epoch: int) -> np.ndarray:
        """This worker's sample indices for one epoch.

        Deterministic in ``(seed, epoch)``; across the whole cluster the
        per-epoch slices are pairwise disjoint (tested).
        """
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        pool = self._pool()
        rng = new_rng(derive_seed(self.seed, "sampler-epoch", epoch, "node",
                                  self.node if self.cache_aligned else "global"))
        permuted = pool[rng.permutation(pool.size)]
        if self.cache_aligned:
            splits = self.topology.gpus_per_node
            position = self.local_rank
        else:
            splits = self.topology.world_size
            position = self.rank
        slice_ = permuted[position::splits]
        if self.drop_last:
            slice_ = slice_[: self.samples_per_worker()]
        return slice_


def make_samplers(
    num_samples: int,
    topology: ClusterTopology,
    *,
    seed: int = 0,
    cache_aligned: bool = True,
) -> list[DistributedSampler]:
    """One sampler per global rank."""
    return [
        DistributedSampler(
            num_samples, topology, rank, seed=seed, cache_aligned=cache_aligned
        )
        for rank in range(topology.world_size)
    ]


__all__ = ["DistributedSampler", "make_samplers"]
