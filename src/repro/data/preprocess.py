"""Decode and augmentation pipeline.

"the pre-processing process includes the decoding of input images (e.g.,
JPEG files) and normalization.  Then the pre-processed data should be
augmented (e.g., mirror, crop, etc.) before sent to GPU" (§4.1).

Synthetic encoded images carry a header (sample id, resolution) followed
by a compressed-size filler payload; :func:`decode_image` expands the
header deterministically into a pixel array (real NumPy work), and
:func:`augment_image` applies a real random crop + horizontal flip +
normalisation.  Virtual CPU cost is charged through
:class:`PreprocessModel` so the Fig. 1 / Fig. 9 I/O accounting matches a
real CPU-bound pipeline.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import RandomState, new_rng

#: Encoded header: magic, sample id, height, width.
_HEADER = struct.Struct("<4sIHH")
_MAGIC = b"SIMG"

#: ImageNet-ish channel statistics used for normalisation.
_CHANNEL_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
_CHANNEL_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


def encode_image(sample_id: int, resolution: int, *, quality_bytes_per_pixel: float = 0.6) -> bytes:
    """Produce a synthetic 'JPEG': a header plus compressed-size filler.

    The filler length models JPEG compression (~0.6 bytes/pixel for
    photographic content), so storage-tier timing sees realistic sizes.
    """
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    if sample_id < 0:
        raise ValueError(f"sample_id must be non-negative, got {sample_id}")
    header = _HEADER.pack(_MAGIC, sample_id, resolution, resolution)
    payload_len = max(0, int(resolution * resolution * quality_bytes_per_pixel) - len(header))
    # Deterministic filler; content is irrelevant, length is what matters.
    filler = (sample_id % 251).to_bytes(1, "little") * payload_len
    return header + filler


def decode_image(encoded: bytes) -> np.ndarray:
    """Decode a synthetic image into an ``(H, W, 3)`` uint8 array.

    Deterministic in the sample id, so a cache hit provably returns the
    same pixels as a fresh decode.
    """
    if len(encoded) < _HEADER.size:
        raise ValueError("encoded payload too short for header")
    magic, sample_id, height, width = _HEADER.unpack(encoded[: _HEADER.size])
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}: not a synthetic image")
    rng = new_rng(0x51AB00 + sample_id)
    return rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)


def augment_image(
    image: np.ndarray, out_resolution: int, rng: RandomState
) -> np.ndarray:
    """Random crop to ``out_resolution``, random mirror, normalise to float32."""
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got shape {image.shape}")
    height, width, _ = image.shape
    if out_resolution > min(height, width):
        # Upsample by tiling (nearest) when the stored resolution is
        # smaller than requested — keeps the pipeline total.
        reps = int(np.ceil(out_resolution / min(height, width)))
        image = np.tile(image, (reps, reps, 1))
        height, width, _ = image.shape
    top = int(rng.integers(0, height - out_resolution + 1))
    left = int(rng.integers(0, width - out_resolution + 1))
    crop = image[top : top + out_resolution, left : left + out_resolution]
    if rng.random() < 0.5:
        crop = crop[:, ::-1]
    out = crop.astype(np.float32) / 255.0
    return (out - _CHANNEL_MEAN) / _CHANNEL_STD


@dataclass(frozen=True)
class PreprocessModel:
    """Virtual CPU cost of the pre-processing stages.

    JPEG decoding runs at a few tens of MB of *pixels* per second per
    core; cloud training instances dedicate a handful of cores per GPU
    to the input pipeline.  Costs are per byte of decoded pixel data.
    """

    decode_bytes_per_sec: float = 80e6
    augment_bytes_per_sec: float = 400e6

    def decode_time(self, pixel_bytes: int) -> float:
        if pixel_bytes < 0:
            raise ValueError(f"pixel_bytes must be non-negative, got {pixel_bytes}")
        return pixel_bytes / self.decode_bytes_per_sec

    def augment_time(self, pixel_bytes: int) -> float:
        if pixel_bytes < 0:
            raise ValueError(f"pixel_bytes must be non-negative, got {pixel_bytes}")
        return pixel_bytes / self.augment_bytes_per_sec


def preprocess_sample(
    encoded: bytes,
    out_resolution: int,
    rng: RandomState,
) -> np.ndarray:
    """Full pipeline: decode + augment (the work DataCache memoises)."""
    return augment_image(decode_image(encoded), out_resolution, rng)


__all__ = [
    "encode_image",
    "decode_image",
    "augment_image",
    "preprocess_sample",
    "PreprocessModel",
]
