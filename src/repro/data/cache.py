"""The multi-level DataCache (paper §4.1, Fig. 5).

Read path for one sample:

* **memory cache hit** (second or higher epochs) — return the cached
  pre-processed pixels;
* **local-disk hit** (second or higher *runs*) — read the encoded bytes
  from the local FS cache, decode, store in memory;
* **miss** (first epoch of the first run) — read from NFS, populate the
  local FS cache, decode, store the pre-processed result in memory.

Augmentation is *not* cached (it must be resampled every epoch); decode
is, which is the expensive CPU part.  The memory footprint is bounded by
sharding the dataset across nodes: node ``i`` of ``m`` keeps samples
with ``index % m == i`` and fetches the rest through its shard owner —
the paper's "the full data set is split into multiple parts that are
separately stored on multiple nodes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.data.dataset import SyntheticImageDataset
from repro.data.preprocess import (
    PreprocessModel,
    augment_image,
    decode_image,
)
from repro.data.storage import LocalDiskStore, MemoryStore, NfsStore
from repro.utils.clock import VirtualClock
from repro.utils.seeding import RandomState


class CacheLevel(Enum):
    """Where a read was satisfied."""

    MEMORY = "memory"
    LOCAL_DISK = "local_disk"
    NFS = "nfs"


@dataclass
class CacheStats:
    """Hit counters per level plus byte counters."""

    memory_hits: int = 0
    disk_hits: int = 0
    nfs_reads: int = 0
    decoded_samples: int = 0
    bytes_from_nfs: int = 0

    def record(self, level: CacheLevel, nbytes: int = 0) -> None:
        if level is CacheLevel.MEMORY:
            self.memory_hits += 1
        elif level is CacheLevel.LOCAL_DISK:
            self.disk_hits += 1
        else:
            self.nfs_reads += 1
            self.bytes_from_nfs += nbytes

    @property
    def total_reads(self) -> int:
        return self.memory_hits + self.disk_hits + self.nfs_reads

    def hit_rate(self) -> float:
        total = self.total_reads
        if total == 0:
            return 0.0
        return self.memory_hits / total


@dataclass
class ReadOutcome:
    """One sample read: the pixels, where they came from, and the cost."""

    pixels: np.ndarray
    level: CacheLevel
    io_seconds: float
    preprocess_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.io_seconds + self.preprocess_seconds


@dataclass
class DataCache:
    """Per-node multi-level cache over a :class:`SyntheticImageDataset`.

    Parameters
    ----------
    dataset:
        The backing dataset; its encoded payloads are materialised into
        the NFS store on construction (free — they "already exist").
    nfs / local_disk / memory:
        Storage tiers (defaults model the Tencent testbed).
    node / num_nodes:
        This node's memory-shard assignment.  ``num_nodes == 1`` keeps
        everything locally.
    enable_local_disk / enable_memory:
        Toggles for the ablation in Fig. 9 ("Naive" disables both).
    preprocess:
        CPU cost model for decode/augment.
    """

    dataset: SyntheticImageDataset
    nfs: NfsStore = field(default_factory=NfsStore)
    local_disk: LocalDiskStore = field(default_factory=LocalDiskStore)
    memory: MemoryStore = field(default_factory=MemoryStore)
    node: int = 0
    num_nodes: int = 1
    enable_local_disk: bool = True
    enable_memory: bool = True
    preprocess: PreprocessModel = field(default_factory=PreprocessModel)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if not 0 <= self.node < self.num_nodes:
            raise ValueError(
                f"node {self.node} out of range for {self.num_nodes} nodes"
            )
        # Materialise the dataset into the (virtual) NFS without charging
        # time — the data pre-exists the training job.
        setup_clock = VirtualClock()
        for index in range(len(self.dataset)):
            self.nfs.write(self.dataset.key(index), self.dataset.encoded(index), setup_clock)

    # ------------------------------------------------------------------
    def owns(self, index: int) -> bool:
        """Whether this node's memory shard holds ``index`` (paper §4.1)."""
        return index % self.num_nodes == self.node

    def read(self, index: int, clock: VirtualClock, rng: RandomState, *,
             out_resolution: int | None = None) -> ReadOutcome:
        """Read + pre-process one sample through the cache hierarchy."""
        key = self.dataset.key(index)
        out_resolution = out_resolution or self.dataset.resolution
        pixel_bytes = self.dataset.resolution * self.dataset.resolution * 3

        start = clock.now
        if self.enable_memory and self.memory.contains(key):
            payload = self.memory.read(key, clock)
            pixels = np.frombuffer(payload, dtype=np.uint8).reshape(
                self.dataset.resolution, self.dataset.resolution, 3
            )
            level = CacheLevel.MEMORY
        else:
            if self.enable_local_disk and self.local_disk.contains(key):
                encoded = self.local_disk.read(key, clock)
                level = CacheLevel.LOCAL_DISK
            else:
                encoded = self.nfs.read(key, clock)
                level = CacheLevel.NFS
                if self.enable_local_disk:
                    self.local_disk.write(key, encoded, clock)
            pixels = decode_image(encoded)
            clock.advance(self.preprocess.decode_time(pixel_bytes), category="decode")
            self.stats.decoded_samples += 1
            if self.enable_memory and self.owns(index):
                self.memory.write(key, pixels.tobytes(), clock)
        io_seconds = clock.now - start
        self.stats.record(level, nbytes=self.dataset.encoded_sample_bytes)

        # Augmentation happens on every epoch regardless of caching.
        aug_start = clock.now
        out = augment_image(pixels, out_resolution, rng)
        clock.advance(
            self.preprocess.augment_time(out_resolution * out_resolution * 3 * 4),
            category="augment",
        )
        return ReadOutcome(
            pixels=out,
            level=level,
            io_seconds=io_seconds,
            preprocess_seconds=clock.now - aug_start,
        )

    def warm_memory_fraction(self) -> float:
        """Fraction of this node's shard already resident in memory."""
        owned = [i for i in range(len(self.dataset)) if self.owns(i)]
        if not owned:
            return 0.0
        resident = sum(self.memory.contains(self.dataset.key(i)) for i in owned)
        return resident / len(owned)


__all__ = ["CacheLevel", "CacheStats", "ReadOutcome", "DataCache"]
