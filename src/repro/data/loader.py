"""Data loader with prefetch pipelining over the DataCache.

"With pipelining between data reading and GPU computations, the time
cost of data reading from the memory cache can be almost fully
overlapped by GPU computations" (§4.1).  The loader models that overlap:
per iteration, the *visible* input-pipeline time is what exceeds the GPU
compute time (plus a small straggler residue), while the naive
un-pipelined path pays the full cost — which is how Fig. 9's two bars
arise from one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.cache import CacheLevel, DataCache
from repro.utils.clock import VirtualClock
from repro.utils.seeding import RandomState, new_rng


@dataclass
class EpochTimings:
    """Virtual-time accounting for one epoch of data loading."""

    epoch: int
    iterations: int = 0
    io_seconds: float = 0.0  # storage reads + decode
    preprocess_seconds: float = 0.0  # augmentation
    visible_seconds: float = 0.0  # what the training loop actually waits
    level_counts: dict[str, int] = field(default_factory=dict)

    @property
    def total_pipeline_seconds(self) -> float:
        return self.io_seconds + self.preprocess_seconds

    def per_iteration_visible(self) -> float:
        if self.iterations == 0:
            return 0.0
        return self.visible_seconds / self.iterations


class CachedDataLoader:
    """Batched loader over a :class:`DataCache` partition.

    Parameters
    ----------
    cache:
        The node's DataCache.
    batch_size:
        Samples per iteration.
    partition:
        Sample indices this worker is responsible for (node-sharded so
        cache ownership lines up with access; see
        :meth:`DataCache.owns`).
    decode_workers:
        Parallel input-pipeline workers dividing the decode cost (the
        paper's baselines vary here: Fig. 9's single-GPU measurement is
        effectively serial, the 128-GPU system uses a worker pool).
    pipelined:
        When True, pipeline time hides behind ``gpu_seconds`` up to a
        straggler residue; when False the full cost is visible (the
        "Naive" bar of Fig. 9).
    straggler_fraction:
        Residual fraction of pipeline time that stays visible even when
        fully overlapped (queue jitter).
    """

    def __init__(
        self,
        cache: DataCache,
        batch_size: int,
        *,
        partition: np.ndarray | None = None,
        decode_workers: int = 1,
        pipelined: bool = True,
        straggler_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if decode_workers < 1:
            raise ValueError(f"decode_workers must be >= 1, got {decode_workers}")
        if not 0 <= straggler_fraction <= 1:
            raise ValueError(
                f"straggler_fraction must be in [0, 1], got {straggler_fraction}"
            )
        self.cache = cache
        self.batch_size = batch_size
        if partition is None:
            partition = np.array(
                [i for i in range(len(cache.dataset)) if cache.owns(i)], dtype=np.int64
            )
        self.partition = np.asarray(partition, dtype=np.int64)
        if self.partition.size == 0:
            raise ValueError("empty partition")
        self.decode_workers = decode_workers
        self.pipelined = pipelined
        self.straggler_fraction = straggler_fraction
        self._rng = new_rng(seed)

    def iterations_per_epoch(self) -> int:
        return max(1, self.partition.size // self.batch_size)

    def epoch_batches(
        self,
        epoch: int,
        *,
        out_resolution: int | None = None,
        rng: RandomState | None = None,
    ) -> Iterator[tuple[np.ndarray, np.ndarray, float, float]]:
        """Yield ``(batch, labels, io_seconds, preprocess_seconds)`` per iteration."""
        rng = rng if rng is not None else self._rng
        order = self.partition.copy()
        rng.shuffle(order)
        n_iter = self.iterations_per_epoch()
        for it in range(n_iter):
            indices = order[it * self.batch_size : (it + 1) * self.batch_size]
            clock = VirtualClock()
            samples = []
            labels = []
            io_s = 0.0
            pre_s = 0.0
            for index in indices:
                outcome = self.cache.read(
                    int(index), clock, rng, out_resolution=out_resolution
                )
                samples.append(outcome.pixels)
                labels.append(self.cache.dataset.label(int(index)))
                io_s += outcome.io_seconds
                pre_s += outcome.preprocess_seconds
            # Parallel worker pool divides decode/augment wall time.
            io_s /= self.decode_workers
            pre_s /= self.decode_workers
            yield np.stack(samples), np.asarray(labels), io_s, pre_s

    def run_epoch(
        self,
        epoch: int,
        *,
        gpu_seconds_per_iteration: float = 0.0,
        out_resolution: int | None = None,
        rng: RandomState | None = None,
    ) -> EpochTimings:
        """Stream a full epoch, returning the visible-time accounting."""
        timings = EpochTimings(epoch=epoch)
        for _, _, io_s, pre_s in self.epoch_batches(
            epoch, out_resolution=out_resolution, rng=rng
        ):
            timings.iterations += 1
            timings.io_seconds += io_s
            timings.preprocess_seconds += pre_s
            pipeline = io_s + pre_s
            if self.pipelined:
                hidden = min(pipeline, gpu_seconds_per_iteration)
                visible = (pipeline - hidden) + self.straggler_fraction * hidden
            else:
                visible = pipeline
            timings.visible_seconds += visible
        # Count cache levels from the cache's stats snapshot.
        timings.level_counts = {
            CacheLevel.MEMORY.value: self.cache.stats.memory_hits,
            CacheLevel.LOCAL_DISK.value: self.cache.stats.disk_hits,
            CacheLevel.NFS.value: self.cache.stats.nfs_reads,
        }
        return timings


__all__ = ["CachedDataLoader", "EpochTimings"]
