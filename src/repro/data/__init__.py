"""DataCache — multi-level data caching for efficient data reading (§4.1).

On public clouds the training data sits in a networked file system whose
read path is slow; pre-processing (decode + augmentation) then burns CPU
every epoch.  The paper's DataCache layers three tiers:

1. **NFS** (CFS/EBS/OSS) — the source of truth; paid on the first epoch
   of the first run;
2. **local file-system cache** — makes *subsequent runs* (hyper-parameter
   tuning) cheap;
3. **in-memory key-value store of pre-processed samples** — makes
   *subsequent epochs* nearly free, with the dataset sharded across the
   nodes' memory to bound per-node consumption.

This package implements the tiers with real payloads (synthetic encoded
images that actually decode to pixel arrays) and *virtual-time*
accounting for every read/decode, so Fig. 9 can be regenerated
deterministically.
"""

from repro.data.cache import CacheStats, DataCache, ReadOutcome
from repro.data.dataset import (
    SyntheticImageDataset,
    SyntheticTranslationDataset,
)
from repro.data.loader import CachedDataLoader, EpochTimings
from repro.data.preprocess import (
    PreprocessModel,
    augment_image,
    decode_image,
    preprocess_sample,
)
from repro.data.sampler import DistributedSampler, make_samplers
from repro.data.storage import (
    LocalDiskStore,
    MemoryStore,
    NfsStore,
    StorageBackend,
)

__all__ = [
    "StorageBackend",
    "NfsStore",
    "LocalDiskStore",
    "MemoryStore",
    "DataCache",
    "CacheStats",
    "ReadOutcome",
    "SyntheticImageDataset",
    "SyntheticTranslationDataset",
    "decode_image",
    "augment_image",
    "preprocess_sample",
    "PreprocessModel",
    "CachedDataLoader",
    "EpochTimings",
    "DistributedSampler",
    "make_samplers",
]
