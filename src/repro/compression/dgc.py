"""DGC double-sampling top-k (Lin et al. 2018), the Fig. 6 baseline.

Deep Gradient Compression estimates the selection threshold from a
random sample: run an exact top-k on ``sample_fraction * d`` sampled
magnitudes to get a threshold, select every element above it, and — if
the estimate overshoots — run a *second* exact top-k on the candidate
set.  The paper's critique (§6): "it also requires at least two times of
top-k operations on GPUs", so it inherits part of the sort cost MSTopK
avoids.
"""

from __future__ import annotations

import math

import numpy as np

from repro.collectives.sparse import SparseVector
from repro.compression.base import TopKCompressor
from repro.compression.exact_topk import topk_argpartition
from repro.utils.seeding import RandomState, new_rng


class DGCTopK(TopKCompressor):
    """Double-sampling approximate top-k.

    Parameters
    ----------
    sample_fraction:
        Fraction of elements sampled for threshold estimation (DGC uses
        0.1%–1% at ImageNet scale; we default to 1%).
    headroom:
        Over-selection factor applied to the sample-estimated rank to
        reduce the chance of undershooting (DGC samples the threshold at
        rank ``headroom * k * sample_fraction``).
    """

    def __init__(self, sample_fraction: float = 0.01, headroom: float = 1.0) -> None:
        if not 0 < sample_fraction <= 1:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        self.sample_fraction = sample_fraction
        self.headroom = headroom
        self.name = "DGC"

    def select(
        self, x: np.ndarray, k: int, *, rng: RandomState | None = None
    ) -> SparseVector:
        x = self._validate(x, k)
        if k == 0:
            return SparseVector(
                np.empty(0, dtype=x.dtype), np.empty(0, dtype=np.int64), x.size
            )
        if k == x.size:
            return SparseVector(x.copy(), np.arange(x.size, dtype=np.int64), x.size)
        rng = rng if rng is not None else new_rng()

        magnitude = np.abs(x)
        d = x.size
        sample_size = max(1, int(d * self.sample_fraction))
        sample_idx = rng.integers(0, d, size=sample_size)
        sample = magnitude[sample_idx]

        # First top-k: on the sample, at the scaled rank.
        sample_k = min(
            sample_size, max(1, int(math.ceil(self.headroom * k * self.sample_fraction)))
        )
        thres = float(
            np.partition(sample, sample_size - sample_k)[sample_size - sample_k]
        )

        candidates = np.flatnonzero(magnitude >= thres)
        if candidates.size >= k:
            # Second top-k: exact selection among the candidates.
            sub = topk_argpartition(x[candidates], k)
            indices = candidates[sub.indices].astype(np.int64)
        else:
            # Threshold overshot (sample missed the tail): fall back to an
            # exact selection over the full vector, as real DGC
            # implementations do on estimation failure.
            indices = topk_argpartition(x, k).indices
        return SparseVector(x[indices], indices, x.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DGCTopK(sample_fraction={self.sample_fraction}, headroom={self.headroom})"
        )


__all__ = ["DGCTopK"]
