"""Gradient compression operators.

The paper's first contribution is **MSTopK** (§3.1, Algorithm 1), an
approximate top-k selection that replaces sort-based selection with a
fixed number of binary-search threshold passes.  This package implements
it alongside the baselines it is compared against in Fig. 6:

* :mod:`repro.compression.exact_topk` — sort-based exact top-k (the
  ``nn.topk`` analogue) and an ``argpartition`` variant;
* :mod:`repro.compression.dgc` — the double-sampling selection of Deep
  Gradient Compression (Lin et al. 2018);
* :mod:`repro.compression.mstopk` — Algorithm 1;
* :mod:`repro.compression.randomk` — random-k (convergence baseline);
* :mod:`repro.compression.quantize` — FP16 and QSGD quantisers
  (related-work baselines, §6);
* :mod:`repro.compression.error_feedback` — the residual memory that
  makes sparsified SGD converge (Stich et al. 2018; Karimireddy et al.
  2019).
"""

from repro.compression.base import TopKCompressor, density_to_k
from repro.compression.dgc import DGCTopK
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.exact_topk import ExactTopK, naive_topk_sort, topk_argpartition
from repro.compression.mstopk import (
    MSTopK,
    mstopk_select,
    mstopk_select_batch,
    mstopk_threshold_search,
    mstopk_threshold_search_batch,
)
from repro.compression.quantize import FP16Quantizer, QSGDQuantizer, Quantizer
from repro.compression.randomk import RandomK
from repro.compression.theory import (
    CompressionDiagnostics,
    contraction_factor,
    residual_norm_bound,
    topk_contraction_bound,
)

__all__ = [
    "TopKCompressor",
    "density_to_k",
    "ExactTopK",
    "naive_topk_sort",
    "topk_argpartition",
    "DGCTopK",
    "MSTopK",
    "mstopk_select",
    "mstopk_select_batch",
    "mstopk_threshold_search",
    "mstopk_threshold_search_batch",
    "RandomK",
    "Quantizer",
    "FP16Quantizer",
    "QSGDQuantizer",
    "ErrorFeedback",
    "contraction_factor",
    "topk_contraction_bound",
    "residual_norm_bound",
    "CompressionDiagnostics",
]
