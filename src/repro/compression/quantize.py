"""Quantisation baselines (related work, paper §6).

The paper's Fig. 7 measures collectives with FP16 elements ("we use the
16-bit floating point (FP16) for each element which is widely used in
V100 GPU clusters"), and its related work cites QSGD (Alistarh et al.
2017).  These quantisers let the comm schemes and the convergence
harness exercise those code paths.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import RandomState, new_rng


@dataclass(frozen=True)
class QuantizedTensor:
    """An encoded tensor plus the metadata needed to decode it."""

    payload: np.ndarray
    scale: float
    original_dtype: np.dtype
    nbytes: int


class Quantizer(abc.ABC):
    """Lossy dense encoder/decoder."""

    name: str = "quantizer"

    @abc.abstractmethod
    def encode(self, x: np.ndarray, *, rng: RandomState | None = None) -> QuantizedTensor:
        ...

    @abc.abstractmethod
    def decode(self, q: QuantizedTensor) -> np.ndarray:
        ...

    def roundtrip(self, x: np.ndarray, *, rng: RandomState | None = None) -> np.ndarray:
        return self.decode(self.encode(x, rng=rng))


class FP16Quantizer(Quantizer):
    """Half-precision cast — the wire format of the paper's Fig. 7 runs."""

    name = "fp16"

    def encode(self, x: np.ndarray, *, rng: RandomState | None = None) -> QuantizedTensor:
        x = np.asarray(x)
        payload = x.astype(np.float16)
        return QuantizedTensor(payload, 1.0, x.dtype, payload.nbytes)

    def decode(self, q: QuantizedTensor) -> np.ndarray:
        return q.payload.astype(q.original_dtype)


class QSGDQuantizer(Quantizer):
    """QSGD stochastic uniform quantisation (Alistarh et al. 2017).

    Encodes ``x`` as ``sign * level / s * ||x||_2`` where ``level`` is a
    stochastically rounded integer in ``[0, s]``.  The encoding is an
    unbiased estimator of ``x`` (property-tested).
    """

    name = "qsgd"

    def __init__(self, levels: int = 255) -> None:
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.levels = levels

    def encode(self, x: np.ndarray, *, rng: RandomState | None = None) -> QuantizedTensor:
        x = np.asarray(x, dtype=np.float64)
        rng = rng if rng is not None else new_rng()
        norm = float(np.linalg.norm(x))
        if norm == 0.0:
            payload = np.zeros(x.size, dtype=np.int16)
            return QuantizedTensor(payload, 0.0, x.dtype, payload.nbytes)
        ratio = np.abs(x) / norm * self.levels
        floor = np.floor(ratio)
        prob = ratio - floor
        level = floor + (rng.random(x.size) < prob)
        payload = (np.sign(x) * level).astype(np.int16)
        return QuantizedTensor(payload, norm / self.levels, x.dtype, payload.nbytes)

    def decode(self, q: QuantizedTensor) -> np.ndarray:
        return (q.payload.astype(np.float64) * q.scale).astype(q.original_dtype)


__all__ = ["QuantizedTensor", "Quantizer", "FP16Quantizer", "QSGDQuantizer"]
