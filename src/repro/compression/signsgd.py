"""EF-SignSGD — 1-bit sign compression with error feedback.

The paper's related work leans on Karimireddy et al. 2019 ("Error
feedback fixes SignSGD and other gradient compression schemes") for the
theory its own error feedback relies on.  This module provides that
scheme as a comparison point: each worker transmits ``sign(x)`` plus one
scale ``mean(|x|)`` — a fixed 32× compression independent of sparsity.

It quantises *densely* (every coordinate survives, coarsely) where
top-k sparsifies (few coordinates survive, exactly); the convergence
runner can pit the two philosophies against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import RandomState


@dataclass(frozen=True)
class SignCompressed:
    """Wire format of one EF-SignSGD message: signs + one scale."""

    signs: np.ndarray  # int8 in {-1, 0, +1}
    scale: float
    length: int

    def to_dense(self) -> np.ndarray:
        return self.signs.astype(np.float64) * self.scale

    @property
    def nbytes_on_wire(self) -> int:
        # 1 bit per sign (packed) + one FP32 scale.
        return (self.length + 7) // 8 + 4


class SignSGDCompressor:
    """scaled-sign quantiser with built-in residual memory.

    ``compress(key, grad)`` applies the residual, emits the sign message
    and stores the new residual — one call per worker per iteration, as
    in the EF-SignSGD algorithm.
    """

    name = "EF-SignSGD"

    def __init__(self) -> None:
        self._residuals: dict[object, np.ndarray] = {}

    def compress(
        self, key: object, grad: np.ndarray, *, rng: RandomState | None = None
    ) -> SignCompressed:
        grad = np.asarray(grad, dtype=np.float64)
        residual = self._residuals.get(key)
        corrected = grad if residual is None else grad + residual
        scale = float(np.mean(np.abs(corrected)))
        signs = np.sign(corrected).astype(np.int8)
        message = SignCompressed(signs, scale, corrected.size)
        self._residuals[key] = corrected - message.to_dense()
        return message

    def residual(self, key: object) -> np.ndarray | None:
        return self._residuals.get(key)

    def reset(self) -> None:
        self._residuals.clear()


def signsgd_allreduce(messages: list[SignCompressed]) -> np.ndarray:
    """Aggregate EF-SignSGD messages: average of the scaled signs."""
    if not messages:
        raise ValueError("empty worker group")
    length = messages[0].length
    for msg in messages:
        if msg.length != length:
            raise ValueError("length mismatch across workers")
    total = np.zeros(length)
    for msg in messages:
        total += msg.to_dense()
    return total


__all__ = ["SignCompressed", "SignSGDCompressor", "signsgd_allreduce"]
