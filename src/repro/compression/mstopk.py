"""MSTopK — the paper's approximate top-k operator (§3.1, Algorithm 1).

The idea: instead of sorting, binary-search a magnitude threshold in the
range ``[mean(|x|), max(|x|)]``.  Each of the ``N`` search iterations is
a single coalesced count-above-threshold pass (GPU friendly).  After the
search, two thresholds bracket the exact one:

* ``thres1`` — the tightest threshold that selects *at most* ``k``
  elements (``k1`` of them);
* ``thres2`` — the tightest threshold that selects *more than* ``k``
  elements (``k2`` of them).

All ``k1`` elements above ``thres1`` are taken, and the remaining
``k - k1`` are drawn as a random contiguous run from the band
``thres2 <= |x| < thres1`` (Algorithm 1 lines 25–29) — contiguous so the
gather stays coalesced.  The output has *exactly* ``k`` entries, and
every element above ``thres1`` is guaranteed present, so the
approximation can only differ from exact top-k inside the band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collectives.sparse import SparseVector
from repro.compression.base import TopKCompressor
from repro.utils.seeding import RandomState

#: Paper setting: "The number of samplings for MSTopK is 30" (Fig. 6).
DEFAULT_N_SAMPLINGS = 30


@dataclass(frozen=True)
class ThresholdSearchResult:
    """Outcome of the binary threshold search (Algorithm 1 lines 1–24)."""

    thres1: float  # selects k1 <= k elements
    thres2: float  # selects k2 > k elements (or 0.0 if never found)
    k1: int
    k2: int
    iterations: int


def mstopk_threshold_search(
    magnitude: np.ndarray, k: int, n_samplings: int = DEFAULT_N_SAMPLINGS
) -> ThresholdSearchResult:
    """Binary-search bracketing thresholds for ``k`` on ``|x|``.

    ``magnitude`` must already be the absolute values.  Follows Algorithm
    1 exactly: the search interval is the ratio ``[l, r] ⊂ [0, 1]``
    mapped onto ``[mean, max]`` of the magnitudes.
    """
    if n_samplings < 1:
        raise ValueError(f"n_samplings must be >= 1, got {n_samplings}")
    d = magnitude.size
    if not 1 <= k <= d:
        raise ValueError(f"k={k} out of range for vector of size {d}")

    mean = float(magnitude.mean())
    top = float(magnitude.max())
    lo, hi = 0.0, 1.0
    k1, k2 = 0, d
    thres1, thres2 = 0.0, 0.0

    for _ in range(n_samplings):
        ratio = lo + (hi - lo) / 2.0
        thres = mean + ratio * (top - mean)
        nnz = int(np.count_nonzero(magnitude >= thres))
        if nnz <= k:
            hi = ratio
            if nnz > k1 or thres1 == 0.0:
                k1 = nnz
                thres1 = thres
        else:
            lo = ratio
            if nnz < k2:
                k2 = nnz
                thres2 = thres

    return ThresholdSearchResult(thres1, thres2, k1, k2, n_samplings)


def mstopk_select(
    x: np.ndarray,
    k: int,
    *,
    n_samplings: int = DEFAULT_N_SAMPLINGS,
    rng: RandomState | None = None,
) -> SparseVector:
    """Approximate top-k selection (Algorithm 1), returning exactly ``k`` entries.

    Parameters
    ----------
    x:
        Input vector.
    k:
        Number of entries to keep (``0 <= k <= len(x)``).
    n_samplings:
        Binary-search iterations ``N`` (paper default 30).
    rng:
        Source of the random offset for the contiguous tail run (line 27).
        ``None`` uses offset 0, which is deterministic and unbiased across
        iterations only if the gradient layout varies; training code
        passes per-worker generators.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"input must be 1-D, got shape {x.shape}")
    if not 0 <= k <= x.size:
        raise ValueError(f"k={k} out of range for vector of size {x.size}")
    if k == 0:
        return SparseVector(np.empty(0, dtype=x.dtype), np.empty(0, dtype=np.int64), x.size)
    if k == x.size:
        return SparseVector(x.copy(), np.arange(x.size, dtype=np.int64), x.size)

    magnitude = np.abs(x)
    search = mstopk_threshold_search(magnitude, k, n_samplings)
    thres1, k1 = search.thres1, search.k1

    if thres1 > 0.0:
        head = np.flatnonzero(magnitude >= thres1)
        # Degenerate magnitude distributions (many ties at the max) can
        # make the count at thres1 exceed k; truncate to keep exactness.
        if head.size > k:
            head = head[:k]
        band = np.flatnonzero((magnitude < thres1) & (magnitude >= search.thres2))
    else:
        # thres1 was never established (possible only when every sampled
        # threshold selected more than k elements, e.g. near-constant
        # vectors).  Fall back to the band above thres2.
        head = np.empty(0, dtype=np.int64)
        band = np.flatnonzero(magnitude >= search.thres2)

    need = k - head.size
    if need > 0:
        if band.size < need:
            # Not enough candidates in the band (ties / degenerate data):
            # widen to everything not already selected.
            mask = np.ones(x.size, dtype=bool)
            mask[head] = False
            band = np.flatnonzero(mask)
        max_offset = band.size - need
        if rng is None or max_offset == 0:
            offset = 0
        else:
            offset = int(rng.integers(0, max_offset + 1))
        tail = band[offset : offset + need]
        indices = np.concatenate([head, tail]).astype(np.int64)
    else:
        indices = head.astype(np.int64)

    return SparseVector(x[indices], indices, x.size)


class MSTopK(TopKCompressor):
    """Compressor wrapper around :func:`mstopk_select`."""

    def __init__(self, n_samplings: int = DEFAULT_N_SAMPLINGS) -> None:
        if n_samplings < 1:
            raise ValueError(f"n_samplings must be >= 1, got {n_samplings}")
        self.n_samplings = n_samplings
        self.name = "MSTopK"

    def select(
        self, x: np.ndarray, k: int, *, rng: RandomState | None = None
    ) -> SparseVector:
        x = self._validate(x, k)
        return mstopk_select(x, k, n_samplings=self.n_samplings, rng=rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MSTopK(n_samplings={self.n_samplings})"


__all__ = [
    "DEFAULT_N_SAMPLINGS",
    "ThresholdSearchResult",
    "mstopk_threshold_search",
    "mstopk_select",
    "MSTopK",
]
