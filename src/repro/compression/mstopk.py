"""MSTopK — the paper's approximate top-k operator (§3.1, Algorithm 1).

The idea: instead of sorting, binary-search a magnitude threshold in the
range ``[mean(|x|), max(|x|)]``.  Each of the ``N`` search iterations is
a single coalesced count-above-threshold pass (GPU friendly).  After the
search, two thresholds bracket the exact one:

* ``thres1`` — the tightest threshold that selects *at most* ``k``
  elements (``k1`` of them);
* ``thres2`` — the tightest threshold that selects *more than* ``k``
  elements (``k2`` of them).

All ``k1`` elements above ``thres1`` are taken, and the remaining
``k - k1`` are drawn as a random contiguous run from the band
``thres2 <= |x| < thres1`` (Algorithm 1 lines 25–29) — contiguous so the
gather stays coalesced.  The output has *exactly* ``k`` entries, and
every element above ``thres1`` is guaranteed present, so the
approximation can only differ from exact top-k inside the band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.collectives.sparse import SparseVector
from repro.compression.base import TopKCompressor
from repro.utils.seeding import RandomState

#: Paper setting: "The number of samplings for MSTopK is 30" (Fig. 6).
DEFAULT_N_SAMPLINGS = 30


@dataclass(frozen=True)
class ThresholdSearchResult:
    """Outcome of the binary threshold search (Algorithm 1 lines 1–24).

    ``found1`` records explicitly whether ``thres1`` was ever
    established.  The previous implementation used ``thres1 == 0.0`` as
    the "unset" sentinel, which conflates "never bracketed" with a
    legitimately-zero threshold (an all-zero gradient, e.g. a frozen
    layer, with ``k == d``) and mis-brackets the selection.
    """

    thres1: float  # tightest threshold selecting k1 <= k elements
    thres2: float  # tightest threshold selecting k2 > k elements
    k1: int
    k2: int
    iterations: int
    found1: bool = False  # thres1 established (not the 0.0 sentinel)
    found2: bool = False  # thres2 established


def mstopk_threshold_search(
    magnitude: np.ndarray, k: int, n_samplings: int = DEFAULT_N_SAMPLINGS
) -> ThresholdSearchResult:
    """Binary-search bracketing thresholds for ``k`` on ``|x|``.

    ``magnitude`` must already be the absolute values.  Follows Algorithm
    1 exactly: the search interval is the ratio ``[l, r] ⊂ [0, 1]``
    mapped onto ``[mean, max]`` of the magnitudes.
    """
    if n_samplings < 1:
        raise ValueError(f"n_samplings must be >= 1, got {n_samplings}")
    d = magnitude.size
    if not 1 <= k <= d:
        raise ValueError(f"k={k} out of range for vector of size {d}")

    mean = float(magnitude.mean())
    top = float(magnitude.max())
    lo, hi = 0.0, 1.0
    k1, k2 = 0, d
    thres1, thres2 = 0.0, 0.0
    found1, found2 = False, False

    for _ in range(n_samplings):
        ratio = lo + (hi - lo) / 2.0
        thres = mean + ratio * (top - mean)
        nnz = int(np.count_nonzero(magnitude >= thres))
        if nnz <= k:
            hi = ratio
            if nnz > k1 or not found1:
                k1 = nnz
                thres1 = thres
                found1 = True
        else:
            lo = ratio
            if nnz < k2:
                k2 = nnz
                thres2 = thres
                found2 = True

    return ThresholdSearchResult(thres1, thres2, k1, k2, n_samplings, found1, found2)


def mstopk_threshold_search_batch(
    magnitudes: Sequence[np.ndarray],
    ks: Sequence[int],
    n_samplings: int = DEFAULT_N_SAMPLINGS,
) -> list[ThresholdSearchResult]:
    """Batched threshold search: one count pass per iteration for *all* shards.

    Bit-identical to calling :func:`mstopk_threshold_search` on every
    shard independently: per-shard ``mean``/``max`` are computed on the
    exact shard slices (so unequal shard lengths never perturb the
    pairwise summation), and the ``lo``/``hi``/``thres`` updates are the
    same IEEE-754 scalar operations applied elementwise.  The ``30 × n``
    Python-level count passes of the sequential path collapse into
    ``30`` broadcast passes over an ``(n_shards, max_len)`` matrix.
    """
    if n_samplings < 1:
        raise ValueError(f"n_samplings must be >= 1, got {n_samplings}")
    rows = [np.asarray(m) for m in magnitudes]
    if len(rows) != len(ks):
        raise ValueError(f"{len(rows)} shards but {len(ks)} k values")
    if not rows:
        return []
    lengths = np.array([r.size for r in rows])
    ks_arr = np.asarray(ks, dtype=np.int64)
    for i, (length, k) in enumerate(zip(lengths, ks_arr)):
        if rows[i].ndim != 1:
            raise ValueError(f"shard {i} must be 1-D, got shape {rows[i].shape}")
        if not 1 <= k <= length:
            raise ValueError(f"k={k} out of range for shard {i} of size {length}")

    n = len(rows)
    # Per-shard mean/max on the true slices (cheap, and bit-identical to
    # the scalar path — padding would perturb NumPy's pairwise sums).
    means = np.array([float(r.mean()) for r in rows])
    tops = np.array([float(r.max()) for r in rows])

    max_len = int(lengths.max())
    if bool(np.all(lengths == max_len)):
        mag = np.stack(rows)
        mask = None
    else:
        mag = np.zeros((n, max_len), dtype=np.result_type(*rows))
        mask = np.zeros((n, max_len), dtype=bool)
        for i, r in enumerate(rows):
            mag[i, : r.size] = r
            mask[i, : r.size] = True

    # Per-shard bracketing state stays in plain Python scalars (the
    # same IEEE-754 arithmetic as the scalar search, and far cheaper
    # than ufunc dispatch on length-``n`` vectors); only the O(n * d)
    # count pass is batched.
    means_l = means.tolist()
    spans_l = (tops - means).tolist()
    ks_l = ks_arr.tolist()
    lo = [0.0] * n
    hi = [1.0] * n
    k1 = [0] * n
    k2 = lengths.astype(int).tolist()
    thres1 = [0.0] * n
    thres2 = [0.0] * n
    found1 = [False] * n
    found2 = [False] * n
    thres = np.empty(n)
    ratios = [0.0] * n

    for _ in range(n_samplings):
        for i in range(n):
            ratio = lo[i] + (hi[i] - lo[i]) / 2.0
            ratios[i] = ratio
            thres[i] = means_l[i] + ratio * spans_l[i]
        above = mag >= thres[:, None]
        if mask is not None:
            above &= mask
        counts = above.sum(axis=1).tolist()
        for i in range(n):
            nnz = counts[i]
            if nnz <= ks_l[i]:
                hi[i] = ratios[i]
                if nnz > k1[i] or not found1[i]:
                    k1[i] = nnz
                    thres1[i] = float(thres[i])
                    found1[i] = True
            else:
                lo[i] = ratios[i]
                if nnz < k2[i]:
                    k2[i] = nnz
                    thres2[i] = float(thres[i])
                    found2[i] = True

    return [
        ThresholdSearchResult(
            thres1[i], thres2[i], k1[i], k2[i], n_samplings, found1[i], found2[i]
        )
        for i in range(n)
    ]


def mstopk_select(
    x: np.ndarray,
    k: int,
    *,
    n_samplings: int = DEFAULT_N_SAMPLINGS,
    rng: RandomState | None = None,
) -> SparseVector:
    """Approximate top-k selection (Algorithm 1), returning exactly ``k`` entries.

    Parameters
    ----------
    x:
        Input vector.
    k:
        Number of entries to keep (``0 <= k <= len(x)``).
    n_samplings:
        Binary-search iterations ``N`` (paper default 30).
    rng:
        Source of the random offset for the contiguous tail run (line 27).
        ``None`` uses offset 0, which is deterministic and unbiased across
        iterations only if the gradient layout varies; training code
        passes per-worker generators.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"input must be 1-D, got shape {x.shape}")
    if not 0 <= k <= x.size:
        raise ValueError(f"k={k} out of range for vector of size {x.size}")
    if k == 0:
        return SparseVector(np.empty(0, dtype=x.dtype), np.empty(0, dtype=np.int64), x.size)
    if k == x.size:
        return SparseVector(x.copy(), np.arange(x.size, dtype=np.int64), x.size)

    magnitude = np.abs(x)
    search = mstopk_threshold_search(magnitude, k, n_samplings)
    return _select_from_search(x, magnitude, k, search, rng)


def _select_from_search(
    x: np.ndarray,
    magnitude: np.ndarray,
    k: int,
    search: ThresholdSearchResult,
    rng: RandomState | None,
) -> SparseVector:
    """Algorithm 1 lines 25–29: gather the head and a contiguous tail run."""
    if search.found1:
        head = np.flatnonzero(magnitude >= search.thres1)
        # Degenerate magnitude distributions (many ties at the max) can
        # make the count at thres1 exceed k; truncate to keep exactness.
        if head.size > k:
            head = head[:k]
        band = np.flatnonzero((magnitude < search.thres1) & (magnitude >= search.thres2))
    else:
        # thres1 was never established (possible only when every sampled
        # threshold selected more than k elements, e.g. near-constant
        # vectors).  Fall back to the band above thres2.
        head = np.empty(0, dtype=np.int64)
        band = np.flatnonzero(magnitude >= search.thres2)

    need = k - head.size
    if need > 0:
        if band.size < need:
            # Not enough candidates in the band (ties / degenerate data):
            # widen to everything not already selected.
            mask = np.ones(x.size, dtype=bool)
            mask[head] = False
            band = np.flatnonzero(mask)
        max_offset = band.size - need
        if rng is None or max_offset == 0:
            offset = 0
        else:
            offset = int(rng.integers(0, max_offset + 1))
        tail = band[offset : offset + need]
        indices = np.concatenate([head, tail]).astype(np.int64)
    else:
        indices = head.astype(np.int64)

    return SparseVector(x[indices], indices, x.size)


def mstopk_select_batch(
    xs: Sequence[np.ndarray],
    ks: Sequence[int],
    *,
    n_samplings: int = DEFAULT_N_SAMPLINGS,
    rng: RandomState | None = None,
) -> list[SparseVector]:
    """Batched Algorithm 1 over many shards at once.

    Bit-identical to calling :func:`mstopk_select` per shard in order:
    the threshold search is one broadcast pass per iteration (via
    :func:`mstopk_threshold_search_batch`) and the random tail offsets
    are drawn shard-by-shard in the same order, so the consumed ``rng``
    stream matches the sequential path exactly.
    """
    rows = [np.asarray(x) for x in xs]
    if len(rows) != len(ks):
        raise ValueError(f"{len(rows)} shards but {len(ks)} k values")
    for i, (x, k) in enumerate(zip(rows, ks)):
        if x.ndim != 1:
            raise ValueError(f"shard {i} must be 1-D, got shape {x.shape}")
        if not 0 <= k <= x.size:
            raise ValueError(f"k={k} out of range for shard {i} of size {x.size}")

    # Trivial shards (k == 0 or k == d) never reach the search in the
    # scalar path, so exclude them from the batch too.
    search_rows = [i for i, (x, k) in enumerate(zip(rows, ks)) if 0 < ks[i] < x.size]
    magnitudes = {i: np.abs(rows[i]) for i in search_rows}
    searches = mstopk_threshold_search_batch(
        [magnitudes[i] for i in search_rows],
        [ks[i] for i in search_rows],
        n_samplings,
    )
    search_by_row = dict(zip(search_rows, searches))

    out: list[SparseVector] = []
    for i, (x, k) in enumerate(zip(rows, ks)):
        if k == 0:
            out.append(
                SparseVector(np.empty(0, dtype=x.dtype), np.empty(0, dtype=np.int64), x.size)
            )
        elif k == x.size:
            out.append(SparseVector(x.copy(), np.arange(x.size, dtype=np.int64), x.size))
        else:
            out.append(_select_from_search(x, magnitudes[i], k, search_by_row[i], rng))
    return out


class MSTopK(TopKCompressor):
    """Compressor wrapper around :func:`mstopk_select`."""

    def __init__(self, n_samplings: int = DEFAULT_N_SAMPLINGS) -> None:
        if n_samplings < 1:
            raise ValueError(f"n_samplings must be >= 1, got {n_samplings}")
        self.n_samplings = n_samplings
        self.name = "MSTopK"

    def select(
        self, x: np.ndarray, k: int, *, rng: RandomState | None = None
    ) -> SparseVector:
        x = self._validate(x, k)
        return mstopk_select(x, k, n_samplings=self.n_samplings, rng=rng)

    def select_batch(
        self,
        xs,
        ks,
        *,
        rng: RandomState | None = None,
    ) -> list[SparseVector]:
        rows, ks = self._validate_batch(xs, ks)
        return mstopk_select_batch(rows, ks, n_samplings=self.n_samplings, rng=rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MSTopK(n_samplings={self.n_samplings})"


__all__ = [
    "DEFAULT_N_SAMPLINGS",
    "ThresholdSearchResult",
    "mstopk_threshold_search",
    "mstopk_threshold_search_batch",
    "mstopk_select",
    "mstopk_select_batch",
    "MSTopK",
]
