"""Random-k sparsification — a convergence baseline.

Random-k keeps ``k`` uniformly random coordinates.  It is unbiased after
scaling but converges slower than top-k at equal density; we include it
so the convergence experiments can show the value of magnitude-based
selection (an ablation the paper's related work discusses via Stich et
al. 2018).
"""

from __future__ import annotations

import numpy as np

from repro.collectives.sparse import SparseVector
from repro.compression.base import TopKCompressor
from repro.utils.seeding import RandomState, new_rng


class RandomK(TopKCompressor):
    """Uniformly random k-coordinate selection."""

    def __init__(self, scale: bool = False) -> None:
        #: When True, values are scaled by d/k to make the sparsified
        #: vector an unbiased estimator of the input.
        self.scale = scale
        self.name = "RandomK"

    def select(
        self, x: np.ndarray, k: int, *, rng: RandomState | None = None
    ) -> SparseVector:
        x = self._validate(x, k)
        if k == 0:
            return SparseVector(
                np.empty(0, dtype=x.dtype), np.empty(0, dtype=np.int64), x.size
            )
        rng = rng if rng is not None else new_rng()
        indices = rng.choice(x.size, size=k, replace=False).astype(np.int64)
        values = x[indices]
        if self.scale and k < x.size:
            values = values * (x.size / k)
        return SparseVector(values, indices, x.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomK(scale={self.scale})"


__all__ = ["RandomK"]
