"""Convergence theory helpers for sparsified SGD with memory.

The paper leans on the convergence guarantees of top-k sparsification
with error feedback (Stich et al. 2018; Alistarh et al. 2018;
Karimireddy et al. 2019).  The central object is the **contraction
property** of the top-k operator:

    ||x - TopK(x, k)||²  <=  (1 - k/d) ||x||²,

which bounds the residual accumulation and yields the same asymptotic
rate as dense SGD.  This module provides measurable versions of those
quantities so tests and diagnostics can check that the implemented
operators (including the *approximate* MSTopK) actually satisfy the
assumptions the cited theory needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collectives.sparse import SparseVector


def contraction_factor(x: np.ndarray, sent: SparseVector) -> float:
    """Measured ``||x - densify(sent)||² / ||x||²`` (0 = lossless).

    For exact top-k this is at most ``1 - k/d``; any exactly-k operator
    whose measured factor stays below 1 satisfies the EF convergence
    assumptions (the constant only affects the higher-order term).
    """
    x = np.asarray(x)
    if sent.length != x.size:
        raise ValueError(f"length mismatch: {sent.length} vs {x.size}")
    norm_sq = float(np.sum(x * x))
    if norm_sq == 0.0:
        return 0.0
    diff = x - sent.to_dense()
    return float(np.sum(diff * diff)) / norm_sq


def topk_contraction_bound(d: int, k: int) -> float:
    """The theoretical bound ``1 - k/d`` for exact top-k."""
    if not 0 <= k <= d or d == 0:
        raise ValueError(f"invalid (d, k) = ({d}, {k})")
    return 1.0 - k / d


def residual_norm_bound(
    gradient_bound: float, d: int, k: int
) -> float:
    """Steady-state residual-norm bound under EF (Stich et al. 2018).

    With contraction factor γ = 1 - k/d and per-step gradient norms
    bounded by G, the residual satisfies
    ``||e_t|| <= sqrt(γ) / (1 - sqrt(γ)) * G``.
    """
    if gradient_bound < 0:
        raise ValueError(f"gradient_bound must be non-negative")
    gamma = topk_contraction_bound(d, k)
    root = float(np.sqrt(gamma))
    if root >= 1.0:
        return float("inf")
    return root / (1.0 - root) * gradient_bound


@dataclass
class CompressionDiagnostics:
    """Streaming check that an operator satisfies the EF assumptions."""

    worst_contraction: float = 0.0
    samples: int = 0
    total_energy_kept: float = 0.0

    def record(self, x: np.ndarray, sent: SparseVector) -> float:
        factor = contraction_factor(x, sent)
        self.worst_contraction = max(self.worst_contraction, factor)
        self.samples += 1
        self.total_energy_kept += 1.0 - factor
        return factor

    @property
    def mean_energy_kept(self) -> float:
        if self.samples == 0:
            return 0.0
        return self.total_energy_kept / self.samples

    def satisfies_contraction(self, slack: float = 1e-9) -> bool:
        """True when every recorded selection was a strict contraction."""
        return self.samples > 0 and self.worst_contraction < 1.0 + slack


__all__ = [
    "contraction_factor",
    "topk_contraction_bound",
    "residual_norm_bound",
    "CompressionDiagnostics",
]
