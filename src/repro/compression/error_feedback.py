"""Error feedback (residual memory) for sparsified SGD.

Top-k sparsification drops most coordinates each step; without
compensation the dropped mass is lost and convergence degrades badly.
The standard fix (Stich et al. 2018, "Sparsified SGD with memory";
Karimireddy et al. 2019) accumulates the un-transmitted residual locally
and adds it back before the next selection.  The paper's convergence
results (Fig. 10, Table 2) rely on this mechanism — TopK-SGD and
MSTopK-SGD track Dense-SGD within a fraction of a percent.

Two deployment points exist in this reproduction:

* **Flat TopK-SGD** — one residual of size ``d`` per worker, applied to
  the local gradient before selection (this module).
* **Hierarchical MSTopK-SGD** — one residual of size ``d/n`` per GPU,
  applied to the *node-reduced shard* after Algorithm 2's
  reduce-scatter (owned by :class:`repro.comm.hitopkcomm.HiTopKComm`,
  which also uses this class, keyed by shard).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.sparse import SparseVector


def _subtract_sent(
    residual: np.ndarray, corrected: np.ndarray, sent: SparseVector
) -> None:
    """Zero the transmitted coordinates of ``residual`` in place.

    Entries where the transmitted value differs from the local one
    (e.g. scaled random-k) keep the difference.  For unique selection
    indices (every top-k operator), ``sent.to_dense()[indices]`` is
    exactly ``sent.values``, so the O(d) densify collapses to an O(k)
    fancy update with bit-identical results; duplicate indices take the
    original densify path.
    """
    indices = sent.indices
    if indices.size and np.unique(indices).size != indices.size:
        residual[indices] = 0.0
        residual[indices] += corrected[indices] - sent.to_dense()[indices]
        return
    residual[indices] = corrected[indices] - sent.values


class ErrorFeedback:
    """Per-key residual buffers with the standard EF update rule.

    Keys are arbitrary hashables (worker rank, ``(node, gpu)`` shard
    owner, parameter name, ...).  Buffers are created lazily with the
    shape/dtype of the first gradient seen for the key.
    """

    def __init__(self) -> None:
        self._residuals: dict[object, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._residuals)

    def keys(self):
        return self._residuals.keys()

    def residual(self, key: object) -> np.ndarray | None:
        """Current residual for ``key`` (``None`` before first update)."""
        return self._residuals.get(key)

    def apply(self, key: object, grad: np.ndarray) -> np.ndarray:
        """Return ``grad + residual[key]`` (fresh array; grad unmodified)."""
        grad = np.asarray(grad)
        residual = self._residuals.get(key)
        if residual is None:
            return grad.copy()
        if residual.shape != grad.shape:
            raise ValueError(
                f"residual shape {residual.shape} does not match gradient "
                f"shape {grad.shape} for key {key!r}"
            )
        return grad + residual

    def apply_batch(self, keys, mat: np.ndarray) -> np.ndarray:
        """Batched :meth:`apply`: ``mat`` is ``(n, d)`` with row ``i``
        keyed by ``keys[i]``.  Returns a fresh corrected matrix; rows
        without a residual are plain copies, matching the scalar path
        bit for bit (``grad + residual`` is the identical IEEE add).
        """
        mat = np.asarray(mat)
        keys = list(keys)
        if mat.ndim != 2 or mat.shape[0] != len(keys):
            raise ValueError(
                f"apply_batch needs a ({len(keys)}, d) matrix, got shape {mat.shape}"
            )
        corrected = mat.copy()
        for row, key in enumerate(keys):
            residual = self._residuals.get(key)
            if residual is None:
                continue
            if residual.shape != mat.shape[1:]:
                raise ValueError(
                    f"residual shape {residual.shape} does not match gradient "
                    f"shape {mat.shape[1:]} for key {key!r}"
                )
            corrected[row] += residual
        return corrected

    def update_batch(
        self, keys, corrected: np.ndarray, sents: Sequence[SparseVector]
    ) -> None:
        """Batched :meth:`update` over the rows of ``corrected``.

        One fused matrix copy replaces the per-key ``corrected.copy()``
        calls; the per-row transmitted-coordinate zeroing follows the
        exact operation sequence of the scalar update, so the stored
        residuals are bit-identical.  Keys are inserted in row order
        (the order the sequential loop would have used).
        """
        corrected = np.asarray(corrected)
        keys = list(keys)
        if corrected.ndim != 2 or corrected.shape[0] != len(keys):
            raise ValueError(
                f"update_batch needs a ({len(keys)}, d) matrix, got shape "
                f"{corrected.shape}"
            )
        if len(sents) != len(keys):
            raise ValueError(f"{len(keys)} keys but {len(sents)} selections")
        residuals = corrected.copy()
        for row, (key, sent) in enumerate(zip(keys, sents)):
            if sent.length != corrected.shape[1]:
                raise ValueError(
                    f"sent length {sent.length} does not match gradient size "
                    f"{corrected.shape[1]}"
                )
            residual = residuals[row]
            _subtract_sent(residual, corrected[row], sent)
            self._residuals[key] = residual

    def update(self, key: object, corrected: np.ndarray, sent: SparseVector) -> None:
        """Store the un-transmitted part of ``corrected`` as the new residual.

        ``corrected`` is the error-compensated gradient (output of
        :meth:`apply`); ``sent`` is what the compressor transmitted.  The
        residual is ``corrected`` with the transmitted coordinates zeroed
        — for top-k selections the transmitted value equals the corrected
        value at those coordinates, so this is exactly
        ``corrected - densify(sent)``.
        """
        corrected = np.asarray(corrected)
        if sent.length != corrected.size:
            raise ValueError(
                f"sent length {sent.length} does not match gradient size {corrected.size}"
            )
        residual = corrected.copy()
        _subtract_sent(residual, corrected, sent)
        self._residuals[key] = residual

    def reset(self, key: object | None = None) -> None:
        """Clear one residual or all of them."""
        if key is None:
            self._residuals.clear()
        else:
            self._residuals.pop(key, None)

    def total_norm(self) -> float:
        """L2 norm of all residual mass (diagnostic; bounded for top-k EF)."""
        if not self._residuals:
            return 0.0
        return float(
            np.sqrt(sum(float(np.sum(r * r)) for r in self._residuals.values()))
        )


__all__ = ["ErrorFeedback"]
