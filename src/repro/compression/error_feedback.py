"""Error feedback (residual memory) for sparsified SGD.

Top-k sparsification drops most coordinates each step; without
compensation the dropped mass is lost and convergence degrades badly.
The standard fix (Stich et al. 2018, "Sparsified SGD with memory";
Karimireddy et al. 2019) accumulates the un-transmitted residual locally
and adds it back before the next selection.  The paper's convergence
results (Fig. 10, Table 2) rely on this mechanism — TopK-SGD and
MSTopK-SGD track Dense-SGD within a fraction of a percent.

Two deployment points exist in this reproduction:

* **Flat TopK-SGD** — one residual of size ``d`` per worker, applied to
  the local gradient before selection (this module).
* **Hierarchical MSTopK-SGD** — one residual of size ``d/n`` per GPU,
  applied to the *node-reduced shard* after Algorithm 2's
  reduce-scatter (owned by :class:`repro.comm.hitopkcomm.HiTopKComm`,
  which also uses this class, keyed by shard).
"""

from __future__ import annotations

import numpy as np

from repro.collectives.sparse import SparseVector


class ErrorFeedback:
    """Per-key residual buffers with the standard EF update rule.

    Keys are arbitrary hashables (worker rank, ``(node, gpu)`` shard
    owner, parameter name, ...).  Buffers are created lazily with the
    shape/dtype of the first gradient seen for the key.
    """

    def __init__(self) -> None:
        self._residuals: dict[object, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._residuals)

    def keys(self):
        return self._residuals.keys()

    def residual(self, key: object) -> np.ndarray | None:
        """Current residual for ``key`` (``None`` before first update)."""
        return self._residuals.get(key)

    def apply(self, key: object, grad: np.ndarray) -> np.ndarray:
        """Return ``grad + residual[key]`` (fresh array; grad unmodified)."""
        grad = np.asarray(grad)
        residual = self._residuals.get(key)
        if residual is None:
            return grad.copy()
        if residual.shape != grad.shape:
            raise ValueError(
                f"residual shape {residual.shape} does not match gradient "
                f"shape {grad.shape} for key {key!r}"
            )
        return grad + residual

    def update(self, key: object, corrected: np.ndarray, sent: SparseVector) -> None:
        """Store the un-transmitted part of ``corrected`` as the new residual.

        ``corrected`` is the error-compensated gradient (output of
        :meth:`apply`); ``sent`` is what the compressor transmitted.  The
        residual is ``corrected`` with the transmitted coordinates zeroed
        — for top-k selections the transmitted value equals the corrected
        value at those coordinates, so this is exactly
        ``corrected - densify(sent)``.
        """
        corrected = np.asarray(corrected)
        if sent.length != corrected.size:
            raise ValueError(
                f"sent length {sent.length} does not match gradient size {corrected.size}"
            )
        residual = corrected.copy()
        residual[sent.indices] = 0.0
        # Entries where the transmitted value differs from the local one
        # (e.g. scaled random-k) keep the difference.
        residual[sent.indices] += corrected[sent.indices] - sent.to_dense()[sent.indices]
        self._residuals[key] = residual

    def reset(self, key: object | None = None) -> None:
        """Clear one residual or all of them."""
        if key is None:
            self._residuals.clear()
        else:
            self._residuals.pop(key, None)

    def total_norm(self) -> float:
        """L2 norm of all residual mass (diagnostic; bounded for top-k EF)."""
        if not self._residuals:
            return 0.0
        return float(
            np.sqrt(sum(float(np.sum(r * r)) for r in self._residuals.values()))
        )


__all__ = ["ErrorFeedback"]
