"""Compressor interfaces shared by all selection operators."""

from __future__ import annotations

import abc

import numpy as np

from repro.collectives.sparse import SparseVector
from repro.utils.seeding import RandomState


def density_to_k(d: int, density: float) -> int:
    """Number of elements kept for a sparsity ``density`` ρ (paper: k = ρ·d).

    Always at least 1 so a non-empty gradient contributes something.
    """
    if d < 0:
        raise ValueError(f"dimension must be non-negative, got {d}")
    if not 0 < density <= 1:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if d == 0:
        return 0
    return max(1, int(round(density * d)))


class TopKCompressor(abc.ABC):
    """Selects ``k`` entries of a vector by (approximate) magnitude.

    Implementations must return *exactly* ``k`` entries — Algorithm 2's
    All-Gather exchanges fixed-size buffers, so "approximately k" outputs
    (as in RedSync-style samplers, paper §6) would force variable-length
    communication.  This exactness is property-tested.
    """

    #: Short name used in benchmark tables.
    name: str = "topk"

    @abc.abstractmethod
    def select(
        self, x: np.ndarray, k: int, *, rng: RandomState | None = None
    ) -> SparseVector:
        """Return a :class:`SparseVector` with ``k`` selected entries of ``x``."""

    def select_batch(
        self,
        xs,
        ks,
        *,
        rng: RandomState | None = None,
    ) -> list[SparseVector]:
        """Select on many shards at once; shard ``i`` keeps ``ks[i]`` entries.

        ``xs`` is a sequence of 1-D arrays or a 2-D ``(n_shards, d)``
        matrix (rows are shards); ``ks`` is one ``k`` for all shards or a
        per-shard sequence.  The base implementation loops over
        :meth:`select` in shard order, so any compressor is batchable
        with an identical ``rng`` stream; vectorised operators (MSTopK,
        exact top-k) override this to run their counting passes over all
        shards at once.
        """
        rows, ks = self._validate_batch(xs, ks)
        return [self.select(x, k, rng=rng) for x, k in zip(rows, ks)]

    def select_density(
        self, x: np.ndarray, density: float, *, rng: RandomState | None = None
    ) -> SparseVector:
        """Select ``k = density * len(x)`` entries."""
        x = np.asarray(x)
        return self.select(x, density_to_k(x.size, density), rng=rng)

    @staticmethod
    def _validate(x: np.ndarray, k: int) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 1:
            raise ValueError(f"input must be 1-D, got shape {x.shape}")
        if not 0 <= k <= x.size:
            raise ValueError(f"k={k} out of range for vector of size {x.size}")
        return x

    @staticmethod
    def _validate_batch(xs, ks) -> tuple[list[np.ndarray], list[int]]:
        """Normalise batch inputs to (list of 1-D rows, list of ks)."""
        if isinstance(xs, np.ndarray) and xs.ndim == 2:
            rows = list(xs)
        else:
            rows = [np.asarray(x) for x in xs]
        if isinstance(ks, (int, np.integer)):
            ks = [int(ks)] * len(rows)
        else:
            ks = [int(k) for k in ks]
        if len(rows) != len(ks):
            raise ValueError(f"{len(rows)} shards but {len(ks)} k values")
        for i, (x, k) in enumerate(zip(rows, ks)):
            if x.ndim != 1:
                raise ValueError(f"shard {i} must be 1-D, got shape {x.shape}")
            if not 0 <= k <= x.size:
                raise ValueError(f"k={k} out of range for shard {i} of size {x.size}")
        return rows, ks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


__all__ = ["TopKCompressor", "density_to_k"]
