"""Exact top-k selection.

Two implementations with very different cost profiles:

* :func:`naive_topk_sort` — full sort by magnitude, the analogue of
  TensorFlow's ``nn.topk`` that Fig. 6 shows to be "very slow";
* :func:`topk_argpartition` — ``np.argpartition`` (introselect), the
  efficient exact selection on a CPU.

Both return the exact same *set* of entries (up to ties); the sorted
variant additionally orders them by descending magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.collectives.sparse import SparseVector
from repro.compression.base import TopKCompressor
from repro.utils.seeding import RandomState


def naive_topk_sort(x: np.ndarray, k: int) -> SparseVector:
    """Exact top-k via a full descending sort of ``|x|`` (the slow path)."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"input must be 1-D, got shape {x.shape}")
    if not 0 <= k <= x.size:
        raise ValueError(f"k={k} out of range for vector of size {x.size}")
    if k == 0:
        return SparseVector(np.empty(0, dtype=x.dtype), np.empty(0, dtype=np.int64), x.size)
    order = np.argsort(np.abs(x), kind="stable")[::-1]
    indices = order[:k].astype(np.int64)
    return SparseVector(x[indices], indices, x.size)


def topk_argpartition(x: np.ndarray, k: int) -> SparseVector:
    """Exact top-k via ``np.argpartition`` (no full sort)."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"input must be 1-D, got shape {x.shape}")
    if not 0 <= k <= x.size:
        raise ValueError(f"k={k} out of range for vector of size {x.size}")
    if k == 0:
        return SparseVector(np.empty(0, dtype=x.dtype), np.empty(0, dtype=np.int64), x.size)
    if k == x.size:
        indices = np.arange(x.size, dtype=np.int64)
        return SparseVector(x.copy(), indices, x.size)
    magnitude = np.abs(x)
    indices = np.argpartition(magnitude, x.size - k)[x.size - k :].astype(np.int64)
    return SparseVector(x[indices], indices, x.size)


def exact_threshold(x: np.ndarray, k: int) -> float:
    """The k-th largest magnitude of ``x`` (paper Eq. 2's ``thres``)."""
    x = np.asarray(x)
    if not 1 <= k <= x.size:
        raise ValueError(f"k={k} out of range for vector of size {x.size}")
    magnitude = np.abs(x)
    return float(np.partition(magnitude, x.size - k)[x.size - k])


class ExactTopK(TopKCompressor):
    """Exact top-k compressor.

    Parameters
    ----------
    method:
        ``"sort"`` for the naive full-sort path (what the paper benchmarks
        as ``nn.topk``) or ``"argpartition"`` for the efficient selection.
    """

    def __init__(self, method: str = "argpartition") -> None:
        if method not in ("sort", "argpartition"):
            raise ValueError(f"method must be 'sort' or 'argpartition', got {method!r}")
        self.method = method
        self.name = "nn.topk" if method == "sort" else "exact-topk"

    def select(
        self, x: np.ndarray, k: int, *, rng: RandomState | None = None
    ) -> SparseVector:
        x = self._validate(x, k)
        if self.method == "sort":
            return naive_topk_sort(x, k)
        return topk_argpartition(x, k)

    def select_batch(
        self,
        xs,
        ks,
        *,
        rng: RandomState | None = None,
    ) -> list[SparseVector]:
        """Batched exact selection: one axis-wise ``argpartition`` pass.

        NumPy's introselect runs independently per row, so the batched
        result is bit-identical to per-shard :func:`topk_argpartition`
        calls (pinned by the parity tests).  Unequal shard lengths, the
        ``k == 0`` / ``k == d`` edges, and the deliberately-slow ``sort``
        method fall back to the per-shard loop.
        """
        rows, ks = self._validate_batch(xs, ks)
        if not rows:
            return []
        d = rows[0].size
        uniform = (
            self.method == "argpartition"
            and all(r.size == d for r in rows)
            and all(k == ks[0] for k in ks)
            and 0 < ks[0] < d
        )
        if not uniform:
            return [self.select(x, k, rng=rng) for x, k in zip(rows, ks)]
        k = ks[0]
        mat = xs if isinstance(xs, np.ndarray) and xs.ndim == 2 else np.stack(rows)
        magnitude = np.abs(mat)
        indices = np.argpartition(magnitude, d - k, axis=1)[:, d - k :].astype(np.int64)
        return [
            SparseVector(row[idx], idx, d) for row, idx in zip(rows, indices)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExactTopK(method={self.method!r})"


__all__ = ["ExactTopK", "naive_topk_sort", "topk_argpartition", "exact_threshold"]
