"""Pluggable placement policies for the multi-tenant scheduler.

A placement policy answers one question: *given the nodes that can hold
this job, which should it get first?*  The scheduler computes the
feasible candidate set (nodes with enough free GPUs), the policy orders
it, and the scheduler takes as many nodes off the front as the job's
elastic window allows.  Keeping policies as pure ordering functions
makes them trivially composable with admission, preemption and
autoscaling, which stay in the scheduler.

Policies register in the ``repro.api`` registry style::

    from repro.sched import register_policy

    @register_policy("lowest-id")
    def _lowest_id(job, candidates, state):
        return sorted(candidates)

Built-ins:

* ``bin-pack`` — fill the busiest feasible nodes first.  Minimises the
  number of occupied nodes (large idle blocks stay available for big
  arrivals) at the price of NIC contention between co-located jobs.
* ``spread`` — emptiest nodes first.  Minimises co-location, so each
  job keeps more NIC bandwidth, at the price of fragmenting the
  cluster.
* ``network-aware`` — prefer neighbours that talk the least: order by
  the total *communication intensity* (solo comm-time fraction, see
  :meth:`ClusterState.comm_load`) already resident on each node, then
  emptiest-first.  Comm-heavy jobs land next to compute-heavy ones, the
  bandwidth-sharing penalty both pay shrinks — the placement lesson of
  running 25 Gbps clouds at multi-tenant occupancy.
* ``fault-aware`` — read the fault driver's node-health ledger: avoid
  quarantined and suspect nodes, spread across AZ blocks, and keep
  deadline/priority jobs on the cleanest hardware.  Fault-blind
  without a fault plan (degenerates to ``spread``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.api.registry import Registry
from repro.sched.job import JobSpec

#: Policy registry: ``f(job, candidates, state) -> ordered candidate list``.
POLICIES = Registry("policy")


def register_policy(name: str, *, aliases: Iterable[str] = (), overwrite: bool = False):
    """Register a placement policy ordering function.

    The callable receives ``(job: JobSpec, candidates: Sequence[int],
    state: ClusterState)`` and returns the candidate node ids ordered
    most-preferred first (a permutation of ``candidates``).
    """
    return POLICIES.register(name, aliases=aliases, overwrite=overwrite)


def build_policy(name: str) -> Callable:
    """Resolve a registered policy by name or alias."""
    return POLICIES.get(name)


class ClusterState:
    """Occupancy of the shared cluster: who holds how many GPUs where.

    Tracks, per node, the GPUs each job occupies, plus each job's
    communication intensity (fraction of its solo iteration spent in
    communication) so network-aware policies can weigh neighbours by how
    hard they hit the shared NIC.
    """

    def __init__(self, num_nodes: int, gpus_per_node: int) -> None:
        if num_nodes < 1 or gpus_per_node < 1:
            raise ValueError("num_nodes and gpus_per_node must be >= 1")
        self.num_nodes = num_nodes
        self.gpus_per_node = gpus_per_node
        self._occupants: dict[int, dict[str, int]] = {n: {} for n in range(num_nodes)}
        #: Free GPUs per node, maintained incrementally — free_gpus() is
        #: the hottest query on trace-scale backlogs (policy sort keys,
        #: feasibility scans, preemption planning all hit it).
        self._free: dict[int, int] = {n: gpus_per_node for n in range(num_nodes)}
        self._comm_intensity: dict[str, float] = {}
        #: Nodes taken out of service by a fault (crash/reclaim); they
        #: hold no jobs and accept no placements until repaired.
        self._down: set[int] = set()
        #: Health ledger published by the fault driver (None without a
        #: fault plan) and the current virtual time — read exclusively
        #: by the ``fault-aware`` policy; the fault-free paths never
        #: touch either.
        self.health = None
        self.now = 0.0

    # -- queries --------------------------------------------------------------
    def free_gpus(self, node: int) -> int:
        return self._free[node]

    def is_up(self, node: int) -> bool:
        return node not in self._down

    def down_nodes(self) -> tuple[int, ...]:
        return tuple(sorted(self._down))

    def occupants_of(self, node: int) -> dict[str, int]:
        """``{job: gpus}`` currently resident on ``node`` (a copy)."""
        return dict(self._occupants[node])

    def tenants(self, node: int) -> int:
        """Number of distinct jobs holding GPUs on this node."""
        return len(self._occupants[node])

    def jobs_on(self, node: int) -> tuple[str, ...]:
        return tuple(sorted(self._occupants[node]))

    def gpus_of(self, job: str, node: int) -> int:
        """GPUs ``job`` occupies on ``node`` (0 if absent)."""
        return self._occupants[node].get(job, 0)

    def comm_load(self, node: int) -> float:
        """Total communication intensity already resident on a node."""
        return sum(
            self._comm_intensity.get(name, 0.0) for name in self._occupants[node]
        )

    def feasible_nodes(self, gpus: int, *, exclude: Iterable[int] = ()) -> list[int]:
        """Up nodes with at least ``gpus`` free, ascending id."""
        excluded = set(exclude) | self._down
        return [
            n
            for n in range(self.num_nodes)
            if n not in excluded and self.free_gpus(n) >= gpus
        ]

    def contention_for(self, nodes: Iterable[int]) -> int:
        """Worst-case tenant count across a node set (>= 1)."""
        counts = [self.tenants(n) for n in nodes]
        return max(counts) if counts else 1

    def busy_nodes(self) -> int:
        return sum(1 for n in range(self.num_nodes) if self._occupants[n])

    # -- transitions ----------------------------------------------------------
    def place(self, job: str, nodes: Iterable[int], gpus: int) -> None:
        nodes = list(nodes)
        for node in nodes:
            if self.free_gpus(node) < gpus:
                raise ValueError(
                    f"node {node} has {self.free_gpus(node)} free GPUs, "
                    f"job {job!r} needs {gpus}"
                )
            if job in self._occupants[node]:
                raise ValueError(f"job {job!r} already occupies node {node}")
        for node in nodes:
            self._occupants[node][job] = gpus
            self._free[node] -= gpus

    def release(self, job: str, nodes: Iterable[int] | None = None) -> None:
        targets = (
            list(nodes)
            if nodes is not None
            else [n for n, occ in self._occupants.items() if job in occ]
        )
        for node in targets:
            if job not in self._occupants[node]:
                raise KeyError(f"job {job!r} does not occupy node {node}")
            self._free[node] += self._occupants[node].pop(job)

    def set_comm_intensity(self, job: str, intensity: float) -> None:
        self._comm_intensity[job] = max(0.0, float(intensity))

    def set_down(self, node: int) -> None:
        """Take a node out of service (fault injection).

        The caller is responsible for evicting its occupants first;
        marking an occupied node down is an accounting error.
        """
        if self._occupants[node]:
            raise ValueError(
                f"node {node} still hosts {sorted(self._occupants[node])}; "
                "release its jobs before marking it down"
            )
        self._down.add(node)

    def set_up(self, node: int) -> None:
        """Return a repaired node to service."""
        self._down.discard(node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        occupied = {n: occ for n, occ in self._occupants.items() if occ}
        return f"ClusterState({self.num_nodes}x{self.gpus_per_node}, {occupied})"


# ---------------------------------------------------------------------------
# Built-in policies
# ---------------------------------------------------------------------------


@register_policy("bin-pack", aliases=("binpack", "pack"))
def _bin_pack(job: JobSpec, candidates: Sequence[int], state: ClusterState) -> list[int]:
    """Busiest feasible nodes first (fewest free GPUs)."""
    return sorted(candidates, key=lambda n: (state.free_gpus(n), n))


@register_policy("spread", aliases=("scatter",))
def _spread(job: JobSpec, candidates: Sequence[int], state: ClusterState) -> list[int]:
    """Emptiest nodes first (most free GPUs, fewest tenants)."""
    return sorted(candidates, key=lambda n: (-state.free_gpus(n), state.tenants(n), n))


@register_policy("network-aware", aliases=("netaware", "contention-aware"))
def _network_aware(
    job: JobSpec, candidates: Sequence[int], state: ClusterState
) -> list[int]:
    """Least resident communication intensity first, then emptiest."""
    return sorted(
        candidates,
        key=lambda n: (
            round(state.comm_load(n), 12),
            state.tenants(n),
            -state.free_gpus(n),
            n,
        ),
    )


@register_policy("fault-aware", aliases=("health-aware",))
def _fault_aware(
    job: JobSpec, candidates: Sequence[int], state: ClusterState
) -> list[int]:
    """Steer work away from unhealthy hardware using the health ledger.

    Three signals, in order:

    1. **Quarantined nodes last.**  A repeat offender sits at the very
       back of the ordering until its probe clears it — still a valid
       candidate (the policy stays a pure permutation, so a saturated
       cluster can fall back to it), but only when nothing cleaner fits.
    2. **Suspicion.**  Deadline/priority jobs sort candidates by exact
       decayed suspicion (cleanest node first); best-effort jobs only
       dodge *heavily* suspect nodes (>= half the quarantine threshold)
       and otherwise keep spread's capacity ordering — mildly flaky
       hardware is fine for work nobody is waiting on.
    3. **AZ-block spreading.**  Candidates are interleaved round-robin
       across contiguous node blocks (the same blocks an ``az-reclaim``
       takes out), so a k-node job spans up to k blocks and one reclaim
       cannot erase the whole allocation.

    Without a fault plan there is no ledger (``state.health`` is None)
    and the policy degenerates to ``spread``.
    """
    ledger = state.health
    if ledger is None:
        return _spread(job, candidates, state)
    now = state.now
    threshold = ledger.policy.quarantine_threshold
    critical = job.priority > 0 or job.deadline_seconds is not None

    def key(n: int):
        suspicion = round(ledger.suspicion(n, now), 9)
        if not critical:
            suspicion = 1 if suspicion >= threshold / 2 else 0
        return (suspicion, state.tenants(n), -state.free_gpus(n), n)

    pool = [n for n in candidates if not ledger.is_quarantined(n)]
    avoid = sorted((n for n in candidates if ledger.is_quarantined(n)), key=key)
    # Interleave across AZ blocks: round r holds every block's r-th
    # choice, each round ordered cleanest-first.
    block = max(1, (state.num_nodes + 3) // 4)
    by_block: dict[int, list[int]] = {}
    for n in sorted(pool):
        by_block.setdefault(n // block, []).append(n)
    for members in by_block.values():
        members.sort(key=key)
    ordered: list[int] = []
    depth = 0
    while len(ordered) < len(pool):
        heads = [
            (key(members[depth]), members[depth])
            for members in by_block.values()
            if depth < len(members)
        ]
        ordered.extend(n for _, n in sorted(heads))
        depth += 1
    return ordered + avoid


__all__ = [
    "POLICIES",
    "register_policy",
    "build_policy",
    "ClusterState",
]
