"""Contention-aware multi-tenant scheduling over the virtual cloud cluster.

:class:`MultiTenantScheduler` admits a queue of :class:`~repro.sched.job
.JobSpec` onto one shared virtual cluster and simulates it to completion
on a virtual clock:

* **Placement** — feasible nodes (enough free GPUs) are ordered by a
  pluggable policy from :mod:`repro.sched.policies` and the job takes up
  to ``max_nodes`` of them (never fewer than ``min_nodes``).
* **Contention** — co-located jobs split node NIC capacity through
  :meth:`~repro.cluster.network.NetworkModel.contended`; each job's
  throughput comes from the Fig. 1
  :class:`~repro.perf.iteration_model.IterationModel` on its contended
  cluster slice, so a neighbour that hammers the network visibly slows
  you down (and a compute-bound one barely does).
* **Preemption** — a queued job that does not fit may *shrink*
  strictly-lower-priority running jobs toward their ``min_nodes``, one
  node at a time, until it fits; every shrink drives the victim's
  :class:`~repro.elastic.membership.MembershipView` exactly like a
  warned spot revocation.
* **Autoscaling** — while nothing is queued, running jobs grow onto
  idle capacity (priority order, policy-ordered nodes) up to
  ``max_nodes``; the resulting allocation history converts to a
  :class:`~repro.elastic.events.TraceSchedule` replayable through the
  real :class:`~repro.elastic.ElasticTrainer`.
* **Accounting** — per-job queueing delay, completion time, goodput,
  contention slowdown, and dollars (spot or on-demand rates from
  :data:`repro.elastic.events.SPOT_PROFILES`, billed by GPU share);
  cluster-wide makespan, utilization, goodput and deadline hit rate.

Everything is closed-form and deterministic: same jobs + policy =>
bit-identical report.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.elastic.events import SPOT_PROFILES, SpotProfile
from repro.elastic.membership import MembershipView
from repro.perf.iteration_model import IterationModel
from repro.sched.job import DONE, RUNNING, JobRecord, JobSpec
from repro.sched.policies import POLICIES, ClusterState, build_policy
from repro.utils.tables import format_table

#: Keep in sync with ``benchmarks/conftest.py::BENCH_SCHEMA_VERSION``.
BENCH_SCHEMA_VERSION = 1

#: Columns of the per-job rows every sched payload carries.
PAYLOAD_COLUMNS = [
    "policy",
    "job",
    "status",
    "priority",
    "nodes",
    "queue_wait_s",
    "jct_s",
    "iterations",
    "goodput_it_per_s",
    "contention_slowdown",
    "grows",
    "shrinks",
    "membership_epochs",
    "cost_usd",
    "deadline_met",
    "final_loss",
]


def _admit_key(record: JobRecord) -> tuple:
    """Admission order: highest priority, then earliest arrival, then name."""
    return (-record.spec.priority, record.spec.arrival_seconds, record.spec.name)


class _AdmitQueue:
    """The admission backlog, grouped by placement signature.

    Whether a job fits depends only on its *signature* — (GPUs per node,
    ``min_nodes``) — never on which job carries it.  Keeping one
    admit-ordered list per signature lets the admit scan visit at most
    one head job per signature (plus one pop per placement) instead of
    walking every queued job at every event; on a trace-scale backlog of
    thousands of queued jobs with a handful of distinct shapes, that is
    the difference between an O(queue) and an O(shapes) scan.
    """

    def __init__(self) -> None:
        #: signature -> records, each list sorted by :func:`_admit_key`.
        self.by_sig: dict[tuple[int, int], list[JobRecord]] = {}
        self._count = 0

    def add(self, record: JobRecord, gpus: int) -> None:
        sig = (gpus, record.spec.min_nodes)
        bisect.insort(self.by_sig.setdefault(sig, []), record, key=_admit_key)
        self._count += 1

    def pop_head(self, sig: tuple[int, int]) -> JobRecord:
        records = self.by_sig[sig]
        record = records.pop(0)
        if not records:
            del self.by_sig[sig]
        self._count -= 1
        return record

    def __len__(self) -> int:
        return self._count


@dataclass(frozen=True)
class JobOutcome:
    """Final accounting for one job under one policy."""

    job: str
    policy: str
    status: str
    priority: int
    nodes: int  # final allocation size
    queue_wait_s: float
    jct_s: float | None
    iterations: float
    goodput_it_per_s: float
    contention_slowdown: float
    grows: int
    shrinks: int
    membership_epochs: int
    cost_usd: float
    deadline_met: bool | None
    waypoints: tuple[tuple[int, int], ...]
    #: Replayed-training final loss; ``None`` for payload-free jobs.
    final_loss: float | None = None

    def row(self) -> list:
        return [
            self.policy,
            self.job,
            self.status,
            self.priority,
            self.nodes,
            round(self.queue_wait_s, 3),
            round(self.jct_s, 3) if self.jct_s is not None else None,
            round(self.iterations, 2),
            round(self.goodput_it_per_s, 4),
            round(self.contention_slowdown, 4),
            self.grows,
            self.shrinks,
            self.membership_epochs,
            round(self.cost_usd, 4),
            self.deadline_met,
            round(self.final_loss, 6) if self.final_loss is not None else None,
        ]


@dataclass
class SchedReport:
    """Structured result of one multi-tenant scheduling run."""

    name: str
    policy: str
    instance: str
    num_nodes: int
    gpus_per_node: int
    seed: int
    jobs: list[JobOutcome] = field(default_factory=list)
    makespan_s: float = 0.0
    total_cost_usd: float = 0.0
    utilization: float = 0.0  # occupied-node-seconds / (nodes * makespan)
    cluster_goodput_it_per_s: float = 0.0
    mean_queue_wait_s: float = 0.0
    deadline_hit_rate: float | None = None
    events: int = 0
    #: Job name -> allocation waypoints, for elastic replay.
    traces: dict[str, tuple[tuple[int, int], ...]] = field(default_factory=dict)
    #: Fault-drill summary + structured event log (plain dict so reports
    #: pickle across process backends); ``None`` when no faults ran.
    fault_log: dict | None = None
    #: Brain decision summary + structured log (same plain-dict shape);
    #: ``None`` when no (active) brain drove the run.
    brain_log: dict | None = None

    def summary(self) -> dict:
        return {
            "makespan_s": round(self.makespan_s, 3),
            "total_cost_usd": round(self.total_cost_usd, 4),
            "utilization": round(self.utilization, 4),
            "cluster_goodput_it_per_s": round(self.cluster_goodput_it_per_s, 4),
            "mean_queue_wait_s": round(self.mean_queue_wait_s, 3),
            "deadline_hit_rate": self.deadline_hit_rate,
            "jobs_done": sum(1 for j in self.jobs if j.status == DONE),
            "events": self.events,
        }

    def bench_payload(self, bench: str | None = None) -> dict:
        return payload_for_reports([self], bench=bench or f"sched_{self.name}")

    def format(self) -> str:
        return self.bench_payload()["text"]


def payload_for_reports(
    reports: Sequence["SchedReport"], *, bench: str = "sched"
) -> dict:
    """One BENCH-schema payload covering one or more policy runs."""
    if not reports:
        raise ValueError("need at least one SchedReport")
    rows = [outcome.row() for report in reports for outcome in report.jobs]
    first = reports[0]
    title = (
        f"{bench}: {len(first.jobs)} jobs on {first.num_nodes}x"
        f"{first.gpus_per_node} {first.instance} "
        f"({', '.join(r.policy for r in reports)})"
    )
    text = format_table(PAYLOAD_COLUMNS, rows, title=title)
    return {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "structured": True,
        "columns": list(PAYLOAD_COLUMNS),
        "rows": rows,
        "text": text if text.endswith("\n") else text + "\n",
        "meta": {
            "instance": first.instance,
            "num_nodes": first.num_nodes,
            "gpus_per_node": first.gpus_per_node,
            "seed": first.seed,
            "policies": [r.policy for r in reports],
            "summary": {r.policy: r.summary() for r in reports},
            **(
                {"faults": {r.policy: r.fault_log for r in reports}}
                if any(r.fault_log is not None for r in reports)
                else {}
            ),
            **(
                {"brain": {r.policy: r.brain_log for r in reports}}
                if any(r.brain_log is not None for r in reports)
                else {}
            ),
        },
    }


class MultiTenantScheduler:
    """Simulate many jobs sharing one virtual cloud cluster.

    Parameters
    ----------
    num_nodes:
        Shared cluster size (whole nodes; jobs slice GPUs within them).
    instance:
        Registered cluster preset (``repro.api`` cluster registry name
        or alias) supplying link specs and spot prices.
    gpus_per_node:
        Override the preset GPU count per node.
    policy:
        Registered placement policy name (see
        :mod:`repro.sched.policies`).
    seed:
        Recorded for provenance; the simulation itself is closed-form
        deterministic (no random draws).
    max_events:
        Safety cap on scheduler decision points.  ``None`` (the
        default) scales the cap with the queue — ``max(10_000, 16 *
        len(jobs))`` — so trace-scale replays never hit it while
        pathological hand-written scenarios still terminate.
    faults:
        Optional resolved :class:`~repro.faults.plan.FaultPlan`
        (``target="sched"``, ``at`` in virtual seconds).  Each
        :meth:`run` drives a fresh
        :class:`~repro.faults.sched_driver.SchedFaultDriver` from it, so
        one scheduler can replay the same fault storm under several
        policies.  ``None`` keeps every code path bit-identical to a
        fault-free build.
    brain:
        Optional :class:`~repro.api.config.BrainConfig`.  An *active*
        brain (anything but ``static``) drives a fresh
        :class:`~repro.brain.driver.BrainDriver` per :meth:`run`:
        periodic decision ticks that migrate/shrink/grow running jobs
        through the same state transitions every other decision uses.
        ``None`` — or the inactive ``static`` brain — keeps every code
        path bit-identical to a brain-free build.
    """

    def __init__(
        self,
        *,
        num_nodes: int,
        instance: str = "tencent",
        gpus_per_node: int | None = None,
        policy: str = "bin-pack",
        seed: int = 0,
        max_events: int | None = None,
        name: str = "sched",
        faults=None,
        brain=None,
    ) -> None:
        from repro.api.registry import CLUSTERS, get_cluster

        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        preset = get_cluster(instance)
        self.instance = CLUSTERS.canonical(instance) or instance
        self.preset = preset
        self.num_nodes = num_nodes
        self.gpus_per_node = gpus_per_node if gpus_per_node is not None else preset.gpus
        if self.gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")
        self.policy_name = POLICIES.canonical(policy) or policy
        self.policy: Callable = build_policy(policy)
        self.seed = seed
        self.max_events = max_events
        self.name = name
        self.faults = faults
        self.brain = brain
        #: Live per-run brain driver (``None`` outside an active-brain
        #: run); consulted by autoscale growth for dwell/avoid guards.
        self._brain_driver = None
        # The fast-path memoization layer.  Jobs sharing a workload key
        # (profile/scheme-kind/density/resolution/batch/GPU slice) are
        # timing-identical, so the caches are keyed per *key* — a
        # 10k-job trace with a few dozen distinct workload shapes pays
        # for a few dozen IterationModel builds, not hundreds of
        # thousands.  All reset per run (job names may be reused).
        #: job name -> workload key.
        self._key_cache: dict[str, tuple] = {}
        #: (workload key, nodes, contention) -> iteration seconds.
        self._time_cache: dict[tuple, float] = {}
        #: (workload key, nodes) -> solo communication share.
        self._intensity_cache: dict[tuple, float] = {}
        # Unknown (custom-registered) clouds bill at the tencent profile.
        self.spot_profile: SpotProfile = SPOT_PROFILES.get(
            self.instance, SPOT_PROFILES["tencent"]
        )

    # -- per-job timing -------------------------------------------------------
    def _job_gpus(self, spec: JobSpec) -> int:
        gpus = spec.gpus_per_node if spec.gpus_per_node is not None else self.gpus_per_node
        return gpus

    def _iteration_model(
        self,
        spec: JobSpec,
        nodes: int,
        contention: float,
        stretch: float = 1.0,
        jitter: float = 1.0,
    ) -> IterationModel:
        from repro.api.registry import build_cluster

        profile = spec.model_profile()
        network = build_cluster(
            self.instance, nodes, gpus_per_node=self._job_gpus(spec)
        )
        return IterationModel(
            network=network,
            profile=profile,
            scheme=spec.scheme_kind(),
            resolution=spec.resolved_resolution(profile),
            local_batch=spec.resolved_local_batch(profile),
            density=spec.density,
            contention=contention,
            compute_stretch=stretch,
            comm_jitter=jitter,
        )

    def _workload_key(self, spec: JobSpec) -> tuple:
        key = self._key_cache.get(spec.name)
        if key is None:
            key = self._key_cache[spec.name] = spec.workload_key(self._job_gpus(spec))
        return key

    def iteration_seconds(
        self,
        spec: JobSpec,
        *,
        nodes: int,
        contention: float = 1.0,
        nic_scale: float = 1.0,
        stretch: float = 1.0,
        jitter: float = 1.0,
    ) -> float:
        """Per-iteration virtual seconds at an allocation + tenant count.

        ``nic_scale`` (an active NIC degradation, <= 1) divides the
        inter-node bandwidth on top of contention; ``stretch`` (an
        active straggler, >= 1) multiplies the FF&BP term; ``jitter``
        (a realised gray-link stretch, >= 1) multiplies the visible
        communication term.  Pure in ``(workload key, nodes,
        contention, nic_scale, stretch, jitter)``, so results are
        memoized per :meth:`run` — the event loop re-prices every
        running job at every event and would otherwise rebuild
        identical models millions of times on a trace-scale queue.
        """
        key = (self._workload_key(spec), nodes, contention, nic_scale, stretch, jitter)
        cached = self._time_cache.get(key)
        if cached is None:
            # A link at `nic_scale` bandwidth prices exactly like one
            # split across 1/nic_scale extra tenants.
            cached = self._iteration_model(
                spec, nodes, contention / nic_scale, stretch, jitter
            ).iteration_time()
            self._time_cache[key] = cached
        return cached

    def comm_intensity(self, spec: JobSpec, *, nodes: int) -> float:
        """Solo communication share of the iteration (network-aware input)."""
        key = (self._workload_key(spec), nodes)
        cached = self._intensity_cache.get(key)
        if cached is None:
            breakdown = self._iteration_model(spec, nodes, 1.0).breakdown()
            total = breakdown.total
            cached = 0.0
            if total > 0:
                cached = (
                    breakdown.get("communication") + breakdown.get("compression")
                ) / total
            self._intensity_cache[key] = cached
        return cached

    def _hourly_rate(self, spec: JobSpec, nodes: int) -> float:
        """USD/hour for the job's current slice (GPU-share of node price)."""
        price = self.spot_profile.on_demand_hourly
        if spec.preference == "spot":
            price *= self.spot_profile.spot_discount
        share = self._job_gpus(spec) / self.gpus_per_node
        return price * nodes * share

    # -- scheduling decisions -------------------------------------------------
    def _validate(self, jobs: Sequence[JobSpec]) -> None:
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {sorted(names)}")
        for job in jobs:
            gpus = self._job_gpus(job)
            if gpus > self.gpus_per_node:
                raise ValueError(
                    f"job {job.name!r} wants {gpus} GPUs/node on "
                    f"{self.gpus_per_node}-GPU nodes"
                )
            if job.min_nodes > self.num_nodes:
                raise ValueError(
                    f"job {job.name!r} needs {job.min_nodes} nodes, cluster has "
                    f"{self.num_nodes}"
                )

    def _try_preempt(
        self, job: JobSpec, running: list[JobRecord], state: ClusterState
    ) -> bool:
        """Shrink strictly-lower-priority jobs until ``job`` fits.

        Preemption is *targeted and all-or-nothing*: per candidate node
        it plans exactly which lower-priority tenants must release their
        slice for the node to become feasible, and commits the plans
        only when together they admit the job (``min_nodes`` feasible
        nodes).  If the job cannot be admitted even after every eligible
        shrink, nobody shrinks — no victim loses capacity for nothing,
        and freed nodes can't leak to lower-priority queue entries.
        Each victim can lose at most ``len(nodes) - min_nodes`` nodes
        (its elastic floor); every committed shrink drives the victim's
        membership view like a warned revocation.
        """
        gpus = self._job_gpus(job)
        needed = job.min_nodes - len(state.feasible_nodes(gpus))
        if needed <= 0:
            return False
        budget = {
            r.spec.name: len(r.nodes) - r.spec.min_nodes
            for r in running
            if r.spec.priority < job.priority
        }
        if not any(budget.values()):
            return False  # nobody eligible can give up a node
        by_name = {r.spec.name: r for r in running}
        # Cheapest nodes first: fewest tenants to displace, most free.
        order = sorted(
            (n for n in range(state.num_nodes) if state.free_gpus(n) < gpus),
            key=lambda n: (state.tenants(n), -state.free_gpus(n), n),
        )
        plans: list[tuple[int, list[str]]] = []
        for node in order:
            shortfall = gpus - state.free_gpus(node)
            plan: list[str] = []
            # Lowest-priority tenants evict first.
            for name in sorted(
                state.jobs_on(node),
                key=lambda j: (by_name[j].spec.priority, j),
            ):
                if budget.get(name, 0) < 1:
                    continue
                plan.append(name)
                shortfall -= state.gpus_of(name, node)
                if shortfall <= 0:
                    break
            if shortfall > 0:
                continue  # this node cannot be freed; leave its tenants be
            plans.append((node, plan))
            for name in plan:
                budget[name] -= 1
            if len(plans) >= needed:
                break
        if len(plans) < needed:
            return False  # the job cannot be admitted; shrink nobody
        for node, plan in plans:
            for name in plan:
                victim = by_name[name]
                state.release(name, [node])
                victim.nodes.remove(node)
                victim.shrinks += 1
                victim.mark_waypoint()
                if victim.membership is not None:
                    victim.membership.revoke()  # warned, scheduler-driven
                state.set_comm_intensity(
                    name, self.comm_intensity(victim.spec, nodes=len(victim.nodes))
                )
        return True

    def _place(self, record: JobRecord, state: ClusterState, now: float) -> bool:
        spec = record.spec
        gpus = self._job_gpus(spec)
        candidates = state.feasible_nodes(gpus)
        if len(candidates) < spec.min_nodes:
            return False
        ordered = list(self.policy(spec, candidates, state))
        take = min(spec.max_nodes, len(ordered))
        chosen = ordered[:take]
        state.place(spec.name, chosen, gpus)
        record.nodes = list(chosen)
        record.status = RUNNING
        if record.first_start is None:
            record.first_start = now
            record.membership = MembershipView(
                take, gpus, instance=self.preset, min_nodes=spec.min_nodes
            )
        elif record.membership is not None:
            # Re-placement after a fault requeue: reconcile the
            # membership view with the new allocation size.
            while record.membership.num_nodes < take:
                record.membership.join()
            while (
                record.membership.num_nodes > take
                and record.membership.num_nodes > record.membership.min_nodes
            ):
                record.membership.revoke()
        state.set_comm_intensity(spec.name, self.comm_intensity(spec, nodes=take))
        record.mark_waypoint()
        return True

    def _grow(self, record: JobRecord, state: ClusterState, now: float) -> bool:
        spec = record.spec
        if len(record.nodes) >= spec.max_nodes:
            return False
        brain = self._brain_driver
        if brain is not None and brain.grow_frozen(spec.name, now):
            # The brain just rescaled this job; growing it back before
            # the dwell window ends would undo the decision.
            return False
        gpus = self._job_gpus(spec)
        candidates = state.feasible_nodes(gpus, exclude=record.nodes)
        if brain is not None and candidates:
            avoid = brain.avoid_nodes(now)
            if avoid:
                candidates = [n for n in candidates if n not in avoid]
        if not candidates:
            return False
        node = list(self.policy(spec, candidates, state))[0]
        state.place(spec.name, [node], gpus)
        record.nodes.append(node)
        record.grows += 1
        record.mark_waypoint()
        if record.membership is not None:
            record.membership.join()
        # Comm share depends on the node count; keep the network-aware
        # policy's view of this tenant current.
        state.set_comm_intensity(
            spec.name, self.comm_intensity(spec, nodes=len(record.nodes))
        )
        return True

    def _schedule(
        self,
        queued: _AdmitQueue,
        running: list[JobRecord],
        state: ClusterState,
        now: float,
    ) -> None:
        # 1. Admit queued jobs in admission order (highest priority,
        # then earliest arrival); preempt if needed.  The scan walks the
        # signature heads in global admission order via a heap, with a
        # *dominance prune*: once a signature fails to place, any
        # not-earlier job needing at least as many GPUs per node and at
        # least as many nodes must fail too — placement success depends
        # only on (gpus, min_nodes), preemption victim budgets only
        # shrink as priority drops, and capacity never grows mid-scan
        # except when a preemption commits, which resets the prune and
        # revives the parked signatures.  Smaller jobs still get their
        # backfill attempt, so admissions match a full scan of the
        # backlog while touching only one head per distinct shape.
        failed: list[tuple[int, int]] = []  # signatures that failed to place
        parked: list[tuple[int, int]] = []  # pruned signatures (revivable)
        heads = [
            (_admit_key(records[0]), sig) for sig, records in queued.by_sig.items()
        ]
        heapq.heapify(heads)
        while heads:
            _, sig = heapq.heappop(heads)
            record = queued.by_sig[sig][0]
            spec = record.spec
            gpus, min_nodes = sig
            if any(g <= gpus and m <= min_nodes for g, m in failed):
                parked.append(sig)
                continue
            if len(state.feasible_nodes(gpus)) < min_nodes:
                if self._try_preempt(spec, running, state):
                    # Committed shrinks freed capacity: previously failed
                    # or pruned shapes may fit now, so reset the prune.
                    failed.clear()
                    for revived in parked:
                        head = queued.by_sig[revived][0]
                        heapq.heappush(heads, (_admit_key(head), revived))
                    parked.clear()
            if self._place(record, state, now):
                queued.pop_head(sig)
                running.append(record)
                if sig in queued.by_sig:
                    head = queued.by_sig[sig][0]
                    heapq.heappush(heads, (_admit_key(head), sig))
            else:
                failed.append(sig)
                parked.append(sig)
        # 2. Autoscale: grow running jobs onto capacity nothing is queued for.
        if not len(queued):
            changed = True
            while changed:
                changed = False
                for record in sorted(
                    running,
                    key=lambda r: (-r.spec.priority, r.spec.arrival_seconds, r.spec.name),
                ):
                    if self._grow(record, state, now):
                        changed = True

    # -- main loop ------------------------------------------------------------
    def run(self, jobs: Sequence[JobSpec]) -> SchedReport:
        """Simulate the job set to completion; returns the full report."""
        if not jobs:
            raise ValueError("need at least one JobSpec")
        self._validate(jobs)
        # Job names may be reused across runs (with different shapes).
        self._key_cache.clear()
        self._time_cache.clear()
        self._intensity_cache.clear()
        max_events = (
            self.max_events
            if self.max_events is not None
            else max(10_000, 16 * len(jobs))
        )
        state = ClusterState(self.num_nodes, self.gpus_per_node)
        driver = None
        if self.faults is not None:
            from repro.faults.sched_driver import SchedContext, SchedFaultDriver

            # A fresh driver per run: one plan replays identically under
            # every policy.
            driver = SchedFaultDriver(self.faults)
            # Publish the health ledger for the fault-aware policy;
            # fault-free runs leave state.health as None.
            state.health = driver.health
        self._brain_driver = None
        if self.brain is not None:
            from repro.brain.base import build_brain
            from repro.brain.driver import BrainDriver

            autotuner = build_brain(self.brain)
            if autotuner.active:
                # Inactive brains (`static`) never get a driver, so the
                # run stays byte-identical to a brain-free build.
                self._brain_driver = BrainDriver(self.brain, autotuner, self)
        brain_driver = self._brain_driver
        records = {job.name: JobRecord(spec=job) for job in jobs}
        pending = sorted(
            records.values(),
            key=lambda r: (r.spec.arrival_seconds, -r.spec.priority, r.spec.name),
        )
        arrived = 0  # index into pending; everything before it has arrived
        queued = _AdmitQueue()
        running: list[JobRecord] = []
        done: list[JobRecord] = []

        now = 0.0
        occupied_node_seconds = 0.0
        events = 0
        while (
            arrived < len(pending) or len(queued) or running
        ) and events < max_events:
            events += 1
            while (
                arrived < len(pending)
                and pending[arrived].spec.arrival_seconds <= now + 1e-12
            ):
                record = pending[arrived]
                queued.add(record, self._job_gpus(record.spec))
                arrived += 1
            if driver is not None:
                state.now = now
                ctx = SchedContext(
                    scheduler=self, now=now, state=state, queued=queued,
                    running=running,
                )
                driver.apply_due(ctx)
            if brain_driver is not None:
                state.now = now
                brain_driver.apply_due(
                    now=now, state=state, queued=queued, running=running,
                    faults=driver,
                )
            self._schedule(queued, running, state, now)
            if driver is not None:
                driver.note_replacements(
                    SchedContext(
                        scheduler=self, now=now, state=state, queued=queued,
                        running=running,
                    )
                )
            if not running:
                next_arrival = (
                    pending[arrived].spec.arrival_seconds
                    if arrived < len(pending)
                    else None
                )
                boundary = (
                    driver.next_boundary(now) if driver is not None else None
                )
                waits = [t for t in (next_arrival, boundary) if t is not None]
                if not waits:
                    break  # nothing placeable remains and no repair is coming
                now = min(waits)
                continue

            # Piecewise-constant rates until the next event.
            nic_scale = (
                driver.active_nic_scale() if driver is not None else 1.0
            )
            rates: dict[str, tuple[float, float]] = {}
            for record in running:
                contention = state.contention_for(record.nodes)
                stretch = (
                    driver.stretch_for(record.nodes)
                    if driver is not None
                    else 1.0
                )
                jitter = (
                    driver.jitter_for(record.nodes)
                    if driver is not None
                    else 1.0
                )
                busy = self.iteration_seconds(
                    record.spec,
                    nodes=len(record.nodes),
                    contention=contention,
                    nic_scale=nic_scale,
                    stretch=stretch,
                    jitter=jitter,
                )
                # The slowdown baseline stays fault-free: the solo rate
                # is the ideal this job is judged against.
                solo = (
                    busy
                    if contention <= 1 and nic_scale >= 1 and stretch <= 1
                    and jitter <= 1
                    else self.iteration_seconds(
                        record.spec, nodes=len(record.nodes), contention=1.0
                    )
                )
                rates[record.spec.name] = (1.0 / busy, 1.0 / solo)

            next_completion = min(
                now + record.remaining / rates[record.spec.name][0]
                for record in running
            )
            next_arrival = (
                pending[arrived].spec.arrival_seconds
                if arrived < len(pending)
                else None
            )
            horizon = next_completion
            if next_arrival is not None and next_arrival < horizon:
                horizon = next_arrival
            if driver is not None:
                boundary = driver.next_boundary(now)
                if boundary is not None and boundary < horizon:
                    horizon = boundary
            if brain_driver is not None:
                # Decision ticks only matter while jobs are running, so
                # the brain boundary is consulted on the busy path only
                # (the idle branch would otherwise spin on ticks that
                # can never decide anything).
                boundary = brain_driver.next_boundary(now)
                if boundary is not None and boundary < horizon:
                    horizon = boundary
            dt = max(0.0, horizon - now)

            for record in running:
                rate, solo_rate = rates[record.spec.name]
                record.progress = min(
                    record.spec.iterations, record.progress + rate * dt
                )
                record.solo_equivalent += solo_rate * dt
                record.running_seconds += dt
                record.cost_usd += (
                    self._hourly_rate(record.spec, len(record.nodes)) * dt / 3600.0
                )
            occupied_node_seconds += state.busy_nodes() * dt
            now = horizon

            for record in list(running):
                if record.remaining <= 1e-9:
                    state.release(record.spec.name)
                    record.status = DONE
                    record.completion = now
                    running.remove(record)
                    done.append(record)

        # Payload jobs now *train*: replay the decided allocation history
        # through the real ElasticTrainer.  This runs after — and never
        # feeds back into — the closed-form simulation, so scheduling
        # outcomes are bit-identical with payloads stripped.
        for record in records.values():
            if record.spec.payload is not None and record.waypoints:
                record.train_summary = self._replay_payload(record)
        report = self._report(records, now, occupied_node_seconds, events)
        if driver is not None:
            report.fault_log = driver.summary()
        if brain_driver is not None:
            report.brain_log = brain_driver.summary()
        self._brain_driver = None
        return report

    def _replay_payload(self, record: JobRecord) -> dict:
        """Train a payload job's allocation history with ElasticTrainer."""
        from repro.api.registry import build_workload
        from repro.elastic.elastic_trainer import ElasticTrainer
        from repro.optim.sgd import SGD
        from repro.utils.seeding import new_rng

        payload = record.spec.payload
        assert payload is not None  # caller-checked
        workload = build_workload(
            payload.model, num_samples=payload.num_samples, rng=new_rng(payload.seed)
        )
        schedule = record.to_trace_schedule()
        start_nodes = record.waypoints[0][1]
        trainer = ElasticTrainer(
            workload.model,
            scheme=record.spec.scheme,
            density=record.spec.density,
            instance=self.instance,
            num_nodes=start_nodes,
            gpus_per_node=self._job_gpus(record.spec),
            min_nodes=record.spec.min_nodes,
            optimizer=SGD(lr=payload.lr, momentum=payload.momentum),
            seed=payload.seed,
        )
        try:
            report = trainer.run(
                workload.x,
                workload.y,
                iterations=record.spec.iterations,
                local_batch=payload.local_batch,
                schedule=schedule,
            )
        finally:
            trainer.close()
        return {
            "model": payload.model,
            "final_loss": report.final_loss,
            "useful_iterations": report.useful_iterations,
            "revocations": report.revocations,
            "joins": report.joins,
        }

    def _report(
        self,
        records: dict[str, JobRecord],
        makespan: float,
        occupied_node_seconds: float,
        events: int,
    ) -> SchedReport:
        outcomes = []
        for record in records.values():
            outcomes.append(
                JobOutcome(
                    job=record.spec.name,
                    policy=self.policy_name,
                    status=record.status,
                    priority=record.spec.priority,
                    nodes=len(record.nodes),
                    queue_wait_s=record.queue_wait(makespan),
                    jct_s=record.jct(),
                    iterations=record.progress,
                    goodput_it_per_s=(
                        record.progress / record.running_seconds
                        if record.running_seconds
                        else 0.0
                    ),
                    contention_slowdown=record.contention_slowdown(),
                    grows=record.grows,
                    shrinks=record.shrinks,
                    membership_epochs=(
                        record.membership.epoch if record.membership is not None else 0
                    ),
                    cost_usd=record.cost_usd,
                    deadline_met=record.deadline_met(),
                    waypoints=tuple(record.waypoints),
                    final_loss=(
                        record.train_summary["final_loss"]
                        if record.train_summary is not None
                        else None
                    ),
                )
            )
        outcomes.sort(key=lambda o: o.job)
        deadlines = [o.deadline_met for o in outcomes if o.deadline_met is not None]
        total_iterations = sum(o.iterations for o in outcomes)
        report = SchedReport(
            name=self.name,
            policy=self.policy_name,
            instance=self.instance,
            num_nodes=self.num_nodes,
            gpus_per_node=self.gpus_per_node,
            seed=self.seed,
            jobs=outcomes,
            makespan_s=makespan,
            total_cost_usd=sum(o.cost_usd for o in outcomes),
            utilization=(
                occupied_node_seconds / (self.num_nodes * makespan) if makespan else 0.0
            ),
            cluster_goodput_it_per_s=(
                total_iterations / makespan if makespan else 0.0
            ),
            mean_queue_wait_s=(
                sum(o.queue_wait_s for o in outcomes) / len(outcomes)
            ),
            deadline_hit_rate=(
                sum(deadlines) / len(deadlines) if deadlines else None
            ),
            events=events,
            traces={o.job: o.waypoints for o in outcomes},
        )
        return report


def compare_policies(
    jobs: Sequence[JobSpec],
    policies: Sequence[str],
    *,
    num_nodes: int,
    instance: str = "tencent",
    gpus_per_node: int | None = None,
    seed: int = 0,
    name: str = "sched",
    faults=None,
    brain=None,
) -> dict[str, SchedReport]:
    """Run the same job set under several placement policies.

    ``faults`` is an optional resolved ``FaultPlan`` (target ``sched``);
    the identical storm replays under every policy.  ``brain`` is an
    optional :class:`~repro.api.config.BrainConfig` applied to every
    policy run the same way.
    """
    if not policies:
        raise ValueError("need at least one policy")
    canonical = [POLICIES.canonical(p) or p for p in policies]
    duplicates = sorted({p for p in canonical if canonical.count(p) > 1})
    if duplicates:
        # Aliases resolve to one report key; running twice and silently
        # overwriting would waste a simulation and drop output.
        raise ValueError(
            f"policies resolve to duplicate entries: {', '.join(duplicates)}"
        )
    reports: dict[str, SchedReport] = {}
    for policy in policies:
        scheduler = MultiTenantScheduler(
            num_nodes=num_nodes,
            instance=instance,
            gpus_per_node=gpus_per_node,
            policy=policy,
            seed=seed,
            name=name,
            faults=faults,
            brain=brain,
        )
        reports[scheduler.policy_name] = scheduler.run(jobs)
    return reports


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PAYLOAD_COLUMNS",
    "JobOutcome",
    "SchedReport",
    "payload_for_reports",
    "MultiTenantScheduler",
    "compare_policies",
]
