"""Job specifications and runtime records for the multi-tenant scheduler.

A :class:`JobSpec` is everything the scheduler needs to know about one
tenant: the *workload shape* (a calibrated
:class:`~repro.models.profiles.ModelProfile` plus scheme/density/batch,
which the Fig. 1 :class:`~repro.perf.iteration_model.IterationModel`
turns into a per-iteration time), the *resource window* (``min_nodes`` /
``max_nodes`` / ``gpus_per_node`` — the elastic range the autoscaler may
move the job within), and the *policy inputs* (priority, deadline,
spot/on-demand preference, arrival time).

:class:`JobRecord` is the scheduler's mutable per-job state: the current
node allocation, progress, cost integrals, and — crucially — a
:class:`~repro.elastic.membership.MembershipView` driven through every
grow/shrink, so scheduler decisions run the *same* membership-epoch
machinery elastic training uses, and
:meth:`JobRecord.to_trace_schedule` can replay the allocation history
through an actual :class:`~repro.elastic.ElasticTrainer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elastic.events import TraceSchedule
from repro.elastic.membership import MembershipView
from repro.models.profiles import ModelProfile, get_profile
from repro.perf.iteration_model import SchemeKind

#: Accepted billing preferences.
PREFERENCES = ("spot", "on-demand")

#: Registry scheme name -> IterationModel scheme kind.  The iteration
#: model knows the four Table 3 aggregation archetypes; the remaining
#: registered schemes map onto the archetype with the same traffic
#: pattern (gTop-k and naiveag-mstopk move sparse blocks over a flat
#: All-Gather like TopK-SGD; a dense ring prices like the dense tree at
#: these sizes).  Scheduling accepts *any* registered scheme name and
#: degrades it through the matching archetype.
SCHEME_KINDS: dict[str, SchemeKind] = {
    "dense": SchemeKind.DENSE_TREE,
    "dense-ring": SchemeKind.DENSE_TREE,
    "2dtar": SchemeKind.DENSE_2DTAR,
    "topk": SchemeKind.TOPK_NAIVE,
    "gtopk": SchemeKind.TOPK_NAIVE,
    "naiveag-mstopk": SchemeKind.TOPK_NAIVE,
    "mstopk": SchemeKind.MSTOPK_HIER,
}


def scheme_kind_of(scheme: str) -> SchemeKind:
    """Map a registered comm-scheme name/alias to its timing archetype."""
    from repro.api.registry import SCHEMES

    canonical = SCHEMES.canonical(scheme)
    if canonical is None:
        raise KeyError(
            f"unknown scheme {scheme!r}; registered: {', '.join(SCHEMES.available())}"
        )
    if canonical in SCHEME_KINDS:
        return SCHEME_KINDS[canonical]
    # A scheme registered after this table was written: price it as the
    # flat sparse archetype (the conservative choice on cloud Ethernet).
    return SchemeKind.TOPK_NAIVE


@dataclass(frozen=True)
class TrainPayload:
    """An actual trainable workload attached to a scheduled job.

    The scheduler core stays closed-form for *every* job — placement,
    contention and completion times come from the
    :class:`~repro.perf.iteration_model.IterationModel` fast path alone.
    A job carrying a payload additionally *trains*: once the simulation
    has decided its allocation history, that history replays through the
    real :class:`~repro.elastic.ElasticTrainer` (the same machinery
    :meth:`JobRecord.to_trace_schedule` feeds), and the resulting final
    loss lands on the job's outcome.  Payloads never perturb scheduling
    decisions, so stripping them leaves every other outcome field
    bit-identical — the fast-path/trainer-path parity the test suite
    pins.

    Parameters
    ----------
    model:
        Registered model workload name (``python -m repro list models``).
    num_samples:
        Synthetic dataset size for the workload builder.
    local_batch:
        Per-worker batch for the replay run.
    lr / momentum:
        SGD hyperparameters.
    seed:
        Fixes data synthesis, init and the replay's event stream.
    """

    model: str = "mlp-tiny"
    num_samples: int = 96
    local_batch: int = 8
    lr: float = 0.05
    momentum: float = 0.9
    seed: int = 0

    def __post_init__(self) -> None:
        from repro.api.registry import MODELS

        if self.model not in MODELS:
            raise ValueError(
                f"unknown payload model {self.model!r}; "
                f"registered: {', '.join(MODELS.available())}"
            )
        if self.num_samples < 1 or self.local_batch < 1:
            raise ValueError("payload num_samples and local_batch must be >= 1")
        if not 0 <= self.momentum < 1:
            raise ValueError(f"payload momentum must be in [0, 1), got {self.momentum}")


@dataclass(frozen=True)
class JobSpec:
    """One schedulable training job.

    Parameters
    ----------
    name:
        Unique job identifier.
    profile:
        Workload profile name (``resnet50`` / ``vgg19`` / ``transformer``,
        resolved through :func:`repro.models.profiles.get_profile`).
    scheme:
        Registered comm-scheme name (any ``repro.api`` registry name or
        alias); timed via :data:`SCHEME_KINDS`.
    density:
        Top-k sparsity rho for the sparse schemes, in (0, 1].
    resolution:
        Input resolution in pixels; ``None`` picks 224 when the profile
        is calibrated for it, else the profile's reference resolution
        (0 for the Transformer).
    local_batch:
        Per-GPU batch; ``None`` uses the profile default.
    iterations:
        Total iterations of work the job needs to finish.
    priority:
        Higher-priority jobs are placed first and may *shrink*
        strictly-lower-priority jobs to make room.
    deadline_seconds:
        Optional completion deadline, relative to arrival.
    preference:
        ``"spot"`` (billed at the cloud's spot discount) or
        ``"on-demand"`` (full hourly price).
    min_nodes / max_nodes:
        Elastic allocation window; the autoscaler keeps the job within
        it.  A job is only admitted once ``min_nodes`` fit.
    gpus_per_node:
        GPUs the job uses on each of its nodes; ``None`` means the whole
        node.  Smaller slices let jobs co-locate (and contend).
    arrival_seconds:
        Submission time on the virtual clock.
    payload:
        Optional :class:`TrainPayload`.  ``None`` (the default, and what
        every trace-scale job uses) keeps the job entirely on the
        closed-form fast path; a payload makes the job *train* its
        scheduler-decided allocation history through the real
        :class:`~repro.elastic.ElasticTrainer` after the simulation.
    """

    name: str
    profile: str = "resnet50"
    scheme: str = "mstopk"
    density: float = 0.01
    resolution: int | None = None
    local_batch: int | None = None
    iterations: int = 200
    priority: int = 0
    deadline_seconds: float | None = None
    preference: str = "spot"
    min_nodes: int = 1
    max_nodes: int = 2
    gpus_per_node: int | None = None
    arrival_seconds: float = 0.0
    payload: TrainPayload | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if not 0 < self.density <= 1:
            raise ValueError(f"density must be in (0, 1], got {self.density}")
        if self.preference not in PREFERENCES:
            raise ValueError(
                f"preference must be one of {PREFERENCES}, got {self.preference!r}"
            )
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ValueError(
                f"need 1 <= min_nodes <= max_nodes, got "
                f"[{self.min_nodes}, {self.max_nodes}]"
            )
        if self.gpus_per_node is not None and self.gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")
        if self.arrival_seconds < 0:
            raise ValueError(f"arrival_seconds must be >= 0, got {self.arrival_seconds}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(f"deadline_seconds must be > 0, got {self.deadline_seconds}")
        if self.local_batch is not None and self.local_batch < 1:
            raise ValueError(f"local_batch must be >= 1, got {self.local_batch}")
        # Resolve the profile and scheme eagerly so a typo fails at
        # construction (and config validation), not mid-simulation.
        get_profile(self.profile)
        scheme_kind_of(self.scheme)

    # -- resolution helpers ---------------------------------------------------
    def model_profile(self) -> ModelProfile:
        return get_profile(self.profile)

    def scheme_kind(self) -> SchemeKind:
        return scheme_kind_of(self.scheme)

    def resolved_resolution(self, profile: ModelProfile | None = None) -> int:
        profile = profile if profile is not None else self.model_profile()
        if self.resolution is not None:
            return self.resolution
        if 224 in profile.resolution_throughput:
            return 224
        return max(profile.resolution_throughput)

    def resolved_local_batch(self, profile: ModelProfile | None = None) -> int:
        profile = profile if profile is not None else self.model_profile()
        if self.local_batch is not None:
            return self.local_batch
        return profile.default_local_batch

    def workload_key(self, gpus_per_node: int) -> tuple:
        """Everything the iteration-time model depends on.

        Two jobs with equal keys are timing-identical at any allocation,
        so the scheduler memoizes per *key*, not per job name — a
        10k-job trace typically collapses to a few dozen keys.
        """
        profile = self.model_profile()
        return (
            profile.name,
            self.scheme_kind(),
            self.density,
            self.resolved_resolution(profile),
            self.resolved_local_batch(profile),
            gpus_per_node,
        )


#: JobRecord lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"


@dataclass
class JobRecord:
    """Mutable scheduler-side state of one job."""

    spec: JobSpec
    status: str = QUEUED
    nodes: list[int] = field(default_factory=list)
    progress: float = 0.0
    first_start: float | None = None
    completion: float | None = None
    running_seconds: float = 0.0
    solo_equivalent: float = 0.0
    cost_usd: float = 0.0
    grows: int = 0
    shrinks: int = 0
    #: (iteration, node_count) allocation history; seeded at placement.
    waypoints: list[tuple[int, int]] = field(default_factory=list)
    membership: MembershipView | None = None
    #: Post-simulation :class:`~repro.elastic.ElasticTrainer` replay
    #: result for payload jobs (final loss, revocations, ...); ``None``
    #: for payload-free jobs and jobs that were never placed.
    train_summary: dict | None = None

    @property
    def remaining(self) -> float:
        return max(0.0, self.spec.iterations - self.progress)

    def queue_wait(self, now: float) -> float:
        """Seconds spent waiting before first placement (so far)."""
        started = self.first_start if self.first_start is not None else now
        return max(0.0, started - self.spec.arrival_seconds)

    def jct(self) -> float | None:
        """Job completion time (arrival -> done), if finished."""
        if self.completion is None:
            return None
        return self.completion - self.spec.arrival_seconds

    def deadline_met(self) -> bool | None:
        """Whether the deadline held; ``None`` when no deadline was set."""
        if self.spec.deadline_seconds is None:
            return None
        jct = self.jct()
        return jct is not None and jct <= self.spec.deadline_seconds

    def contention_slowdown(self) -> float:
        """How much co-location cost this job (1.0 = ran as if solo).

        Ratio of the iterations an uncontended run at the same allocation
        history would have finished to the iterations actually finished.
        """
        if self.progress <= 0:
            return 1.0
        return self.solo_equivalent / self.progress

    def mark_waypoint(self) -> None:
        self.waypoints.append((int(round(self.progress)), len(self.nodes)))

    def to_trace_schedule(self, *, warned: bool = True) -> TraceSchedule:
        """The allocation history as a replayable elastic churn trace.

        Feed this to :class:`~repro.elastic.ElasticTrainer` (with
        ``num_nodes`` equal to the first waypoint's count) to actually
        *train* through the membership changes this scheduler decided —
        scale events driven by the scheduler instead of recorded traces.
        """
        if not self.waypoints:
            raise ValueError(f"job {self.spec.name!r} was never placed")
        return TraceSchedule.from_deltas(self.waypoints, warned=warned)


__all__ = [
    "PREFERENCES",
    "SCHEME_KINDS",
    "scheme_kind_of",
    "TrainPayload",
    "JobSpec",
    "JobRecord",
    "QUEUED",
    "RUNNING",
    "DONE",
]
