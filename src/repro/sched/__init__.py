"""Multi-tenant cloud scheduling over the virtual cluster.

The paper trains *one* job on a dedicated 25 Gbps cluster; this
subsystem runs *many*.  A queue of :class:`JobSpec` (workload profile,
comm scheme, priority, deadline, spot/on-demand preference, elastic node
window) is admitted onto one shared virtual cluster by
:class:`MultiTenantScheduler`:

* placement is a pluggable ordering policy (:data:`POLICIES` registry:
  ``bin-pack`` / ``spread`` / ``network-aware``; extend with
  :func:`register_policy`);
* co-located jobs split node NIC capacity
  (:meth:`NetworkModel.contended <repro.cluster.network.NetworkModel
  .contended>`), so per-job throughput from the Fig. 1 iteration model
  degrades realistically under contention;
* higher-priority arrivals shrink lower-priority jobs (and idle capacity
  grows running ones) through the same
  :class:`~repro.elastic.membership.MembershipView` epochs elastic
  training uses; every job's allocation history replays through
  :class:`~repro.elastic.ElasticTrainer` via
  :meth:`JobRecord.to_trace_schedule`;
* the :class:`SchedReport` carries per-job queue wait / JCT / goodput /
  contention slowdown / dollars and cluster-wide makespan, utilization
  and deadline hit rate, in the ``BENCH_*.json`` schema.

Declarative entry points: ``SchedConfig`` (:mod:`repro.api.config`) and
``python -m repro sched --config examples/configs/multi_tenant.json``.
"""

from repro.sched.job import (
    DONE,
    PREFERENCES,
    QUEUED,
    RUNNING,
    SCHEME_KINDS,
    JobRecord,
    JobSpec,
    TrainPayload,
    scheme_kind_of,
)
from repro.sched.policies import (
    POLICIES,
    ClusterState,
    build_policy,
    register_policy,
)
from repro.sched.scheduler import (
    PAYLOAD_COLUMNS,
    JobOutcome,
    MultiTenantScheduler,
    SchedReport,
    compare_policies,
    payload_for_reports,
)

__all__ = [
    "JobSpec",
    "JobRecord",
    "TrainPayload",
    "SCHEME_KINDS",
    "scheme_kind_of",
    "PREFERENCES",
    "QUEUED",
    "RUNNING",
    "DONE",
    "POLICIES",
    "register_policy",
    "build_policy",
    "ClusterState",
    "MultiTenantScheduler",
    "SchedReport",
    "JobOutcome",
    "compare_policies",
    "payload_for_reports",
    "PAYLOAD_COLUMNS",
]
