"""Production-scale cluster traces for the multi-tenant scheduler.

Three pieces turn the hand-written-scenario scheduler into a
trace-driven replay engine (see ``docs/traces.md`` for the format and
an ops walkthrough):

* :mod:`~repro.sched.traces.records` / :mod:`~repro.sched.traces
  .ingest` — an Alibaba-PAI-2020-style job/task/instance record format
  (JSON-lines or CSV directory), parsed into
  :class:`~repro.sched.job.JobSpec` streams and re-serializable
  losslessly;
* :mod:`~repro.sched.traces.synth` — a seeded generator matching the
  published distribution shapes (heavy-tailed durations, bursty diurnal
  arrivals, skewed request mixes), so any scale is reproducible
  offline;
* :mod:`~repro.sched.traces.replay` — the config-to-specs loader shared
  by the facade, the CLI and the ``repro.exec`` pool workers, plus the
  distribution-style BENCH payload trace runs emit.

CLI: ``python -m repro trace gen`` / ``python -m repro trace validate``
/ ``python -m repro sched --trace <file>``.
"""

from repro.sched.traces.ingest import (
    load_trace,
    specs_to_trace,
    trace_stats,
    trace_to_specs,
    validate_trace,
    write_trace,
    write_trace_csv,
)
from repro.sched.traces.records import (
    Trace,
    TraceError,
    TraceInstance,
    TraceJob,
    TraceTask,
)
from repro.sched.traces.replay import (
    DISTRIBUTION_COLUMNS,
    distribution_rows,
    job_specs_for,
    payload_for_trace_reports,
)
from repro.sched.traces.synth import SyntheticTraceConfig, generate_trace

__all__ = [
    "Trace",
    "TraceError",
    "TraceJob",
    "TraceTask",
    "TraceInstance",
    "load_trace",
    "validate_trace",
    "trace_to_specs",
    "specs_to_trace",
    "write_trace",
    "write_trace_csv",
    "trace_stats",
    "SyntheticTraceConfig",
    "generate_trace",
    "job_specs_for",
    "distribution_rows",
    "payload_for_trace_reports",
    "DISTRIBUTION_COLUMNS",
]
