"""Seeded synthetic cluster-trace generator.

Public GPU-cluster traces (Alibaba PAI 2020; the Philly and Helios
logs) agree on three robust shapes, which this generator reproduces so
any scale is available offline:

* **Heavy-tailed durations** — job lengths span four orders of
  magnitude; the bulk is minutes, the tail is days.  Iterations are
  drawn log-normally and clipped.
* **Bursty, diurnal arrivals** — submissions follow the working day
  (a sinusoidal daily intensity) punctuated by bursts (sweeps and
  retries submit many jobs in minutes).  Arrivals sample an
  inhomogeneous intensity via its inverse CDF, so a trace always has
  exactly ``num_jobs`` jobs.
* **Skewed request mixes** — most jobs are small (1 node, a GPU slice),
  a few want many nodes; priorities are mostly best-effort with a thin
  production band; users submit in very unequal volumes.

Everything is driven by one :func:`~repro.utils.seeding.new_rng` seed:
same config => byte-identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sched.traces.records import Trace, TraceJob, TraceTask
from repro.utils.seeding import new_rng

#: Weighted categorical helpers use plain dicts: value -> weight.
_DEFAULT_WORKLOADS = {"resnet50": 0.55, "vgg19": 0.2, "transformer": 0.25}
_DEFAULT_SCHEMES = {"mstopk": 0.4, "topk": 0.2, "dense": 0.3, "2dtar": 0.1}
_DEFAULT_DENSITIES = {0.01: 0.6, 0.05: 0.3, 0.1: 0.1}
_DEFAULT_PRIORITIES = {0: 0.6, 1: 0.25, 2: 0.1, 3: 0.05}
_DEFAULT_GPUS = {1: 0.25, 2: 0.35, 4: 0.25, 8: 0.15}
_DEFAULT_NODES = {1: 0.55, 2: 0.25, 4: 0.15, 8: 0.05}


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs of the generator (all distributions documented in
    ``docs/traces.md``)."""

    #: Number of jobs (exact, not an expectation).
    num_jobs: int = 1000
    #: RNG seed; the sole source of randomness.
    seed: int = 0
    #: Trace horizon in seconds (default: one day).
    duration_seconds: float = 86_400.0
    #: Log-normal iteration-count parameters (of ln iterations) and the
    #: clip range.  Defaults give a ~600-iteration median with a tail
    #: two orders of magnitude longer.
    iterations_mu: float = 6.4
    iterations_sigma: float = 1.2
    min_iterations: int = 20
    max_iterations: int = 50_000
    #: Diurnal modulation depth in [0, 1): 0 = flat Poisson arrivals.
    diurnal_amplitude: float = 0.6
    #: Expected burst windows per trace and their shape.
    burst_rate: float = 6.0
    burst_duration_seconds: float = 900.0
    burst_intensity: float = 8.0
    #: Approximate submitters; job volume per user is Zipf-skewed.
    num_users: int = 32
    #: Fraction of jobs given a deadline (drawn from the job's own
    #: expected duration times a slack factor).
    deadline_fraction: float = 0.15
    #: Fraction billed on-demand (the rest run on spot capacity).
    on_demand_fraction: float = 0.2
    #: Fraction of jobs carrying a :class:`~repro.sched.job.TrainPayload`
    #: (these get small iteration counts so replay actually trains).
    payload_fraction: float = 0.0
    #: Categorical mixes: value -> weight (normalized internally).
    workloads: dict = field(default_factory=lambda: dict(_DEFAULT_WORKLOADS))
    schemes: dict = field(default_factory=lambda: dict(_DEFAULT_SCHEMES))
    densities: dict = field(default_factory=lambda: dict(_DEFAULT_DENSITIES))
    priorities: dict = field(default_factory=lambda: dict(_DEFAULT_PRIORITIES))
    gpus_per_node: dict = field(default_factory=lambda: dict(_DEFAULT_GPUS))
    max_nodes: dict = field(default_factory=lambda: dict(_DEFAULT_NODES))

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ValueError(f"num_jobs must be >= 1, got {self.num_jobs}")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be > 0")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        for name in ("deadline_fraction", "on_demand_fraction", "payload_fraction"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.min_iterations < 1 or self.max_iterations < self.min_iterations:
            raise ValueError("need 1 <= min_iterations <= max_iterations")
        for name in (
            "workloads", "schemes", "densities", "priorities",
            "gpus_per_node", "max_nodes",
        ):
            mix = getattr(self, name)
            if not mix or any(w < 0 for w in mix.values()) or sum(mix.values()) <= 0:
                raise ValueError(f"{name} must map values to non-negative weights")


def _pick(rng, mix: dict, size: int) -> np.ndarray:
    values = list(mix)
    weights = np.asarray([mix[v] for v in values], dtype=float)
    index = rng.choice(len(values), size=size, p=weights / weights.sum())
    return np.asarray(values, dtype=object)[index]


def _arrival_times(rng, config: SyntheticTraceConfig) -> np.ndarray:
    """Exactly ``num_jobs`` arrivals from the diurnal + burst intensity."""
    horizon = config.duration_seconds
    grid = np.linspace(0.0, horizon, 2048)
    # Working-day sinusoid, trough at t=0 (midnight-ish).
    intensity = 1.0 - config.diurnal_amplitude * np.cos(
        2 * np.pi * grid / 86_400.0
    )
    for _ in range(rng.poisson(config.burst_rate)):
        start = rng.uniform(0.0, horizon)
        length = rng.exponential(config.burst_duration_seconds)
        in_burst = (grid >= start) & (grid < start + length)
        intensity = np.where(in_burst, intensity * config.burst_intensity, intensity)
    cdf = np.cumsum(intensity)
    cdf /= cdf[-1]
    times = np.interp(rng.uniform(0.0, 1.0, size=config.num_jobs), cdf, grid)
    return np.sort(times)


def generate_trace(config: SyntheticTraceConfig) -> Trace:
    """Generate a validated synthetic trace (job + task rows)."""
    rng = new_rng(config.seed)
    n = config.num_jobs
    arrivals = _arrival_times(rng, config)
    iterations = np.clip(
        np.round(np.exp(rng.normal(config.iterations_mu, config.iterations_sigma, n))),
        config.min_iterations,
        config.max_iterations,
    ).astype(int)
    workloads = _pick(rng, config.workloads, n)
    schemes = _pick(rng, config.schemes, n)
    densities = _pick(rng, config.densities, n)
    priorities = _pick(rng, config.priorities, n)
    gpus = _pick(rng, config.gpus_per_node, n)
    max_nodes = _pick(rng, config.max_nodes, n)
    # Zipf-skewed submitter volumes (a few users own most jobs).
    user_weights = 1.0 / np.arange(1, config.num_users + 1, dtype=float)
    user_index = rng.choice(
        config.num_users, size=n, p=user_weights / user_weights.sum()
    )
    user_tags = rng.integers(0, 0xFFFF, size=config.num_users)
    has_deadline = rng.uniform(size=n) < config.deadline_fraction
    on_demand = rng.uniform(size=n) < config.on_demand_fraction
    has_payload = rng.uniform(size=n) < config.payload_fraction
    deadline_slack = rng.uniform(2.0, 8.0, size=n)
    payload_iterations = rng.integers(20, 61, size=n)
    payload_seeds = rng.integers(0, 2**31 - 1, size=n)

    trace = Trace()
    for i in range(n):
        name = f"job-{i:05d}"
        nodes = int(max_nodes[i])
        min_nodes = 1 if nodes == 1 or rng.uniform() < 0.5 else nodes // 2
        its = int(iterations[i])
        gpu_count = int(gpus[i])
        payload = None
        if has_payload[i]:
            # Payload jobs really train their allocation history, so cap
            # the work at something a laptop replays in seconds — and
            # keep the allocation small so the default payload dataset
            # (96 samples) still shards across the full elastic window.
            its = int(payload_iterations[i])
            nodes = min(nodes, 2)
            min_nodes = min(min_nodes, nodes)
            gpu_count = min(gpu_count, 2)
            payload = {"model": "mlp-tiny", "seed": int(payload_seeds[i])}
        deadline = None
        if has_deadline[i]:
            # Slack over an optimistic serial estimate (~0.5 s/iter).
            deadline = round(float(deadline_slack[i]) * its * 0.5 + 600.0, 3)
        trace.jobs.append(
            TraceJob(
                job_name=name,
                user=f"u{int(user_tags[user_index[i]]):04x}",
                submit_time=round(float(arrivals[i]), 3),
                priority=int(priorities[i]),
                preference="on-demand" if on_demand[i] else "spot",
                deadline=deadline,
                workload=str(workloads[i]),
                scheme=str(schemes[i]),
                density=float(densities[i]),
            )
        )
        trace.tasks.append(
            TraceTask(
                job_name=name,
                inst_num=nodes,
                min_inst_num=min_nodes,
                plan_gpu=gpu_count * 100,
                iterations=its,
                payload=payload,
            )
        )
    return trace


__all__ = ["SyntheticTraceConfig", "generate_trace"]
