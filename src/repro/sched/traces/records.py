"""Record types of the cluster-trace format.

The format follows the Alibaba PAI 2020 GPU-cluster trace layout — the
de-facto exchange shape for production DL scheduling studies — with
three record kinds:

* **job** — one submission: who submitted it, when, at what priority,
  and what workload shape it trains (profile / comm scheme / density).
* **task** — the job's worker group: how many instances (nodes) it
  wants (``inst_num``), its elastic floor (``min_inst_num``), and the
  GPU share per instance (``plan_gpu``, in percent of one GPU — 100
  means one full GPU, 800 a whole 8-GPU node, matching the PAI
  convention of percentage GPU requests).
* **instance** — optional per-worker placement observations
  (start/end/machine).  Instances are carried through parsing and
  re-serialization untouched but are *informational*: replay derives
  placements from the scheduler, not from the recorded ones.

The exact field-by-field schema is documented in ``docs/traces.md``
(the external trace reference is not vendored here).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TraceError(ValueError):
    """A malformed trace file (bad field, unknown reference, bad JSON).

    Subclasses :class:`ValueError` so the CLI's one-line ``error: ...``
    exit-2 handling applies without special cases.
    """


#: Job statuses carried through from PAI-style traces (informational).
JOB_STATUSES = ("Terminated", "Running", "Waiting", "Failed")


@dataclass(frozen=True)
class TraceJob:
    """One job submission row."""

    job_name: str
    #: Hashed submitter id (PAI traces anonymize users the same way).
    user: str = "u0000"
    #: Submission time on the trace clock, seconds >= 0.
    submit_time: float = 0.0
    #: Placement priority; higher may shrink strictly-lower ones.
    priority: int = 0
    #: Billing: ``spot`` or ``on-demand``.
    preference: str = "spot"
    #: Completion deadline, seconds after submit (None = none).
    deadline: float | None = None
    #: Workload profile name (``resnet50`` / ``vgg19`` / ``transformer``).
    workload: str = "resnet50"
    #: Registered comm-scheme name or alias.
    scheme: str = "mstopk"
    #: Top-k sparsity rho in (0, 1].
    density: float = 0.01
    #: Final status in the source cluster (informational).
    status: str = "Terminated"


@dataclass(frozen=True)
class TraceTask:
    """The worker-group row of one job."""

    job_name: str
    task_name: str = "worker"
    #: Requested instance (node) count — the job's elastic ceiling.
    inst_num: int = 1
    #: Minimum instances the job can make progress with (elastic floor).
    min_inst_num: int = 1
    #: GPU request per instance in percent of one GPU (100 = 1 GPU);
    #: must be a positive multiple of 100 here since the scheduler
    #: places whole GPUs.  None = every GPU on the node.
    plan_gpu: int | None = None
    #: Input resolution in pixels (None = the profile default).
    resolution: int | None = None
    #: Per-GPU batch (None = the profile default).
    local_batch: int | None = None
    #: Iterations of work the job needs, >= 1.
    iterations: int = 200
    #: Optional training payload (:class:`~repro.sched.job.TrainPayload`
    #: fields as a mapping); None keeps the job on the closed-form path.
    payload: dict | None = None


@dataclass(frozen=True)
class TraceInstance:
    """One worker-instance observation (informational only)."""

    job_name: str
    task_name: str = "worker"
    inst_name: str = "instance_0"
    #: Machine the instance landed on in the source cluster.
    worker_name: str = ""
    start_time: float | None = None
    end_time: float | None = None
    status: str = "Terminated"


@dataclass
class Trace:
    """A parsed trace: job + task rows (and optional instance rows)."""

    jobs: list[TraceJob] = field(default_factory=list)
    tasks: list[TraceTask] = field(default_factory=list)
    instances: list[TraceInstance] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.jobs)


__all__ = [
    "TraceError",
    "JOB_STATUSES",
    "TraceJob",
    "TraceTask",
    "TraceInstance",
    "Trace",
]
