"""Trace-aware job loading and trace-scale result payloads.

:func:`job_specs_for` is the one place a :class:`~repro.api.config
.SchedConfig` becomes scheduler job specs — the serial facade path, the
``repro.exec`` pool workers and the CLI all call it, so a ``trace``
path in the config is honoured identically everywhere (each pool worker
loads the trace itself; only the config dict crosses the process
boundary).

:func:`payload_for_trace_reports` is the BENCH payload for trace-scale
runs: per-job rows would mean tens of thousands of lines, so it emits
JCT / queue-wait / slowdown / cost *distributions* (nearest-rank
percentiles — deterministic, no interpolation) per policy instead.
Wall-clock throughput never enters the rows, which keeps ``--jobs 1``
and ``--jobs 4`` replays bit-identical; jobs/sec lives in bench meta.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.sched.job import DONE, JobSpec
from repro.sched.scheduler import BENCH_SCHEMA_VERSION, SchedReport
from repro.sched.traces.ingest import load_trace, trace_to_specs
from repro.utils.tables import format_table

#: Columns of the per-policy distribution rows.
DISTRIBUTION_COLUMNS = [
    "policy",
    "metric",
    "count",
    "mean",
    "p50",
    "p90",
    "p99",
    "max",
]

#: metric name -> (value extractor over JobOutcome, done-jobs only?).
_METRICS = {
    "jct_s": (lambda o: o.jct_s, True),
    "queue_wait_s": (lambda o: o.queue_wait_s, False),
    "contention_slowdown": (lambda o: o.contention_slowdown, True),
    "cost_usd": (lambda o: o.cost_usd, False),
}


def job_specs_for(config) -> list[JobSpec]:
    """The job specs a sched config describes (inline jobs or a trace)."""
    if getattr(config, "trace", None):
        return trace_to_specs(load_trace(config.trace))
    return [job.to_spec() for job in config.jobs]


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(len(ordered), rank) - 1]


def distribution_rows(reports: Sequence[SchedReport]) -> list[list]:
    rows: list[list] = []
    for report in reports:
        done = [o for o in report.jobs if o.status == DONE]
        for metric, (extract, done_only) in _METRICS.items():
            outcomes = done if done_only else report.jobs
            values = sorted(
                v for v in (extract(o) for o in outcomes) if v is not None
            )
            if not values:
                rows.append([report.policy, metric, 0, None, None, None, None, None])
                continue
            rows.append(
                [
                    report.policy,
                    metric,
                    len(values),
                    round(sum(values) / len(values), 4),
                    round(_percentile(values, 0.50), 4),
                    round(_percentile(values, 0.90), 4),
                    round(_percentile(values, 0.99), 4),
                    round(values[-1], 4),
                ]
            )
    return rows


def payload_for_trace_reports(
    reports: Sequence[SchedReport],
    *,
    bench: str = "trace_replay",
    trace: str | None = None,
) -> dict:
    """One BENCH-schema payload of distribution rows for trace runs."""
    if not reports:
        raise ValueError("need at least one SchedReport")
    first = reports[0]
    rows = distribution_rows(reports)
    title = (
        f"{bench}: {len(first.jobs)} jobs on {first.num_nodes}x"
        f"{first.gpus_per_node} {first.instance} "
        f"({', '.join(r.policy for r in reports)})"
    )
    text = format_table(DISTRIBUTION_COLUMNS, rows, title=title)
    return {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "structured": True,
        "columns": list(DISTRIBUTION_COLUMNS),
        "rows": rows,
        "text": text if text.endswith("\n") else text + "\n",
        "meta": {
            "trace": trace,
            "num_jobs": len(first.jobs),
            "instance": first.instance,
            "num_nodes": first.num_nodes,
            "gpus_per_node": first.gpus_per_node,
            "seed": first.seed,
            "policies": [r.policy for r in reports],
            "summary": {r.policy: r.summary() for r in reports},
        },
    }


__all__ = [
    "DISTRIBUTION_COLUMNS",
    "job_specs_for",
    "distribution_rows",
    "payload_for_trace_reports",
]
