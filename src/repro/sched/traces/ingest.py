"""Parse, validate and (re-)serialize cluster traces.

Two on-disk layouts, both documented field-by-field in
``docs/traces.md``:

* **JSON-lines** (one file, ``*.jsonl``): each line is one record with a
  ``"type"`` discriminator — ``{"type": "job", ...}``, ``{"type":
  "task", ...}``, ``{"type": "instance", ...}``.
* **CSV directory** (PAI-style): ``job.csv`` + ``task.csv`` and an
  optional ``instance.csv``, empty cells meaning ``None``.

Every parse error raises :class:`~repro.sched.traces.records.TraceError`
with a ``file:line`` (or ``file:row``) prefix, so the CLI can fail with
one actionable line instead of a traceback.

Conversion is lossless for every scheduling-relevant field:
``specs_to_trace(trace_to_specs(t))`` reproduces ``t``'s job and task
rows exactly when ``t`` itself came from :func:`specs_to_trace` (or the
synthetic generator); for foreign traces the only fields not carried
into :class:`~repro.sched.job.JobSpec` are the informational ones
(``user``, ``status``, instance rows), which re-serialization
re-derives deterministically.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
from typing import Any, Sequence

from repro.sched.job import JobSpec, TrainPayload
from repro.sched.traces.records import (
    Trace,
    TraceError,
    TraceInstance,
    TraceJob,
    TraceTask,
)
from repro.utils.seeding import derive_seed

#: JSONL record-type discriminator -> record class.
RECORD_TYPES = {"job": TraceJob, "task": TraceTask, "instance": TraceInstance}

#: CSV file name per record kind (PAI-style directory layout).
CSV_FILES = {"job": "job.csv", "task": "task.csv", "instance": "instance.csv"}

_FIELDS = {
    kind: {f.name: f for f in dataclasses.fields(cls)}
    for kind, cls in RECORD_TYPES.items()
}

#: Fields parsed leniently from strings (CSV cells are all strings).
_FLOAT_FIELDS = {"submit_time", "deadline", "density", "start_time", "end_time"}
_INT_FIELDS = {
    "priority",
    "inst_num",
    "min_inst_num",
    "plan_gpu",
    "resolution",
    "local_batch",
    "iterations",
}
#: Fields where None is meaningful (empty CSV cell / JSON null).
_OPTIONAL_FIELDS = {
    "deadline",
    "plan_gpu",
    "resolution",
    "local_batch",
    "payload",
    "start_time",
    "end_time",
}


def _coerce(kind: str, name: str, value: Any, where: str) -> Any:
    if value is None or value == "":
        if name in _OPTIONAL_FIELDS:
            return None
        raise TraceError(f"{where}: {kind} field {name!r} must not be empty")
    try:
        if name in _FLOAT_FIELDS:
            return float(value)
        if name in _INT_FIELDS:
            if isinstance(value, float) and value != int(value):
                raise ValueError(f"not an integer: {value}")
            return int(value)
    except (TypeError, ValueError) as exc:
        raise TraceError(f"{where}: {kind} field {name!r}: {exc}") from exc
    if name == "payload":
        if isinstance(value, str):  # CSV cell carrying JSON
            try:
                value = json.loads(value)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{where}: payload is not valid JSON: {exc}") from exc
        if not isinstance(value, dict):
            raise TraceError(
                f"{where}: payload must be a mapping, got {type(value).__name__}"
            )
        return value
    return value


def _build_record(kind: str, data: dict, where: str):
    fields = _FIELDS[kind]
    unknown = sorted(set(data) - set(fields))
    if unknown:
        raise TraceError(
            f"{where}: unknown {kind} field(s) {', '.join(unknown)}; "
            f"accepted: {', '.join(fields)}"
        )
    if "job_name" not in data or not data["job_name"]:
        raise TraceError(f"{where}: {kind} record needs a non-empty job_name")
    kwargs = {k: _coerce(kind, k, v, where) for k, v in data.items()}
    return RECORD_TYPES[kind](**kwargs)


# ---------------------------------------------------------------------------
# Readers
# ---------------------------------------------------------------------------


def load_trace(path: str | pathlib.Path) -> Trace:
    """Load a trace from a ``.jsonl`` file or a PAI-style CSV directory.

    The returned trace is validated (:func:`validate_trace`): referential
    integrity and field ranges hold, but workload/scheme names are only
    resolved when converting to specs.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise TraceError(f"trace not found: {path}")
    trace = _load_csv_dir(path) if path.is_dir() else _load_jsonl(path)
    validate_trace(trace, where=str(path))
    return trace


def _load_jsonl(path: pathlib.Path) -> Trace:
    trace = Trace()
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            where = f"{path}:{lineno}"
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{where}: invalid JSON: {exc}") from exc
            if not isinstance(data, dict):
                raise TraceError(f"{where}: record must be a JSON object")
            kind = data.pop("type", None)
            if kind not in RECORD_TYPES:
                raise TraceError(
                    f"{where}: record 'type' must be one of "
                    f"{', '.join(RECORD_TYPES)}, got {kind!r}"
                )
            record = _build_record(kind, data, where)
            getattr(trace, kind + "s").append(record)
    return trace


def _load_csv_dir(path: pathlib.Path) -> Trace:
    trace = Trace()
    for kind, filename in CSV_FILES.items():
        file = path / filename
        if not file.exists():
            if kind == "instance":
                continue  # instance rows are optional
            raise TraceError(f"trace directory {path} is missing {filename}")
        with file.open(newline="") as handle:
            reader = csv.DictReader(handle)
            expected = set(_FIELDS[kind])
            header = set(reader.fieldnames or ())
            if not header <= expected:
                raise TraceError(
                    f"{file}: unknown column(s) "
                    f"{', '.join(sorted(header - expected))}; "
                    f"accepted: {', '.join(sorted(expected))}"
                )
            for rowno, row in enumerate(reader, start=2):
                record = _build_record(kind, row, f"{file}:{rowno}")
                getattr(trace, kind + "s").append(record)
    return trace


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_trace(trace: Trace, *, where: str = "trace") -> Trace:
    """Referential and range checks; raises :class:`TraceError`."""
    if not trace.jobs:
        raise TraceError(f"{where}: no job records")
    names = [job.job_name for job in trace.jobs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise TraceError(f"{where}: duplicate job_name(s): {', '.join(dupes)}")
    tasks_of: dict[str, int] = {}
    for task in trace.tasks:
        tasks_of[task.job_name] = tasks_of.get(task.job_name, 0) + 1
    known = set(names)
    for job_name in tasks_of:
        if job_name not in known:
            raise TraceError(f"{where}: task references unknown job {job_name!r}")
    missing = [n for n in names if n not in tasks_of]
    if missing:
        raise TraceError(
            f"{where}: job(s) without a task record: {', '.join(missing[:5])}"
        )
    multi = sorted(n for n, c in tasks_of.items() if c > 1)
    if multi:
        raise TraceError(
            f"{where}: job(s) with multiple task records: {', '.join(multi[:5])}"
        )
    for job in trace.jobs:
        if job.submit_time < 0:
            raise TraceError(
                f"{where}: job {job.job_name!r} has negative submit_time"
            )
        if job.deadline is not None and job.deadline <= 0:
            raise TraceError(f"{where}: job {job.job_name!r} deadline must be > 0")
    for task in trace.tasks:
        if task.plan_gpu is not None and (
            task.plan_gpu <= 0 or task.plan_gpu % 100 != 0
        ):
            raise TraceError(
                f"{where}: task of {task.job_name!r}: plan_gpu must be a "
                f"positive multiple of 100 (whole GPUs), got {task.plan_gpu}"
            )
        if task.min_inst_num < 1 or task.inst_num < task.min_inst_num:
            raise TraceError(
                f"{where}: task of {task.job_name!r}: need "
                f"1 <= min_inst_num <= inst_num, got "
                f"[{task.min_inst_num}, {task.inst_num}]"
            )
    for instance in trace.instances:
        if instance.job_name not in known:
            raise TraceError(
                f"{where}: instance references unknown job {instance.job_name!r}"
            )
    return trace


# ---------------------------------------------------------------------------
# Trace <-> JobSpec
# ---------------------------------------------------------------------------


def trace_to_specs(trace: Trace) -> list[JobSpec]:
    """Convert a validated trace into scheduler job specs.

    Spec construction resolves workload profiles and comm schemes, so a
    trace naming an unknown profile fails here with a
    :class:`TraceError` pointing at the offending job.
    """
    task_of = {task.job_name: task for task in trace.tasks}
    specs = []
    for job in trace.jobs:
        task = task_of.get(job.job_name)
        if task is None:  # load_trace validates; guard direct callers
            raise TraceError(f"job {job.job_name!r} has no task record")
        try:
            payload = (
                TrainPayload(**task.payload) if task.payload is not None else None
            )
            specs.append(
                JobSpec(
                    name=job.job_name,
                    profile=job.workload,
                    scheme=job.scheme,
                    density=job.density,
                    resolution=task.resolution,
                    local_batch=task.local_batch,
                    iterations=task.iterations,
                    priority=job.priority,
                    deadline_seconds=job.deadline,
                    preference=job.preference,
                    min_nodes=task.min_inst_num,
                    max_nodes=task.inst_num,
                    gpus_per_node=(
                        task.plan_gpu // 100 if task.plan_gpu is not None else None
                    ),
                    arrival_seconds=job.submit_time,
                    payload=payload,
                )
            )
        except (TypeError, ValueError, KeyError) as exc:
            raise TraceError(f"job {job.job_name!r}: {exc}") from exc
    return specs


def _user_of(job_name: str) -> str:
    """Deterministic PAI-style hashed submitter id for one job."""
    return f"u{derive_seed(0, job_name) & 0xFFFF:04x}"


def specs_to_trace(specs: Sequence[JobSpec]) -> Trace:
    """Serialize job specs back into trace rows (inverse of
    :func:`trace_to_specs` for every scheduling-relevant field)."""
    trace = Trace()
    for spec in specs:
        trace.jobs.append(
            TraceJob(
                job_name=spec.name,
                user=_user_of(spec.name),
                submit_time=spec.arrival_seconds,
                priority=spec.priority,
                preference=spec.preference,
                deadline=spec.deadline_seconds,
                workload=spec.profile,
                scheme=spec.scheme,
                density=spec.density,
            )
        )
        trace.tasks.append(
            TraceTask(
                job_name=spec.name,
                inst_num=spec.max_nodes,
                min_inst_num=spec.min_nodes,
                plan_gpu=(
                    spec.gpus_per_node * 100
                    if spec.gpus_per_node is not None
                    else None
                ),
                resolution=spec.resolution,
                local_batch=spec.local_batch,
                iterations=spec.iterations,
                payload=(
                    dataclasses.asdict(spec.payload)
                    if spec.payload is not None
                    else None
                ),
            )
        )
    return trace


# ---------------------------------------------------------------------------
# Writers
# ---------------------------------------------------------------------------


def write_trace(trace: Trace, path: str | pathlib.Path) -> pathlib.Path:
    """Write the JSON-lines layout (jobs, then tasks, then instances)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for kind in RECORD_TYPES:
            for record in getattr(trace, kind + "s"):
                data = {"type": kind, **dataclasses.asdict(record)}
                handle.write(json.dumps(data, sort_keys=True) + "\n")
    return path


def write_trace_csv(trace: Trace, directory: str | pathlib.Path) -> pathlib.Path:
    """Write the PAI-style CSV directory layout."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for kind, filename in CSV_FILES.items():
        records = getattr(trace, kind + "s")
        if kind == "instance" and not records:
            continue
        columns = list(_FIELDS[kind])
        with (directory / filename).open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(columns)
            for record in records:
                row = []
                for column in columns:
                    value = getattr(record, column)
                    if value is None:
                        row.append("")
                    elif column == "payload":
                        row.append(json.dumps(value, sort_keys=True))
                    else:
                        row.append(value)
                writer.writerow(row)
    return directory


# ---------------------------------------------------------------------------
# Stats (repro trace validate)
# ---------------------------------------------------------------------------


def trace_stats(trace: Trace) -> dict:
    """Summary counters for ``repro trace validate``."""
    submits = [job.submit_time for job in trace.jobs]
    priorities = sorted({job.priority for job in trace.jobs})
    gpus: dict[str, int] = {}
    payloads = 0
    for task in trace.tasks:
        label = "node" if task.plan_gpu is None else str(task.plan_gpu // 100)
        gpus[label] = gpus.get(label, 0) + 1
    payloads = sum(1 for task in trace.tasks if task.payload is not None)
    return {
        "jobs": len(trace.jobs),
        "tasks": len(trace.tasks),
        "instances": len(trace.instances),
        "users": len({job.user for job in trace.jobs}),
        "span_seconds": round(max(submits) - min(submits), 3) if submits else 0.0,
        "priorities": priorities,
        "gpus_per_node": dict(sorted(gpus.items())),
        "payload_jobs": payloads,
        "workloads": dict(
            sorted(
                (w, sum(1 for j in trace.jobs if j.workload == w))
                for w in {j.workload for j in trace.jobs}
            )
        ),
    }


__all__ = [
    "RECORD_TYPES",
    "CSV_FILES",
    "load_trace",
    "validate_trace",
    "trace_to_specs",
    "specs_to_trace",
    "write_trace",
    "write_trace_csv",
    "trace_stats",
]
