"""Plain-text table rendering for the experiment harnesses.

Every harness in :mod:`repro.experiments` prints the same rows/series as
the corresponding paper table or figure; this module renders them with
aligned columns so the benchmark logs are directly comparable with the
paper.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)


def format_row(cells: Sequence[Any], widths: Sequence[int]) -> str:
    """Render one row with right-padded first column and right-aligned rest."""
    parts = []
    for i, (cell, width) in enumerate(zip(cells, widths)):
        text = _cell(cell)
        parts.append(text.ljust(width) if i == 0 else text.rjust(width))
    return "  ".join(parts)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render a full table as a string (headers, rule, rows)."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(format_row(headers, widths))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    """Print a table (convenience wrapper around :func:`format_table`)."""
    print(format_table(headers, rows, title=title))
    print()


__all__ = ["format_table", "format_row", "print_table"]
