"""Byte/bandwidth/time unit constants and formatting.

The paper mixes decimal network units (25 Gbps Ethernet) with binary
memory units (V100-32GB); we keep both families explicit so cost-model
code never multiplies the wrong constant.
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

#: Bytes per element for the two wire formats used in the paper's
#: experiments: FP32 for Figs. 6/8, FP16 for Fig. 7 ("we use the 16-bit
#: floating point (FP16) for each element").
BYTES_FP32 = 4
BYTES_FP16 = 2
BYTES_INT32 = 4


def gbps_to_bytes_per_sec(gbps: float) -> float:
    """Convert link speed in gigabits/s (decimal) to bytes/s."""
    if gbps < 0:
        raise ValueError(f"link speed must be non-negative, got {gbps}")
    return gbps * 1e9 / 8.0


def bytes_per_sec_to_gbps(bps: float) -> float:
    """Inverse of :func:`gbps_to_bytes_per_sec`."""
    if bps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {bps}")
    return bps * 8.0 / 1e9


def format_bytes(n: float) -> str:
    """Human-readable binary size, e.g. ``format_bytes(3*MiB) == '3.00 MiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration: µs/ms/s/min as appropriate."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds == 0:
        return "0 s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    minutes, secs = divmod(seconds, 60.0)
    return f"{int(minutes)} min {secs:.0f} s"


def format_rate(samples_per_sec: float) -> str:
    """Throughput formatting used by the Table 3/4 harnesses."""
    if samples_per_sec >= 10_000:
        return f"{samples_per_sec:,.0f}"
    if samples_per_sec >= 100:
        return f"{samples_per_sec:.0f}"
    return f"{samples_per_sec:.1f}"


__all__ = [
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "BYTES_FP32",
    "BYTES_FP16",
    "BYTES_INT32",
    "gbps_to_bytes_per_sec",
    "bytes_per_sec_to_gbps",
    "format_bytes",
    "format_seconds",
    "format_rate",
]
