"""Deterministic random-number-generator helpers.

Every stochastic component in the reproduction (data synthesis, model
initialisation, MSTopK's random tail selection, ...) receives an explicit
``numpy.random.Generator``.  Global state is never used, which keeps the
distributed-training simulations bit-reproducible regardless of worker
iteration order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Alias used in type hints throughout the code base.
RandomState = np.random.Generator

_DEFAULT_SEED = 0xC0FFEE


def new_rng(seed: int | None = None) -> RandomState:
    """Create a fresh :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        Seed for the PCG64 bit generator.  ``None`` selects the library
        default seed (still deterministic) rather than OS entropy, because
        reproducibility matters more than uniqueness here.
    """
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[RandomState]:
    """Spawn ``count`` statistically independent generators from one seed.

    Used to give each simulated worker its own stream so that adding or
    removing workers does not perturb the others' randomness.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_seed(seed: int, *names: str | int) -> int:
    """Derive a stable sub-seed from a base seed and a path of names.

    Deterministic across processes and Python versions (unlike ``hash``).
    """
    h = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    for name in names:
        for byte in str(name).encode("utf-8"):
            # FNV-1a style mixing; cheap and stable.
            h = np.uint64((int(h) ^ byte) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF)
    return int(h)


def worker_rngs(seed: int, world_size: int, *, label: str = "worker") -> list[RandomState]:
    """Per-worker generators derived from a run seed and a label."""
    return [new_rng(derive_seed(seed, label, rank)) for rank in range(world_size)]


def check_seed(seed: int) -> int:
    """Validate a user-provided seed, returning it unchanged."""
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be an int, got {type(seed).__name__}")
    return int(seed)


__all__ = [
    "RandomState",
    "new_rng",
    "spawn_rngs",
    "derive_seed",
    "worker_rngs",
    "check_seed",
]
