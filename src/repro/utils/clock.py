"""Virtual-time accounting.

All simulated costs in the reproduction (network transfers, NFS reads,
GPU kernel estimates) are *accounted* against a :class:`VirtualClock`
rather than slept through.  This keeps the benchmark harness fast and
bit-deterministic while still producing the per-component time
breakdowns the paper reports (Figs. 1, 8, 9).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class VirtualClock:
    """Accumulates virtual seconds, optionally split by category.

    The clock is additive: concurrent activities are modelled by the
    *caller* (e.g. a collective charges ``max`` over parallel streams and
    then advances the clock once).
    """

    now: float = 0.0
    by_category: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def advance(self, seconds: float, category: str = "other") -> float:
        """Advance virtual time by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        self.by_category[category] += seconds
        return self.now

    def elapsed(self, category: str | None = None) -> float:
        """Total virtual seconds, or seconds charged to one category."""
        if category is None:
            return self.now
        return self.by_category.get(category, 0.0)

    def reset(self) -> None:
        self.now = 0.0
        self.by_category = defaultdict(float)

    @contextmanager
    def window(self) -> Iterator["ClockWindow"]:
        """Context manager measuring virtual time spent inside the block."""
        win = ClockWindow(self, self.now)
        yield win
        win.close()

    def snapshot(self) -> dict[str, float]:
        """Copy of the per-category totals (for reporting)."""
        return dict(self.by_category)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualClock(now={self.now:.6f}s, categories={len(self.by_category)})"


@dataclass
class ClockWindow:
    """Elapsed-time window over a :class:`VirtualClock`."""

    clock: VirtualClock
    start: float
    end: float | None = None

    def close(self) -> float:
        self.end = self.clock.now
        return self.duration

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else self.clock.now
        return end - self.start


__all__ = ["VirtualClock", "ClockWindow"]
