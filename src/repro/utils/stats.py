"""Streaming statistics used by timing harnesses.

Welford's online algorithm keeps running mean/variance without storing
samples — the benchmark harnesses repeat each measurement (the paper
uses "5 warmup iterations and 100 iterations to measure the average",
Fig. 6 caption) and report mean ± std.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class RunningStat:
    """Welford online mean/variance accumulator."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); zero for fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Combine two accumulators (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunningStat(n={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.3g}, min={self.min:.6g}, max={self.max:.6g})"
        )


def summarize(values: Sequence[float]) -> RunningStat:
    """Build a :class:`RunningStat` from a finished sequence."""
    stat = RunningStat()
    stat.extend(values)
    return stat


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; used for speedup aggregation across workloads."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


__all__ = ["RunningStat", "summarize", "geometric_mean"]
