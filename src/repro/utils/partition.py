"""Tensor and layer partitioning helpers.

The hierarchical communication algorithm (Algorithm 2 in the paper)
shards a length-``d`` gradient across the ``n`` GPUs of a node, and the
parallel tensor operator (PTO, §4.2) shards a list of layers across all
``P`` GPUs.  Both need the same "split as evenly as possible" arithmetic,
centralised here so that every subsystem agrees on shard boundaries.

The convention matches NCCL's reduce-scatter: the first ``d % parts``
shards get one extra element.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def chunk_sizes(total: int, parts: int) -> list[int]:
    """Sizes of ``parts`` near-equal chunks covering ``total`` elements.

    >>> chunk_sizes(10, 3)
    [4, 3, 3]
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, parts)
    return [base + 1 if i < extra else base for i in range(parts)]


def chunk_bounds(total: int, parts: int) -> list[tuple[int, int]]:
    """``(start, end)`` half-open bounds for each of ``parts`` chunks.

    >>> chunk_bounds(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    sizes = chunk_sizes(total, parts)
    bounds: list[tuple[int, int]] = []
    start = 0
    for size in sizes:
        bounds.append((start, start + size))
        start += size
    return bounds


def shard_slice(total: int, parts: int, index: int) -> slice:
    """Slice selecting chunk ``index`` out of ``parts`` chunks of ``total``."""
    if not 0 <= index < parts:
        raise IndexError(f"chunk index {index} out of range for {parts} parts")
    start, end = chunk_bounds(total, parts)[index]
    return slice(start, end)


def partition_indices(total: int, parts: int) -> list[np.ndarray]:
    """Index arrays (``np.arange`` views) for each chunk."""
    return [np.arange(start, end) for start, end in chunk_bounds(total, parts)]


def partition_layers(layer_sizes: Sequence[int], parts: int) -> list[list[int]]:
    """Assign layer indices to ``parts`` workers, contiguously and evenly.

    This mirrors the paper's PTO-for-LARS example: "the first GPU
    calculates 1 to 2 layers' learning rates, the second one calculates
    layer 3 to 4, and so on" — i.e. a contiguous split of the layer list,
    *not* a balanced-by-size split.  (A size-balanced variant lives in
    :func:`partition_layers_balanced`.)
    """
    n_layers = len(layer_sizes)
    return [list(range(start, end)) for start, end in chunk_bounds(n_layers, parts)]


def partition_layers_balanced(layer_sizes: Sequence[int], parts: int) -> list[list[int]]:
    """Greedy size-balanced layer assignment (largest layer first).

    Provided as the "obvious improvement" over the paper's contiguous
    split; used by the PTO ablation benchmark.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    loads = np.zeros(parts, dtype=np.float64)
    assignment: list[list[int]] = [[] for _ in range(parts)]
    order = np.argsort(np.asarray(layer_sizes, dtype=np.float64))[::-1]
    for layer in order:
        target = int(np.argmin(loads))
        assignment[target].append(int(layer))
        loads[target] += layer_sizes[layer]
    for worker in assignment:
        worker.sort()
    return assignment


def reassemble(chunks: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate chunks back into a flat vector (inverse of sharding)."""
    if not chunks:
        return np.empty(0)
    return np.concatenate([np.asarray(c).ravel() for c in chunks])


def round_robin_shards(
    x: np.ndarray, y: np.ndarray, world_size: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Round-robin shard a labelled dataset across ``world_size`` workers.

    Worker ``r`` takes samples ``r, r + P, r + 2P, ...`` so every shard
    sees (almost) the same class mix.  This is the sharder the trainer
    uses; the elastic membership layer re-invokes it whenever the live
    worker set changes, so re-sharding after a revocation is one call.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if len(x) != len(y):
        raise ValueError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    shards = []
    for rank in range(world_size):
        sel = slice(rank, None, world_size)
        shards.append((x[sel], y[sel]))
    if any(len(sx) == 0 for sx, _ in shards):
        raise ValueError(
            f"dataset of {len(x)} samples too small for {world_size} workers"
        )
    return shards


def flatten_tensors(tensors: Sequence[np.ndarray]) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Flatten a list of tensors into one vector plus their shapes.

    This is the "tensor fusion" primitive (Shi et al. 2019b; Horovod's
    fusion buffer): gradients of many layers are fused into one flat
    buffer before communication so the collective pays latency once.
    """
    shapes = [tuple(np.asarray(t).shape) for t in tensors]
    if not tensors:
        return np.empty(0), shapes
    flat = np.concatenate([np.asarray(t).ravel() for t in tensors])
    return flat, shapes


def unflatten_tensors(flat: np.ndarray, shapes: Sequence[tuple[int, ...]]) -> list[np.ndarray]:
    """Inverse of :func:`flatten_tensors`."""
    tensors: list[np.ndarray] = []
    offset = 0
    for shape in shapes:
        size = int(np.prod(shape)) if shape else 1
        tensors.append(flat[offset : offset + size].reshape(shape))
        offset += size
    if offset != flat.size:
        raise ValueError(
            f"flat vector has {flat.size} elements but shapes account for {offset}"
        )
    return tensors


__all__ = [
    "chunk_sizes",
    "chunk_bounds",
    "shard_slice",
    "partition_indices",
    "partition_layers",
    "partition_layers_balanced",
    "round_robin_shards",
    "reassemble",
    "flatten_tensors",
    "unflatten_tensors",
]
