"""Shared utilities: seeding, partitioning, virtual time, units, tables.

These are deliberately small, dependency-free helpers used across every
subsystem of the reproduction.  Nothing in here is paper-specific.
"""

from repro.utils.clock import VirtualClock
from repro.utils.partition import (
    chunk_bounds,
    chunk_sizes,
    partition_indices,
    partition_layers,
    shard_slice,
)
from repro.utils.seeding import RandomState, new_rng, spawn_rngs
from repro.utils.stats import RunningStat, summarize
from repro.utils.tables import format_table, format_row
from repro.utils.units import (
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    format_bytes,
    format_seconds,
    gbps_to_bytes_per_sec,
)

__all__ = [
    "VirtualClock",
    "chunk_bounds",
    "chunk_sizes",
    "partition_indices",
    "partition_layers",
    "shard_slice",
    "RandomState",
    "new_rng",
    "spawn_rngs",
    "RunningStat",
    "summarize",
    "format_table",
    "format_row",
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_seconds",
    "gbps_to_bytes_per_sec",
]
