"""Elastic preemption-aware training over the virtual cloud cluster.

:class:`ElasticTrainer` wraps the synchronous
:class:`~repro.train.trainer.DistributedTrainer` with the recovery loop
an elastic public-cloud job needs (EasyDL-style rescale-without-restart,
checkpoint-rollback for surprise revocations):

* **Periodic checkpoints** via :mod:`repro.train.checkpoint` (params,
  momentum, error-feedback residuals, RNG state) every
  ``checkpoint_every`` useful iterations;
* **Revocation handling** — a *warned* revocation (the two-minute
  warning) checkpoints proactively inside the warning window, so no
  work is lost; a *surprise* revocation rolls back to the last periodic
  checkpoint and replays the lost iterations;
* **Rescale** — after any membership change the communication scheme is
  rebuilt for the new world size (dense, gTop-k, or HiTopKComm — the
  node/GPU hierarchy is re-derived through
  :class:`~repro.elastic.membership.MembershipView`), the dataset is
  round-robin re-sharded, and error-feedback residuals are folded onto
  the surviving ranks so sparsification loses no gradient mass;
* **Straggler composition** — per-iteration node slowdowns from
  :mod:`repro.cluster.variability` stretch the virtual step time, so
  churn and jitter compose in one simulation.

Virtual time is accounted per step: compute (``compute_seconds``
stretched by the slowest node), communication (the scheme's analytic
time model at ``timing_d`` elements — by default the actual gradient
size — stretched flat or hierarchically), plus checkpoint/restart
overheads.  ``node_seconds`` integrates live-VM time for the cost layer
in :mod:`repro.perf.elastic_cost`.
"""

from __future__ import annotations

import pathlib
import tempfile
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import build_scheme
from repro.cluster.topology import ClusterTopology
from repro.cluster.variability import (
    VariabilityModel,
    straggled_flat_time,
    straggled_hierarchical_time,
)
from repro.comm.hitopkcomm import STEP_INTER_ALLGATHER, HiTopKComm
from repro.elastic.events import JOIN, ChurnEvent
from repro.elastic.membership import MembershipView, fold_residuals
from repro.optim.sgd import SGD
from repro.train.checkpoint import (
    CheckpointCorruptError,
    load_checkpoint,
    save_checkpoint,
)
from repro.train.trainer import DistributedTrainer, TrainableModel
from repro.utils.seeding import derive_seed, new_rng


@dataclass
class ElasticRunReport:
    """Accounting record of one elastic training run."""

    scheme: str
    iterations_target: int
    useful_iterations: int = 0
    wall_iterations: int = 0
    lost_iterations: int = 0
    revocations: int = 0
    warned_revocations: int = 0
    joins: int = 0
    rollbacks: int = 0
    checkpoints: int = 0
    #: Checkpoint files found damaged during a rollback (fault drills).
    corrupt_checkpoints: int = 0
    compute_seconds: float = 0.0
    comm_seconds: float = 0.0
    overhead_seconds: float = 0.0
    node_seconds: float = 0.0
    losses: list[float] = field(default_factory=list)
    world_sizes: list[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Virtual wall-clock: compute + communication + recovery overhead."""
        return self.compute_seconds + self.comm_seconds + self.overhead_seconds

    @property
    def goodput(self) -> float:
        """Useful (non-replayed) iterations per virtual second."""
        return self.useful_iterations / self.total_seconds if self.total_seconds else 0.0

    @property
    def raw_throughput(self) -> float:
        """Attempted iterations per virtual second (ignores lost work)."""
        return self.wall_iterations / self.total_seconds if self.total_seconds else 0.0

    @property
    def lost_fraction(self) -> float:
        """Share of attempted iterations whose work was rolled back."""
        return self.lost_iterations / self.wall_iterations if self.wall_iterations else 0.0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no training steps recorded")
        return self.losses[-1]


class ElasticTrainer:
    """Preemption-aware synchronous trainer over an elastic node set.

    Parameters
    ----------
    model:
        A :class:`~repro.train.trainer.TrainableModel`.
    scheme:
        Scheme name for :func:`repro.api.build_scheme`
        (``dense``, ``gtopk``, ``mstopk``, ...), rebuilt on every
        membership change.  ``wire_bytes`` / ``n_samplings`` /
        ``compressor`` (a registered compressor name) are forwarded to
        the builder on every rebuild.
    instance / num_nodes / gpus_per_node / min_nodes:
        Starting cluster shape; GPUs per node is constant (instances
        leave and join whole).
    checkpoint_every:
        Useful iterations between periodic rollback checkpoints.
    compute_seconds:
        Virtual forward+backward time per iteration at spec speed.
    checkpoint_seconds / restart_seconds:
        Virtual cost of writing a checkpoint and of a rescale/restore
        cycle (scheme rebuild + re-shard + restore).
    warning_seconds:
        Advance-warning window; a warned revocation only avoids rollback
        when a checkpoint fits inside it.
    timing_d:
        Gradient size for the analytic comm-time model.  Defaults to the
        model's actual parameter count; set to e.g. ``25_000_000`` to
        account communication as if training the paper's ResNet-50 while
        running a small convergence analogue.
    variability:
        Optional :class:`~repro.cluster.variability.VariabilityModel`;
        per-iteration straggler factors stretch the virtual step time.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` carrying
        a seeded fault plan; its hooks fire at the top of every wall
        iteration and during checkpoint save/restore.  ``None`` (the
        default) leaves every code path bit-identical to a build without
        the fault subsystem.
    """

    def __init__(
        self,
        model: TrainableModel,
        *,
        scheme: str = "mstopk",
        density: float = 0.01,
        wire_bytes: int = 4,
        n_samplings: int = 30,
        compressor: str | None = None,
        instance: str = "tencent",
        num_nodes: int = 4,
        gpus_per_node: int = 2,
        min_nodes: int = 1,
        optimizer: SGD | None = None,
        seed: int = 0,
        checkpoint_every: int = 25,
        checkpoint_dir: str | pathlib.Path | None = None,
        compute_seconds: float = 0.05,
        checkpoint_seconds: float = 1.0,
        restart_seconds: float = 15.0,
        warning_seconds: float = 120.0,
        timing_d: int | None = None,
        variability: VariabilityModel | None = None,
        legacy_hotpath: bool = False,
        exec_backend=None,
        faults=None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if compute_seconds < 0 or checkpoint_seconds < 0 or restart_seconds < 0:
            raise ValueError("virtual time constants must be non-negative")
        self.model = model
        self.scheme_name = scheme
        self.density = density
        self.wire_bytes = wire_bytes
        self.n_samplings = n_samplings
        self.compressor = compressor
        self.optimizer = optimizer if optimizer is not None else SGD(lr=0.05)
        self.seed = seed
        self.checkpoint_every = checkpoint_every
        self.compute_seconds = compute_seconds
        self.checkpoint_seconds = checkpoint_seconds
        self.restart_seconds = restart_seconds
        self.warning_seconds = warning_seconds
        self.variability = variability
        # Parity escape hatch: route every (re)built trainer through the
        # pre-vectorisation reference step (see DistributedTrainer).
        self.legacy_hotpath = legacy_hotpath
        # Execution backend shared across rescales: each rebuilt trainer
        # binds a fresh step engine to the same persistent worker pool,
        # so a membership change re-sizes the shared (W, d) matrix
        # without respawning processes.
        self.exec_backend = exec_backend
        self.membership = MembershipView(
            num_nodes, gpus_per_node, instance=instance, min_nodes=min_nodes
        )
        if checkpoint_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-elastic-")
            checkpoint_dir = self._tmpdir.name
        checkpoint_dir = pathlib.Path(checkpoint_dir)
        checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # Double-buffered rollback slots: the previous checkpoint stays
        # on disk until a newer one lands, so a corrupted newest file
        # (CheckpointCorruptError on load) still leaves a recovery
        # point.  The stack is newest-last (path, useful_iterations).
        self._ckpt_slots = (
            checkpoint_dir / "rollback-a.npz",
            checkpoint_dir / "rollback-b.npz",
        )
        self._ckpt_stack: list[tuple[pathlib.Path, int]] = []
        self.faults = faults
        self._event_rng = new_rng(derive_seed(seed, "elastic", "events"))
        self._sim_rng = new_rng(derive_seed(seed, "elastic", "stragglers"))
        self.trainer = self._fresh_trainer()
        self.timing_d = (
            timing_d
            if timing_d is not None
            else sum(p.size for p in self.trainer.params.values())
        )
        self._shards: list[tuple[np.ndarray, np.ndarray]] = []
        self._last_ckpt_useful = 0

    # -- construction helpers --------------------------------------------------
    def _fresh_trainer(self) -> DistributedTrainer:
        # Passing the compressor by *name* (not instance) keeps every
        # rebuild's operator state fresh alongside its error feedback.
        scheme = build_scheme(
            self.scheme_name,
            self.membership.network(),
            density=self.density,
            wire_bytes=self.wire_bytes,
            n_samplings=self.n_samplings,
            compressor=self.compressor,
        )
        return DistributedTrainer(
            self.model,
            scheme,
            optimizer=self.optimizer,
            seed=self.seed,
            legacy_hotpath=self.legacy_hotpath,
            exec_backend=self.exec_backend,
        )

    # -- checkpoint / restore --------------------------------------------------
    def checkpoint_stack(self) -> tuple[tuple[pathlib.Path, int], ...]:
        """On-disk ``(path, useful_iterations)`` entries, newest last."""
        return tuple(self._ckpt_stack)

    def _save_checkpoint(self, report: ElasticRunReport, useful: int) -> None:
        if len(self._ckpt_stack) >= len(self._ckpt_slots):
            path, _ = self._ckpt_stack.pop(0)  # recycle the oldest slot
        else:
            used = {slot for slot, _ in self._ckpt_stack}
            path = next(slot for slot in self._ckpt_slots if slot not in used)
        save_checkpoint(self.trainer, path)
        self._ckpt_stack.append((path, useful))
        self._last_ckpt_useful = useful
        report.checkpoints += 1
        if self.faults is not None:
            # A fail-slow disk stretches the write (and may abandon and
            # retry it against the checkpoint_timeout budget).
            seconds = self.faults.checkpoint_write_seconds(
                self.checkpoint_seconds, report
            )
        else:
            seconds = self.checkpoint_seconds
        self._charge(report, seconds)
        if self.faults is not None:
            self.faults.on_checkpoint_saved(path)

    def _rebuild_from_checkpoint(
        self, report: ElasticRunReport, x: np.ndarray, y: np.ndarray
    ) -> int:
        """Rescale to the current membership and restore a checkpoint.

        Walks the checkpoint stack newest-first; an entry whose file
        fails checksum verification (:class:`CheckpointCorruptError`) is
        dropped and the previous one restores instead.  Returns the
        useful-iteration count of the state actually restored — ``0``
        when every checkpoint was lost and training restarts from the
        initial parameters.
        """
        self.trainer.close()  # free the outgoing world size's step engine
        restored: int | None = None
        while self._ckpt_stack:
            path, ckpt_useful = self._ckpt_stack[-1]
            new_trainer = self._fresh_trainer()
            try:
                meta = load_checkpoint(new_trainer, path, strict_world=False)
            except CheckpointCorruptError:
                new_trainer.close()
                self._ckpt_stack.pop()
                report.corrupt_checkpoints += 1
                if self.faults is not None:
                    self.faults.on_corrupt_detected(path, report)
                continue
            orphans = meta.get("residuals")
            ef = getattr(new_trainer.scheme, "ef", None)
            if orphans and ef is not None:
                n = self.membership.gpus_per_node
                old_topo = ClusterTopology(meta["world_size"] // n, n)
                ef._residuals = fold_residuals(
                    orphans, old_topo, new_trainer.scheme.topology
                )
            self.trainer = new_trainer
            restored = ckpt_useful
            break
        if restored is None:
            # Every checkpoint on disk was damaged: restart from the
            # initial parameters (the model rebuilds deterministically
            # from the run seed) with all progress lost.
            self.trainer = self._fresh_trainer()
            restored = 0
        self._last_ckpt_useful = restored
        self._shards = self.membership.reshard(x, y)
        report.world_sizes.append(self.membership.world_size)
        restart = self.restart_seconds
        if self.faults is not None:
            # Restores read the checkpoint back through the same sick disk.
            restart = self.faults.checkpoint_read_seconds(restart)
        self._charge(report, restart)
        return restored

    # -- accounting ------------------------------------------------------------
    def _charge(self, report: ElasticRunReport, seconds: float) -> None:
        report.overhead_seconds += seconds
        report.node_seconds += self.membership.num_nodes * seconds

    def _step_times(self) -> tuple[float, float]:
        """(compute, comm) virtual seconds for one step, straggler-stretched."""
        if self.faults is not None:
            # Active NIC degradation swaps in a time model built on the
            # degraded network; healthy windows hit the plain path.
            breakdown = self.faults.comm_breakdown(self)
        else:
            breakdown = self.trainer.scheme.time_model(self.timing_d)
        if self.variability is not None:
            factors = self.variability.sample_node_factors(
                self.membership.num_nodes, self._sim_rng
            )
        else:
            factors = np.ones(self.membership.num_nodes)
        if self.faults is not None:
            factors = self.faults.straggled_factors(factors, self.membership)
        if isinstance(self.trainer.scheme, HiTopKComm):
            inter = breakdown.get(STEP_INTER_ALLGATHER)
            comm = straggled_hierarchical_time(
                breakdown.total - inter, inter, factors
            )
        else:
            comm = straggled_flat_time(breakdown.total, factors)
        if self.faults is not None:
            # Gray links add a fresh stochastic latency-jitter stretch
            # every step (1.0 outside gray-net windows).
            comm *= self.faults.comm_jitter()
        compute = self.compute_seconds * float(np.max(factors))
        return compute, comm

    def _batches(self, local_batch: int, step: int) -> list[tuple[np.ndarray, np.ndarray]]:
        steps_per_pass = min(len(sx) for sx, _ in self._shards) // local_batch
        if steps_per_pass < 1:
            raise ValueError(
                f"local_batch {local_batch} exceeds the smallest shard "
                f"({min(len(sx) for sx, _ in self._shards)} samples)"
            )
        pos = step % steps_per_pass
        lo, hi = pos * local_batch, (pos + 1) * local_batch
        return [(sx[lo:hi], sy[lo:hi]) for sx, sy in self._shards]

    # -- event handling --------------------------------------------------------
    def _apply_event(
        self,
        event: ChurnEvent,
        report: ElasticRunReport,
        x: np.ndarray,
        y: np.ndarray,
        useful: int,
    ) -> int:
        """Apply one membership change; returns the (possibly rewound) step."""
        if event.kind == JOIN:
            # Graceful grow: snapshot current state so the newcomer
            # starts consistent; nothing is lost.
            self._save_checkpoint(report, useful)
            self.membership.join()
            report.joins += 1
            self._rebuild_from_checkpoint(report, x, y)
            return useful

        # Refuse the event before paying any overhead for it: at
        # min_nodes the provider keeps the node, and a trace may name a
        # node that already departed.
        if self.membership.num_nodes <= self.membership.min_nodes:
            return useful
        if event.node is not None and event.node not in self.membership.live_nodes:
            return useful
        warned = event.warned and self.checkpoint_seconds <= self.warning_seconds
        if warned:
            # The two-minute warning: checkpoint *before* the node
            # vanishes, then shrink — no lost work.
            self._save_checkpoint(report, useful)
        self.membership.revoke(event.node, rng=self._event_rng)
        report.revocations += 1
        if warned:
            report.warned_revocations += 1
            restored = self._rebuild_from_checkpoint(report, x, y)
            if restored < useful:
                # Only reachable when the just-saved checkpoint AND its
                # predecessor were both corrupted by a fault.
                report.lost_iterations += useful - restored
                report.rollbacks += 1
                del report.losses[restored:]
        else:
            # Surprise revocation: the synchronous step can no longer
            # complete — roll back to the newest intact checkpoint.
            restored = self._rebuild_from_checkpoint(report, x, y)
            report.lost_iterations += useful - restored
            report.rollbacks += 1
            del report.losses[restored:]
        return restored

    def apply_fault_revocation(
        self,
        nodes,
        report: ElasticRunReport,
        x: np.ndarray,
        y: np.ndarray,
        useful: int,
    ) -> tuple[int, int, list[int]]:
        """Simultaneous *unwarned* loss of ``nodes`` (fault injection).

        Revokes every named node that is still live — stopping at the
        ``min_nodes`` floor, where the provider keeps capacity — then
        performs ONE rollback + rebuild: a correlated failure (AZ-wide
        spot reclaim) costs a single recovery, unlike the sequential
        churn events of :meth:`_apply_event`.  Returns
        ``(restored_useful, lost_iterations, victims)``; no live victim
        means the fault was absorbed and nothing changes.
        """
        victims: list[int] = []
        for node in nodes:
            if self.membership.num_nodes <= self.membership.min_nodes:
                break
            if node not in self.membership.live_nodes:
                continue
            self.membership.revoke(node, rng=self._event_rng)
            report.revocations += 1
            victims.append(int(node))
        if not victims:
            return useful, 0, []
        restored = self._rebuild_from_checkpoint(report, x, y)
        lost = useful - restored
        report.lost_iterations += lost
        report.rollbacks += 1
        del report.losses[restored:]
        return restored, lost, victims

    # -- main loop -------------------------------------------------------------
    def run(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        iterations: int,
        local_batch: int,
        schedule=None,
        max_wall_factor: int = 4,
    ) -> ElasticRunReport:
        """Train for ``iterations`` useful steps under a churn schedule.

        ``schedule`` is any object with
        ``generate(horizon, num_nodes, rng) -> list[ChurnEvent]``
        (:class:`~repro.elastic.events.PoissonChurn`,
        :class:`~repro.elastic.events.TraceSchedule`, or ``None`` for a
        static cluster).  Wall iterations are capped at
        ``iterations * max_wall_factor`` so pathological schedules
        terminate.
        """
        if iterations < 1 or local_batch < 1:
            raise ValueError("iterations and local_batch must be >= 1")
        x, y = np.asarray(x), np.asarray(y)
        horizon = iterations * max_wall_factor
        events = (
            schedule.generate(horizon, self.membership.num_nodes, self._event_rng)
            if schedule is not None
            else []
        )
        by_iteration: dict[int, list[ChurnEvent]] = {}
        for event in events:
            by_iteration.setdefault(event.iteration, []).append(event)

        report = ElasticRunReport(
            scheme=self.trainer.scheme.name, iterations_target=iterations
        )
        report.world_sizes.append(self.membership.world_size)
        self._shards = self.membership.reshard(x, y)
        self._save_checkpoint(report, 0)

        useful = 0
        wall = 0
        while useful < iterations and wall < horizon:
            if self.faults is not None:
                useful = self.faults.on_iteration(self, wall, useful, report, x, y)
            for event in by_iteration.get(wall, ()):
                useful = self._apply_event(event, report, x, y, useful)
            loss, _ = self.trainer.train_step(self._batches(local_batch, useful))
            compute, comm = self._step_times()
            report.compute_seconds += compute
            report.comm_seconds += comm
            report.node_seconds += self.membership.num_nodes * (compute + comm)
            report.losses.append(loss)
            useful += 1
            wall += 1
            if useful % self.checkpoint_every == 0 and useful < iterations:
                self._save_checkpoint(report, useful)

        report.useful_iterations = useful
        report.wall_iterations = wall
        return report

    def close(self) -> None:
        """Release the current trainer's step engine (shared memory).

        The execution backend itself (the worker pool) belongs to the
        caller and stays open for reuse.
        """
        self.trainer.close()


__all__ = ["ElasticTrainer", "ElasticRunReport"]
