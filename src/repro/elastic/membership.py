"""Live-membership view of an elastic cloud cluster.

The static reproduction fixes ``m x n`` at construction time; an elastic
job instead tracks *which* nodes are currently alive and re-derives the
communication hierarchy from that set after every change (MiCS-style
membership-aware scoping keeps collectives inside the live set).  This
module owns that bookkeeping:

* :class:`MembershipView` — ordered set of live original node ids,
  bumped through a monotonically increasing *membership epoch*; each
  epoch maps to a fresh :class:`~repro.cluster.topology.ClusterTopology`
  and :class:`~repro.cluster.network.NetworkModel` (dense ranks 0..P-1,
  node-major) built from the same cloud preset links;
* :func:`fold_residuals` — carries error-feedback residual mass across a
  membership change so sparsified training does not silently drop the
  un-transmitted gradient mass a departed worker was holding.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.cluster.cloud_presets import CloudInstance
from repro.cluster.network import NetworkModel
from repro.cluster.topology import ClusterTopology
from repro.utils.partition import round_robin_shards
from repro.utils.seeding import RandomState


class MembershipView:
    """Tracks the live node set of an elastic ``m x n`` cluster.

    Node *ids* are stable original identifiers (0, 1, 2, ... in arrival
    order); the dense node *indices* used by rank arithmetic are the
    position of each live id in the sorted live list, so topologies stay
    contiguous after any change.

    Parameters
    ----------
    num_nodes:
        Starting node count.
    gpus_per_node:
        GPUs per node — constant across membership changes (nodes leave
        and join whole, as cloud instances do).
    instance:
        Cloud preset supplying link specs for the derived network model.
    min_nodes:
        Revocations below this size raise.
    """

    def __init__(
        self,
        num_nodes: int,
        gpus_per_node: int,
        *,
        instance: CloudInstance | str = "tencent",
        min_nodes: int = 1,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {gpus_per_node}")
        if not 1 <= min_nodes <= num_nodes:
            raise ValueError(
                f"min_nodes must be in [1, {num_nodes}], got {min_nodes}"
            )
        if isinstance(instance, str):
            # Resolve through the cluster registry (repro.api) so
            # aliases and @register_cluster presets work here too;
            # imported lazily to avoid an import cycle.
            from repro.api.registry import get_cluster

            instance = get_cluster(instance)
        self.instance = instance
        self.gpus_per_node = gpus_per_node
        self.min_nodes = min_nodes
        self._live: list[int] = list(range(num_nodes))
        self._next_id = num_nodes
        self.epoch = 0

    # -- views ---------------------------------------------------------------
    @property
    def live_nodes(self) -> tuple[int, ...]:
        """Original ids of the live nodes, ascending."""
        return tuple(self._live)

    @property
    def num_nodes(self) -> int:
        return len(self._live)

    @property
    def world_size(self) -> int:
        return len(self._live) * self.gpus_per_node

    def topology(self) -> ClusterTopology:
        """Re-derive the node/GPU hierarchy for the current membership."""
        return ClusterTopology(len(self._live), self.gpus_per_node)

    def network(self) -> NetworkModel:
        """Cost model over the live set, with the preset's link specs."""
        return NetworkModel(
            topology=self.topology(),
            intra=self.instance.intra_link,
            inter=self.instance.inter_link,
        )

    def node_index(self, node_id: int) -> int:
        """Dense node index of a live original id."""
        try:
            return self._live.index(node_id)
        except ValueError:
            raise KeyError(f"node id {node_id} is not live") from None

    # -- transitions ---------------------------------------------------------
    def revoke(self, node_id: int | None = None, *, rng: RandomState | None = None) -> int:
        """Remove one node; returns the revoked original id.

        ``node_id=None`` picks a victim — uniformly with ``rng``, else
        the highest id (the youngest node, as spot markets typically
        reclaim the most recently granted capacity first).
        """
        if len(self._live) <= self.min_nodes:
            raise ValueError(
                f"cannot revoke below min_nodes={self.min_nodes} "
                f"(live: {len(self._live)})"
            )
        if node_id is None:
            node_id = (
                int(rng.choice(self._live)) if rng is not None else self._live[-1]
            )
        if node_id not in self._live:
            raise KeyError(f"node id {node_id} is not live")
        self._live.remove(node_id)
        self.epoch += 1
        return node_id

    def join(self) -> int:
        """Add a fresh node; returns its new original id."""
        node_id = self._next_id
        self._next_id += 1
        self._live.append(node_id)
        self.epoch += 1
        return node_id

    def reshard(
        self, x: np.ndarray, y: np.ndarray
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Round-robin re-shard the dataset for the current world size."""
        return round_robin_shards(np.asarray(x), np.asarray(y), self.world_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MembershipView(live={self._live}, n={self.gpus_per_node}, "
            f"epoch={self.epoch})"
        )


def fold_residuals(
    residuals: Mapping[object, np.ndarray],
    old_topology: ClusterTopology,
    new_topology: ClusterTopology,
) -> dict[object, np.ndarray]:
    """Carry rank-keyed error-feedback residuals across a world-size change.

    Residual buffers are keyed by global rank in every built-in scheme.
    Each old rank ``(node, local)`` folds onto new rank
    ``(node % m', local)`` — survivors keep their own buffer and absorb
    the buffers of departed nodes by addition, so the total residual
    mass (the gradient information error feedback still owes the model)
    is conserved exactly.  Shard-resident residuals (HiTopKComm's
    ``d/n``-sized buffers) stay size-compatible because the shard split
    depends only on ``gpus_per_node``, which membership changes never
    touch; a changed GPU count per node is therefore rejected.

    Non-integer keys (custom schemes) pass through unchanged when they
    fit the new world, else raise.
    """
    if old_topology.gpus_per_node != new_topology.gpus_per_node:
        raise ValueError(
            "cannot fold residuals across a gpus_per_node change "
            f"({old_topology.gpus_per_node} -> {new_topology.gpus_per_node}): "
            "shard boundaries would no longer line up"
        )
    new_m = new_topology.num_nodes
    folded: dict[object, np.ndarray] = {}
    for key, buf in residuals.items():
        if isinstance(key, (int, np.integer)) and 0 <= int(key) < old_topology.world_size:
            rank = int(key)
            node = old_topology.node_of(rank) % new_m
            local = old_topology.local_rank_of(rank)
            new_key: object = new_topology.rank(node, local)
        else:
            new_key = key
        existing = folded.get(new_key)
        if existing is None:
            folded[new_key] = np.array(buf, copy=True)
        else:
            if existing.shape != buf.shape:
                raise ValueError(
                    f"residual shape mismatch while folding key {key!r}: "
                    f"{buf.shape} vs {existing.shape}"
                )
            folded[new_key] = existing + buf
    return folded


__all__ = ["MembershipView", "fold_residuals"]
