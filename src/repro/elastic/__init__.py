"""Elastic preemption-aware training (spot/preemptible cloud clusters).

The paper measures steady-state throughput on a fixed cluster; this
subsystem extends the reproduction to the fleet dynamics of real public
clouds, where spot instances are revoked mid-run and elastic schedulers
backfill capacity:

* :mod:`repro.elastic.events` — Poisson and trace-driven revocation
  schedules, the two-minute-warning model, per-cloud spot profiles;
* :mod:`repro.elastic.membership` — the live worker set, membership
  epochs, topology re-derivation, and error-feedback residual folding
  across world-size changes;
* :mod:`repro.elastic.elastic_trainer` — checkpoint-rollback recovery,
  scheme rebuild (dense / gTop-k / HiTopKComm) on rescale, and straggler
  composition via :mod:`repro.cluster.variability`.

Cost/goodput accounting for elastic runs lives in
:mod:`repro.perf.elastic_cost`.
"""

from repro.elastic.elastic_trainer import ElasticRunReport, ElasticTrainer
from repro.elastic.events import (
    JOIN,
    REVOKE,
    SPOT_PROFILES,
    ChurnEvent,
    PoissonChurn,
    SpotProfile,
    TraceSchedule,
    warning_iterations,
)
from repro.elastic.membership import MembershipView, fold_residuals

__all__ = [
    "ElasticTrainer",
    "ElasticRunReport",
    "ChurnEvent",
    "PoissonChurn",
    "TraceSchedule",
    "SpotProfile",
    "SPOT_PROFILES",
    "warning_iterations",
    "REVOKE",
    "JOIN",
    "MembershipView",
    "fold_residuals",
]
