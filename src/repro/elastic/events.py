"""Preemption / arrival event model for elastic cloud training.

Public-cloud training fleets are not static: spot ("preemptible")
instances are revoked when the provider reclaims capacity, and elastic
schedulers backfill replacement nodes when the market allows.  Two
empirical properties shape the model here:

* **Memoryless revocations** — spot interruptions are well modelled as a
  Poisson process per node ("Speeding up Deep Learning with Transient
  Servers", Li et al. 2019); :class:`PoissonChurn` draws per-iteration
  revocations at a configurable rate and schedules replacement arrivals
  after a rejoin delay.
* **The two-minute warning** — AWS (and, with different windows, other
  clouds) notify a spot instance ~120 s before reclaiming it.  A warned
  revocation gives the job time to checkpoint, so no work is lost; a
  surprise revocation forces a rollback to the last periodic
  checkpoint.  :func:`warning_iterations` converts the warning window
  into whole training iterations.

:class:`TraceSchedule` replays an explicit event list instead, for
reproducing a recorded revocation trace.  Both schedules produce plain
:class:`ChurnEvent` lists consumed by
:class:`repro.elastic.elastic_trainer.ElasticTrainer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.utils.seeding import RandomState, new_rng

#: Event kinds.
REVOKE = "revoke"
JOIN = "join"


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change, effective at a wall-clock iteration.

    Attributes
    ----------
    iteration:
        Wall iteration index at which the change takes effect (wall
        iterations count attempted steps, including replayed ones).
    kind:
        ``"revoke"`` or ``"join"``.
    node:
        Original node id to revoke; ``None`` lets the membership view
        pick a victim deterministically.  Ignored for joins.
    warned:
        True when the provider announced the revocation ahead of time
        (the two-minute warning), allowing a proactive checkpoint.
    """

    iteration: int
    kind: str
    node: int | None = None
    warned: bool = False

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {self.iteration}")
        if self.kind not in (REVOKE, JOIN):
            raise ValueError(f"kind must be {REVOKE!r} or {JOIN!r}, got {self.kind!r}")


@dataclass(frozen=True)
class SpotProfile:
    """Spot-market parameters of one cloud preset.

    ``revoke_rate`` is the per-node, per-iteration Poisson revocation
    rate at the default iteration length; ``warned_fraction`` is the
    share of revocations that deliver the advance warning (in practice
    the notice exists but polling can miss it); prices are ballpark
    USD per node-hour for the Table 1 8xV100 instances.
    """

    cloud: str
    revoke_rate: float
    warning_seconds: float
    warned_fraction: float
    on_demand_hourly: float
    spot_discount: float  # spot price as a fraction of on-demand

    def __post_init__(self) -> None:
        if self.revoke_rate < 0:
            raise ValueError(f"revoke_rate must be >= 0, got {self.revoke_rate}")
        if not 0 <= self.warned_fraction <= 1:
            raise ValueError("warned_fraction must be in [0, 1]")
        if not 0 < self.spot_discount <= 1:
            raise ValueError("spot_discount must be in (0, 1]")


#: Per-cloud spot profiles for the Table 1 instances.  Rates and prices
#: are ballparks: AWS p3.16xlarge on-demand ~$24.5/h with spot ~30% of
#: that; Aliyun and Tencent discount less but also interrupt less often.
SPOT_PROFILES: dict[str, SpotProfile] = {
    "aws": SpotProfile(
        cloud="aws",
        revoke_rate=0.004,
        warning_seconds=120.0,
        warned_fraction=0.9,
        on_demand_hourly=24.48,
        spot_discount=0.31,
    ),
    "aliyun": SpotProfile(
        cloud="aliyun",
        revoke_rate=0.002,
        warning_seconds=300.0,
        warned_fraction=0.8,
        on_demand_hourly=20.00,
        spot_discount=0.35,
    ),
    "tencent": SpotProfile(
        cloud="tencent",
        revoke_rate=0.002,
        warning_seconds=120.0,
        warned_fraction=0.8,
        on_demand_hourly=21.60,
        spot_discount=0.30,
    ),
}


def warning_iterations(
    iteration_seconds: float, *, warning_seconds: float = 120.0
) -> int:
    """Whole iterations covered by an advance-revocation warning.

    The two-minute warning is only useful if at least one checkpoint
    fits inside it; callers compare this against their checkpoint cost.
    """
    if iteration_seconds <= 0:
        raise ValueError(f"iteration_seconds must be > 0, got {iteration_seconds}")
    if warning_seconds < 0:
        raise ValueError(f"warning_seconds must be >= 0, got {warning_seconds}")
    return int(math.floor(warning_seconds / iteration_seconds))


class TraceSchedule:
    """Replay an explicit, pre-recorded churn event list."""

    def __init__(self, events: Sequence[ChurnEvent]) -> None:
        self.events = sorted(events, key=lambda e: e.iteration)

    @classmethod
    def from_deltas(
        cls, waypoints: Sequence[tuple[int, int]], *, warned: bool = True
    ) -> "TraceSchedule":
        """Build a trace from ``(iteration, node_count)`` waypoints.

        The first waypoint fixes the starting size; each later one emits
        the joins/revocations needed to reach its count at its iteration.
        This is how scheduler-driven allocations (``repro.sched`` records
        every grow/shrink as a waypoint) become a replayable churn trace:
        scheduler decisions are announced ahead of time, so revocations
        default to ``warned`` (no lost work — flip for surprise-style
        replay).  Waypoint iterations must be non-decreasing.
        """
        if not waypoints:
            raise ValueError("waypoints must be non-empty")
        events: list[ChurnEvent] = []
        prev_iteration, prev_count = waypoints[0]
        if prev_count < 1:
            raise ValueError(f"node counts must be >= 1, got {prev_count}")
        for iteration, count in waypoints[1:]:
            if iteration < prev_iteration:
                raise ValueError(
                    f"waypoint iterations must be non-decreasing, got "
                    f"{iteration} after {prev_iteration}"
                )
            if count < 1:
                raise ValueError(f"node counts must be >= 1, got {count}")
            kind = JOIN if count > prev_count else REVOKE
            for _ in range(abs(count - prev_count)):
                events.append(
                    ChurnEvent(iteration, kind, warned=warned and kind == REVOKE)
                )
            prev_iteration, prev_count = iteration, count
        return cls(events)

    def generate(
        self, horizon: int, num_nodes: int, rng: RandomState | None = None
    ) -> list[ChurnEvent]:
        """Events within ``[0, horizon)``; the rng is unused (trace is fixed)."""
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        return [e for e in self.events if e.iteration < horizon]


class PoissonChurn:
    """Memoryless spot revocations with delayed replacement arrivals.

    Parameters
    ----------
    revoke_rate:
        Expected revocations per node per iteration (e.g. ``0.005`` with
        4 nodes averages one revocation every 50 iterations).
    warned_fraction:
        Probability a revocation carries the advance warning.
    rejoin_delay:
        Mean iterations until a replacement node arrives; ``0`` disables
        backfill (the cluster only shrinks).
    min_nodes:
        Revocations that would drop the cluster below this are skipped
        (the schedule respects the job's minimum viable size).
    """

    def __init__(
        self,
        revoke_rate: float,
        *,
        warned_fraction: float = 0.8,
        rejoin_delay: int = 0,
        min_nodes: int = 1,
    ) -> None:
        if revoke_rate < 0:
            raise ValueError(f"revoke_rate must be >= 0, got {revoke_rate}")
        if not 0 <= warned_fraction <= 1:
            raise ValueError("warned_fraction must be in [0, 1]")
        if rejoin_delay < 0:
            raise ValueError(f"rejoin_delay must be >= 0, got {rejoin_delay}")
        if min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {min_nodes}")
        self.revoke_rate = revoke_rate
        self.warned_fraction = warned_fraction
        self.rejoin_delay = rejoin_delay
        self.min_nodes = min_nodes

    @classmethod
    def from_profile(
        cls,
        profile: SpotProfile | str,
        *,
        rejoin_delay: int = 0,
        min_nodes: int = 1,
    ) -> "PoissonChurn":
        """Build a schedule from a cloud's :data:`SPOT_PROFILES` entry."""
        if isinstance(profile, str):
            key = profile.lower()
            if key not in SPOT_PROFILES:
                raise KeyError(
                    f"unknown spot profile {profile!r}; available: {sorted(SPOT_PROFILES)}"
                )
            profile = SPOT_PROFILES[key]
        return cls(
            profile.revoke_rate,
            warned_fraction=profile.warned_fraction,
            rejoin_delay=rejoin_delay,
            min_nodes=min_nodes,
        )

    def generate(
        self, horizon: int, num_nodes: int, rng: RandomState | None = None
    ) -> list[ChurnEvent]:
        """Simulate membership over ``horizon`` iterations, emitting events.

        The simulation tracks the live node count so revocations never
        violate ``min_nodes`` and backfill never exceeds the starting
        size (elastic quotas cap at the original allocation).
        """
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if num_nodes < self.min_nodes:
            raise ValueError(
                f"num_nodes {num_nodes} below min_nodes {self.min_nodes}"
            )
        rng = rng if rng is not None else new_rng()
        p_revoke = 1.0 - math.exp(-self.revoke_rate)
        live = num_nodes
        pending_joins: dict[int, int] = {}
        events: list[ChurnEvent] = []
        for t in range(horizon):
            arrivals = pending_joins.pop(t, 0)
            for _ in range(arrivals):
                if live < num_nodes:
                    live += 1
                    events.append(ChurnEvent(t, JOIN))
            if self.revoke_rate == 0:
                continue
            hits = int(rng.binomial(live, p_revoke))
            for _ in range(hits):
                if live <= self.min_nodes:
                    break
                live -= 1
                warned = bool(rng.random() < self.warned_fraction)
                events.append(ChurnEvent(t, REVOKE, warned=warned))
                if self.rejoin_delay > 0:
                    delay = 1 + int(rng.poisson(self.rejoin_delay))
                    join_at = t + delay
                    if join_at < horizon:
                        pending_joins[join_at] = pending_joins.get(join_at, 0) + 1
        return events


__all__ = [
    "REVOKE",
    "JOIN",
    "ChurnEvent",
    "SpotProfile",
    "SPOT_PROFILES",
    "warning_iterations",
    "TraceSchedule",
    "PoissonChurn",
]
