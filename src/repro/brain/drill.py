"""Brain drill: the gray storm, re-fought with an autotuner in the loop.

PR 8's policy drill showed that *placing* work health-first
(``fault-aware``) beats fault-blind placement under the committed
gray storm.  This drill asks the next question: once placement is
already fault-aware, does *online re-planning* still pay?  It replays
:data:`repro.faults.drill.GRAY_STORM_EVENTS` through the multi-tenant
scheduler under the ``fault-aware`` policy once per registered brain —
``static`` (the no-brain baseline: placement-time health awareness
only), ``throughput``, and ``health-migrate`` — and scores each on
goodput under the storm, mean JCT, finish-time fairness (Jain's index
over per-job completion times), and $/kilo-iteration.

The static baseline's weakness is structural: placement decisions are
made once, at admission, with whatever the ledger knew *then*.  Node 1
starts straggling at t=25 and stretches every gang it belongs to by 3x
for most of the run — but the static run never revisits the allocation,
so autoscale growth parks jobs on the straggler and leaves them there.
``health-migrate`` watches suspicion trend upward mid-run and moves the
work (or pre-emptively shrinks it onto clean hardware), which is
exactly the continuous re-planning the EasyDL/DLRover Brain argues for.

Everything is closed-form deterministic; the per-brain decision-log and
fault-log digests pin bit-identical replay across hosts and ``--jobs``
widths in ``results/BENCH_brain.json``.
"""

from __future__ import annotations

from repro.api.config import SchedConfig
from repro.faults.drill import GRAY_STORM_EVENTS, GRAY_STORM_HEALTH, gray_storm_config
from repro.utils.tables import format_table

#: Keep in sync with ``benchmarks/conftest.py::BENCH_SCHEMA_VERSION``.
BENCH_SCHEMA_VERSION = 1

#: Brains the drill compares (static first: it is the baseline every
#: active brain must beat).
BRAIN_DRILL_BRAINS = ("static", "throughput", "health-migrate")

#: The placement policy every drill run uses.  Fixing it to the
#: strongest fault-aware baseline makes the comparison honest: the
#: brain's win is attributable to *online re-planning*, not to beating
#: a fault-blind placement it never had to compete with.
BRAIN_DRILL_POLICY = "fault-aware"

#: Columns of the ``BENCH_brain.json`` rows.
BRAIN_DRILL_COLUMNS = [
    "brain",
    "storm_goodput",
    "baseline_goodput",
    "goodput_ratio",
    "mean_jct_s",
    "fairness",
    "usd_per_kiter",
    "deadline_hit_rate",
    "migrations",
    "shrinks",
    "grows",
    "declined",
    "brain_digest",
    "fault_digest",
]


def brain_storm_config(
    brain: str = "static", *, storm: bool = True, seed: int = 7
) -> SchedConfig:
    """The gray-storm scenario under ``fault-aware``, with one brain.

    Identical cluster, jobs, storm and health knobs to the PR 8 policy
    drill — only the ``brain`` section varies, so every delta in the
    scorecard is the autotuner's doing.
    """
    data = gray_storm_config([BRAIN_DRILL_POLICY], storm=storm, seed=seed).to_dict()
    data["name"] = f"gray-storm-{brain}" + ("" if storm else "-baseline")
    data["brain"] = {"name": brain}
    return SchedConfig.from_dict(data)


def _jain_fairness(values) -> float | None:
    """Jain's fairness index over per-job completion times, in (0, 1].

    1.0 = every job finished in the same time; the index collapses
    toward ``1/n`` as one tenant's completion time dwarfs the rest —
    the finish-time-fairness lens on a storm that slows whichever gang
    is stuck on the straggler.
    """
    values = [v for v in values if v is not None]
    if not values:
        return None
    total = sum(values)
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    return (total * total) / (len(values) * square_sum)


def run_brain_drills(brains=None, *, seed: int = 7, sweeper=None) -> list[dict]:
    """Gray storm per brain + one fault-free no-brain baseline.

    Returns one scored dict per brain.  ``baseline_goodput`` is the
    fault-free, brain-free run's cluster goodput — the healthy schedule
    every brain is normalised against, so ``goodput_ratio`` reads as
    "fraction of the healthy schedule kept under the storm".
    """
    from repro.brain.base import BRAINS

    names = [BRAINS.canonical(b) or b for b in (brains or BRAIN_DRILL_BRAINS)]
    configs = [brain_storm_config(seed=seed, storm=False)]
    configs.extend(brain_storm_config(brain, seed=seed) for brain in names)
    if sweeper is not None:
        reports = [
            next(iter(sweeper.run_sched_policies(config).values()))
            for config in configs
        ]
    else:
        from repro.api.facade import run_sched

        reports = [next(iter(run_sched(config).values())) for config in configs]
    baseline, storm_reports = reports[0], reports[1:]
    baseline_goodput = baseline.cluster_goodput_it_per_s
    results = []
    for brain, report in zip(names, storm_reports):
        brain_log = report.brain_log or {}
        iters = sum(outcome.iterations for outcome in report.jobs)
        jcts = [outcome.jct_s for outcome in report.jobs]
        done = [jct for jct in jcts if jct is not None]
        results.append(
            {
                "brain": brain,
                "storm_goodput": round(report.cluster_goodput_it_per_s, 6),
                "baseline_goodput": round(baseline_goodput, 6),
                "goodput_ratio": (
                    round(report.cluster_goodput_it_per_s / baseline_goodput, 6)
                    if baseline_goodput
                    else None
                ),
                "mean_jct_s": (
                    round(sum(done) / len(done), 3) if done else None
                ),
                "fairness": (
                    round(_jain_fairness(jcts), 6)
                    if _jain_fairness(jcts) is not None
                    else None
                ),
                "usd_per_kiter": (
                    round(report.total_cost_usd / (iters / 1000.0), 6)
                    if iters
                    else None
                ),
                "deadline_hit_rate": report.deadline_hit_rate,
                "migrations": brain_log.get("migrations", 0),
                "shrinks": brain_log.get("shrinks", 0),
                "grows": brain_log.get("grows", 0),
                "declined": brain_log.get("declined", 0),
                "brain_digest": brain_log.get("digest"),
                "fault_digest": (
                    report.fault_log["digest"]
                    if report.fault_log is not None
                    else None
                ),
                # Full structured decision log for callers that audit the
                # replay (stripped from the BENCH rows; digest pins it).
                "entries": brain_log.get("entries", []),
            }
        )
    return results


def brain_drills_payload(
    brains=None, *, seed: int = 7, sweeper=None, bench: str = "brain"
) -> dict:
    """One BENCH-schema payload covering the brain drill matrix."""
    results = run_brain_drills(brains, seed=seed, sweeper=sweeper)
    rows = [[result[column] for column in BRAIN_DRILL_COLUMNS] for result in results]
    title = (
        f"{bench}: {len(results)} brains x gray storm under "
        f"{BRAIN_DRILL_POLICY} (seed {seed})"
    )
    text = format_table(BRAIN_DRILL_COLUMNS, rows, title=title)
    return {
        "bench": bench,
        "schema_version": BENCH_SCHEMA_VERSION,
        "structured": True,
        "columns": list(BRAIN_DRILL_COLUMNS),
        "rows": rows,
        "text": text if text.endswith("\n") else text + "\n",
        "meta": {
            "seed": seed,
            "policy": BRAIN_DRILL_POLICY,
            "brains": [result["brain"] for result in results],
            "storm": [dict(event) for event in GRAY_STORM_EVENTS],
            "health": dict(GRAY_STORM_HEALTH),
            "digests": {
                result["brain"]: {
                    "brain": result["brain_digest"],
                    "faults": result["fault_digest"],
                }
                for result in results
            },
        },
    }


__all__ = [
    "BRAIN_DRILL_BRAINS",
    "BRAIN_DRILL_POLICY",
    "BRAIN_DRILL_COLUMNS",
    "brain_storm_config",
    "run_brain_drills",
    "brain_drills_payload",
]
