"""Drives one :class:`~repro.brain.base.Autotuner` through a simulation.

The :class:`BrainDriver` owns the brain's event-loop integration: it
fires a decision tick every ``interval`` virtual seconds, snapshots the
cluster into a :class:`~repro.brain.signals.BrainObservation`, and
applies the brain's :class:`~repro.brain.base.Action`\\ s through the
exact machinery every other scheduler decision uses —
:class:`~repro.sched.policies.ClusterState` transitions, waypoint
marks (so rescales land in the replayable elastic trace), and
:class:`~repro.elastic.membership.MembershipView` epochs.

Every action is validated against live state before it applies: gang
windows (``min_nodes``/``max_nodes``), node capacity and up-status, the
per-job dwell window (a job the brain just moved is frozen for
``min_dwell`` seconds so the autoscaler cannot instantly undo the
decision), and the per-tick ``max_actions`` cap.  Infeasible actions
are *declined* and logged — never partially applied — so a buggy brain
degrades to a noisy log, not a corrupted simulation.

The driver also exports the scheduler-facing guards: nodes the brain
currently considers gray are withheld from autoscale growth until the
next tick (:meth:`avoid_nodes`), and dwell-frozen jobs skip autoscale
entirely (:meth:`grow_frozen`).
"""

from __future__ import annotations

from repro.brain.base import ACTION_KINDS, Action, Autotuner
from repro.brain.log import BrainLog
from repro.brain.signals import build_observation

_EPS = 1e-12


class BrainDriver:
    """Applies one brain's decisions inside one scheduler run."""

    def __init__(self, config, autotuner: Autotuner, scheduler) -> None:
        self.config = config
        self.autotuner = autotuner
        self.scheduler = scheduler
        self.log = BrainLog()
        #: Next decision tick on the virtual clock.
        self._next_tick = float(config.interval)
        #: job name -> virtual time its dwell window ends.
        self._job_hold: dict[str, float] = {}
        #: node -> virtual time until which autoscale must avoid it.
        self._avoid: dict[int, float] = {}
        self.ticks = 0
        self.migrations = 0
        self.grows = 0
        self.shrinks = 0
        self.declined = 0

    # -- scheduler-facing guards ----------------------------------------------
    def next_boundary(self, now: float) -> float | None:
        """The next decision tick, if it is still in the future."""
        return self._next_tick if self._next_tick > now + _EPS else None

    def grow_frozen(self, job: str, now: float) -> bool:
        """Whether the autoscaler must leave this job alone (dwell)."""
        return self._job_hold.get(job, 0.0) > now + _EPS

    def avoid_nodes(self, now: float) -> set[int]:
        """Nodes the brain has flagged gray; autoscale growth skips them."""
        return {node for node, until in self._avoid.items() if until > now + _EPS}

    # -- the decision tick ----------------------------------------------------
    def apply_due(self, *, now, state, queued, running, faults=None) -> None:
        """Fire the decision round if a tick is due at ``now``."""
        if self._next_tick > now + _EPS:
            return
        # Catch up ticks the event loop skipped while idle: at most one
        # decision round fires, at `now`, and the next tick is strictly
        # in the future (the loop's progress guarantee).
        while self._next_tick <= now + _EPS:
            self._next_tick += float(self.config.interval)
        self.ticks += 1
        if not running:
            self.log.append("tick", t=now, job="-", jobs=0)
            return
        obs = build_observation(
            scheduler=self.scheduler,
            now=now,
            state=state,
            running=running,
            queued=len(queued),
            faults=faults,
        )
        cutoff = self.config.migrate_suspicion * obs.quarantine_threshold
        gray = obs.gray_nodes(cutoff) if cutoff != float("inf") else []
        # Gray nodes stay off-limits to autoscale growth until the brain
        # looks again (next tick), whatever the brain decides below.
        for node in gray:
            self._avoid[node] = max(self._avoid.get(node, 0.0), self._next_tick)
        self.log.append("tick", t=now, job="-", jobs=len(running), gray=sorted(gray))
        actions = self.autotuner.decide(obs)
        by_name = {record.spec.name: record for record in running}
        applied = 0
        acted: set[str] = set()
        for action in actions:
            if applied >= self.config.max_actions:
                self._decline(action, now, "per-tick action cap reached")
                continue
            problem = self._validate(action, now, state, by_name, acted)
            if problem is not None:
                self._decline(action, now, problem)
                continue
            self._apply(action, now, state, by_name[action.job])
            acted.add(action.job)
            applied += 1

    # -- validation -----------------------------------------------------------
    def _validate(self, action: Action, now, state, by_name, acted) -> str | None:
        """Reason the action cannot apply, or ``None`` if it can."""
        if action.kind not in ACTION_KINDS:  # pragma: no cover - Action checks
            return f"unknown kind {action.kind!r}"
        record = by_name.get(action.job)
        if record is None:
            return "job is not running"
        if action.job in acted:
            return "one action per job per tick"
        if self.grow_frozen(action.job, now):
            return "dwell window active"
        spec = record.spec
        gpus = self.scheduler._job_gpus(spec)
        if action.kind in ("migrate", "shrink"):
            if action.src is None or action.src not in record.nodes:
                return f"src {action.src} is not in the allocation"
        if action.kind == "shrink" and len(record.nodes) <= spec.min_nodes:
            return f"gang floor: already at min_nodes={spec.min_nodes}"
        if action.kind == "grow" and len(record.nodes) >= spec.max_nodes:
            return f"gang ceiling: already at max_nodes={spec.max_nodes}"
        if action.kind in ("migrate", "grow"):
            dst = action.dst
            if dst is None or not 0 <= dst < state.num_nodes:
                return f"dst {dst} is not a cluster node"
            if dst in record.nodes:
                return f"dst {dst} is already in the allocation"
            if not state.is_up(dst):
                return f"dst {dst} is down"
            if state.free_gpus(dst) < gpus:
                return f"dst {dst} has {state.free_gpus(dst)} free GPUs, need {gpus}"
        return None

    # -- application ----------------------------------------------------------
    def _apply(self, action: Action, now, state, record) -> None:
        spec = record.spec
        gpus = self.scheduler._job_gpus(spec)
        detail = {"reason": action.reason, "nodes_before": sorted(record.nodes)}
        if action.kind == "migrate":
            state.release(spec.name, [action.src])
            record.nodes.remove(action.src)
            state.place(spec.name, [action.dst], gpus)
            record.nodes.append(action.dst)
            record.mark_waypoint()
            if record.membership is not None:
                # Same-size reshuffle = one join + one revoke: the node
                # count is unchanged but both membership epochs land in
                # the replayed trace, exactly like a warned replacement.
                record.membership.join()
                record.membership.revoke()
            self.migrations += 1
            detail.update(src=action.src, dst=action.dst)
        elif action.kind == "shrink":
            state.release(spec.name, [action.src])
            record.nodes.remove(action.src)
            record.shrinks += 1
            record.mark_waypoint()
            if (
                record.membership is not None
                and record.membership.num_nodes > record.membership.min_nodes
            ):
                record.membership.revoke()
            state.set_comm_intensity(
                spec.name,
                self.scheduler.comm_intensity(spec, nodes=len(record.nodes)),
            )
            self.shrinks += 1
            detail.update(src=action.src)
        else:  # grow
            state.place(spec.name, [action.dst], gpus)
            record.nodes.append(action.dst)
            record.grows += 1
            record.mark_waypoint()
            if record.membership is not None:
                record.membership.join()
            state.set_comm_intensity(
                spec.name,
                self.scheduler.comm_intensity(spec, nodes=len(record.nodes)),
            )
            self.grows += 1
            detail.update(dst=action.dst)
        detail["nodes_after"] = sorted(record.nodes)
        # Freeze the job (and, for departures, the vacated node) for the
        # dwell window so autoscale cannot immediately undo the decision.
        self._job_hold[spec.name] = now + float(self.config.min_dwell)
        if action.kind in ("migrate", "shrink") and action.src is not None:
            self._avoid[action.src] = max(
                self._avoid.get(action.src, 0.0), now + float(self.config.min_dwell)
            )
        self.log.append(action.kind, t=now, job=action.job, **detail)

    def _decline(self, action: Action, now, reason: str) -> None:
        self.declined += 1
        self.log.append(
            "decline",
            t=now,
            job=action.job,
            kind=action.kind,
            src=action.src,
            dst=action.dst,
            reason=reason,
        )

    # -- reporting ------------------------------------------------------------
    def summary(self) -> dict:
        """Plain-dict brain summary embedded in the payload meta."""
        from repro.brain.base import BRAINS

        return {
            "brain": BRAINS.canonical(self.config.name) or self.config.name,
            "ticks": self.ticks,
            "migrations": self.migrations,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "declined": self.declined,
            "events": len(self.log),
            "digest": self.log.digest(),
            "entries": self.log.to_dicts(),
        }


__all__ = ["BrainDriver"]
